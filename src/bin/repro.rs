//! Regenerate every table and figure of the paper.
//!
//! Usage:
//! ```text
//! repro                       # run everything (Table I + Figs. 1–13 + predict)
//! repro table1 fig12          # run a subset
//! repro --quick               # fewer protocol repeats (faster)
//! repro --csv out/            # also write machine-readable CSVs per experiment
//! ```
//!
//! Sections are independent experiments, so they fan out across the
//! substrate work pool and print in the canonical order once everything
//! has finished. A single-section invocation bypasses the pool, letting
//! the sweep inside that section parallelise instead.

use std::time::Instant;
use vpp_core::experiments::{
    capping, fig01, fig02, fig03, fig04, fig05, fig06, fig07, fig08, fig09, fig10, fig11,
    fig12, fig13, predict_eval, scaling, table1,
};
use vpp_core::flight;
use vpp_core::protocol::StudyContext;

/// `(section name, rendered body, CSV payload)` tuples one job produced.
type SectionOut = Vec<(&'static str, String, String)>;
type Job = Box<dyn Fn() -> SectionOut + Send + Sync>;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .map(|i| args.get(i + 1).expect("--csv needs a directory").clone());
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("cannot create the CSV directory");
    }
    let selected: Vec<&str> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if *a == "--csv" {
                    skip_next = true;
                    return false;
                }
                !a.starts_with("--")
            })
            .map(String::as_str)
            .collect()
    };
    let want = |name: &str| selected.is_empty() || selected.contains(&name);

    let ctx = if quick {
        StudyContext::quick()
    } else {
        StudyContext::paper()
    };

    let mut jobs: Vec<(&'static str, Job)> = Vec::new();
    let mut add = |name: &'static str, job: Job| jobs.push((name, job));

    if want("table1") {
        add("table1", Box::new(|| {
            let r = table1::run();
            vec![("table1", r.to_string(), r.csv())]
        }));
    }
    if want("fig1") {
        add("fig1", Box::new(move || {
            let r = fig01::run(&ctx);
            vec![("fig1", r.to_string(), r.csv())]
        }));
    }
    if want("fig2") {
        add("fig2", Box::new(move || {
            let r = fig02::run(&ctx);
            vec![("fig2", r.to_string(), r.csv())]
        }));
    }
    if want("fig3") {
        add("fig3", Box::new(move || {
            let r = fig03::run(&ctx);
            vec![("fig3", r.to_string(), r.csv())]
        }));
    }

    // Figs. 4 and 5 share one node-count sweep.
    if want("fig4") || want("fig5") {
        let (w4, w5) = (want("fig4"), want("fig5"));
        add("fig4+fig5", Box::new(move || {
            let data = scaling::measure_suite(
                &vpp_core::benchmarks::suite(),
                &scaling::NODE_COUNTS,
                &ctx,
            );
            let mut out = SectionOut::new();
            if w4 {
                let r = fig04::from_scaling(&data, &scaling::NODE_COUNTS);
                out.push(("fig4", r.to_string(), r.csv()));
            }
            if w5 {
                let r = fig05::from_scaling(&data, &scaling::NODE_COUNTS);
                out.push(("fig5", r.to_string(), r.csv()));
            }
            out
        }));
    }

    if want("fig6") {
        add("fig6", Box::new(move || {
            let r = fig06::run(&ctx);
            vec![("fig6", r.to_string(), r.csv())]
        }));
    }
    if want("fig7") {
        add("fig7", Box::new(move || {
            let r = fig07::run(&ctx);
            vec![("fig7", r.to_string(), r.csv())]
        }));
    }
    if want("fig8") {
        add("fig8", Box::new(move || {
            let r = fig08::run(&ctx);
            vec![("fig8", r.to_string(), r.csv())]
        }));
    }
    if want("fig9") {
        add("fig9", Box::new(move || {
            let r = fig09::run(&ctx);
            vec![("fig9", r.to_string(), r.csv())]
        }));
    }

    // Figs. 10 and 12 share one cap sweep.
    if want("fig10") || want("fig12") {
        let (w10, w12) = (want("fig10"), want("fig12"));
        add("fig10+fig12", Box::new(move || {
            let data = capping::measure_caps(&vpp_core::benchmarks::suite(), &ctx);
            let mut out = SectionOut::new();
            if w10 {
                let r = fig10::from_caps(&data);
                out.push(("fig10", r.to_string(), r.csv()));
            }
            if w12 {
                let r = fig12::from_caps(&data);
                out.push(("fig12", r.to_string(), r.csv()));
            }
            out
        }));
    }

    if want("fig11") {
        add("fig11", Box::new(move || {
            let r = fig11::run(&ctx);
            vec![("fig11", r.to_string(), r.csv())]
        }));
    }
    if want("predict") {
        add("predict", Box::new(move || {
            let r = predict_eval::run(&ctx);
            vec![("predict", r.to_string(), r.csv())]
        }));
    }
    if want("fig13") {
        add("fig13", Box::new(move || {
            let r = fig13::run(&ctx);
            vec![("fig13", r.to_string(), r.csv())]
        }));
    }
    if want("phase_energy") {
        add("phase_energy", Box::new(move || {
            let r = flight::phase_energy(&ctx);
            vec![("phase_energy", r.to_string(), r.csv())]
        }));
    }
    if want("campaign_contention") {
        add("campaign_contention", Box::new(|| {
            let r = vpp_powercap::campaign::contention_report();
            vec![("campaign_contention", r.to_string(), r.csv())]
        }));
    }

    if jobs.is_empty() {
        eprintln!(
            "nothing matched {selected:?}; known: table1 fig1..fig13 predict \
             phase_energy campaign_contention (plus --quick, --csv DIR)"
        );
        std::process::exit(2);
    }

    let wall = Instant::now();
    let results = vpp_substrate::par_map(jobs, |(name, job)| {
        let t = Instant::now();
        let outputs = job();
        (name, outputs, t.elapsed().as_secs_f64())
    });

    // Print and persist in canonical order, after all sections finished.
    for (name, outputs, secs) in results {
        for (section, body, csv) in outputs {
            println!("{body}");
            if let Some(dir) = &csv_dir {
                let path = format!("{dir}/{section}.csv");
                std::fs::write(&path, csv).expect("cannot write CSV");
                eprintln!("[wrote {path}]");
            }
        }
        eprintln!("[{name} done in {secs:.1}s]");
    }
    eprintln!("[all sections done in {:.1}s wall]", wall.elapsed().as_secs_f64());
}
