//! Regenerate every table and figure of the paper.
//!
//! Usage:
//! ```text
//! repro                       # run everything (Table I + Figs. 1–13 + predict)
//! repro table1 fig12          # run a subset
//! repro --quick               # fewer protocol repeats (faster)
//! repro --csv out/            # also write machine-readable CSVs per experiment
//! ```

use std::time::Instant;
use vpp_core::experiments::{
    capping, fig01, fig02, fig03, fig04, fig05, fig06, fig07, fig08, fig09, fig10, fig11,
    fig12, fig13, predict_eval, scaling, table1,
};
use vpp_core::protocol::StudyContext;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .map(|i| args.get(i + 1).expect("--csv needs a directory").clone());
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("cannot create the CSV directory");
    }
    let selected: Vec<&str> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if *a == "--csv" {
                    skip_next = true;
                    return false;
                }
                !a.starts_with("--")
            })
            .map(String::as_str)
            .collect()
    };
    let want = |name: &str| selected.is_empty() || selected.contains(&name);

    let ctx = if quick {
        StudyContext::quick()
    } else {
        StudyContext::paper()
    };

    let write_csv = |name: &str, csv: &str| {
        if let Some(dir) = &csv_dir {
            let path = format!("{dir}/{name}.csv");
            std::fs::write(&path, csv).expect("cannot write CSV");
            eprintln!("[wrote {path}]");
        }
    };

    let ran = std::cell::Cell::new(0);
    let section = |name: &str, f: &mut dyn FnMut() -> (String, String)| {
        if !want(name) {
            return;
        }
        let t = Instant::now();
        let (body, csv) = f();
        println!("{body}");
        write_csv(name, &csv);
        eprintln!("[{name} done in {:.1}s]", t.elapsed().as_secs_f64());
        ran.set(ran.get() + 1);
    };

    section("table1", &mut || {
        let r = table1::run();
        (r.to_string(), r.csv())
    });
    section("fig1", &mut || {
        let r = fig01::run(&ctx);
        (r.to_string(), r.csv())
    });
    section("fig2", &mut || {
        let r = fig02::run(&ctx);
        (r.to_string(), r.csv())
    });
    section("fig3", &mut || {
        let r = fig03::run(&ctx);
        (r.to_string(), r.csv())
    });

    // Figs. 4 and 5 share one node-count sweep.
    if want("fig4") || want("fig5") {
        let t = Instant::now();
        let data = scaling::measure_suite(
            &vpp_core::benchmarks::suite(),
            &scaling::NODE_COUNTS,
            &ctx,
        );
        if want("fig4") {
            let r = fig04::from_scaling(&data, &scaling::NODE_COUNTS);
            println!("{r}");
            write_csv("fig4", &r.csv());
            ran.set(ran.get() + 1);
        }
        if want("fig5") {
            let r = fig05::from_scaling(&data, &scaling::NODE_COUNTS);
            println!("{r}");
            write_csv("fig5", &r.csv());
            ran.set(ran.get() + 1);
        }
        eprintln!("[fig4+fig5 done in {:.1}s]", t.elapsed().as_secs_f64());
    }

    section("fig6", &mut || {
        let r = fig06::run(&ctx);
        (r.to_string(), r.csv())
    });
    section("fig7", &mut || {
        let r = fig07::run(&ctx);
        (r.to_string(), r.csv())
    });
    section("fig8", &mut || {
        let r = fig08::run(&ctx);
        (r.to_string(), r.csv())
    });
    section("fig9", &mut || {
        let r = fig09::run(&ctx);
        (r.to_string(), r.csv())
    });

    // Figs. 10 and 12 share one cap sweep.
    if want("fig10") || want("fig12") {
        let t = Instant::now();
        let data = capping::measure_caps(&vpp_core::benchmarks::suite(), &ctx);
        if want("fig10") {
            let r = fig10::from_caps(&data);
            println!("{r}");
            write_csv("fig10", &r.csv());
            ran.set(ran.get() + 1);
        }
        if want("fig12") {
            let r = fig12::from_caps(&data);
            println!("{r}");
            write_csv("fig12", &r.csv());
            ran.set(ran.get() + 1);
        }
        eprintln!("[fig10+fig12 done in {:.1}s]", t.elapsed().as_secs_f64());
    }

    section("fig11", &mut || {
        let r = fig11::run(&ctx);
        (r.to_string(), r.csv())
    });
    section("predict", &mut || {
        let r = predict_eval::run(&ctx);
        (r.to_string(), r.csv())
    });
    section("fig13", &mut || {
        let r = fig13::run(&ctx);
        (r.to_string(), r.csv())
    });

    if ran.get() == 0 {
        eprintln!(
            "nothing matched {selected:?}; known: table1 fig1..fig13 predict \
             (plus --quick, --csv DIR)"
        );
        std::process::exit(2);
    }
}
