//! `vpp` — the operator's command-line tool.
//!
//! ```text
//! vpp profile    <benchmark|dir> [--nodes N] [--cap W] [--quick]
//! vpp caps       <benchmark>     [--nodes N]
//! vpp screen     <benchmark>     [--nodes N] [--straggler IDX:FACTOR]
//! vpp phases     <benchmark>     [--nodes N]
//! vpp trace      <benchmark>     [--nodes N] [--cap W] [--quick]
//!                                [--format tree|csv|json|jsonl|prom]
//!                                [--perturb PHASE:FACTOR]
//! vpp trace diff <benchmark>     [--perturb PHASE:FACTOR]
//! vpp list
//! ```
//!
//! `<benchmark>` is a Table I name (see `vpp list`); a directory containing
//! `INCAR` / `POSCAR` (and optionally `KPOINTS`) works everywhere a
//! benchmark name does.
//!
//! `trace diff` re-runs the benchmark with the pinned baseline recipe,
//! compares the per-phase trace aggregates against the baseline stored in
//! `BENCH_results.json` (group `trace_baselines`, written by
//! `cargo bench -p vpp-bench --bench baselines`), and exits 1 when a
//! significant regression is found. `--perturb` injects an artificial
//! phase slowdown — the regression fixture. Setting `VPP_BENCH_DIFF=1`
//! turns a plain `vpp trace <benchmark>` into `vpp trace diff <benchmark>`.

use vasp_power_profiles::cluster::{execute, JobSpec, NetworkModel, Straggler};
use vasp_power_profiles::core::{benchmarks, flight, protocol};
use vasp_power_profiles::dft::{parse_incar, parse_kpoints, parse_poscar, PhaseKind};
use vasp_power_profiles::stats::{trace_diff, DiffConfig, Segmenter};
use vasp_power_profiles::substrate::bench::load_baseline;
use vasp_power_profiles::substrate::trace;
use vasp_power_profiles::telemetry::{Sampler, Screener};

struct Args {
    positional: Vec<String>,
    nodes: Option<usize>,
    cap: Option<f64>,
    quick: bool,
    straggler: Option<(usize, f64)>,
    format: Option<String>,
    perturb: Option<(PhaseKind, f64)>,
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args {
        positional: Vec::new(),
        nodes: None,
        cap: None,
        quick: false,
        straggler: None,
        format: None,
        perturb: None,
    };
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nodes" => {
                let v = it.next().ok_or("--nodes needs a value")?;
                args.nodes = Some(v.parse().map_err(|_| format!("bad --nodes '{v}'"))?);
            }
            "--cap" => {
                let v = it.next().ok_or("--cap needs a value")?;
                args.cap = Some(v.parse().map_err(|_| format!("bad --cap '{v}'"))?);
            }
            "--straggler" => {
                let v = it.next().ok_or("--straggler needs IDX:FACTOR")?;
                let (idx, factor) = v
                    .split_once(':')
                    .ok_or_else(|| format!("bad --straggler '{v}' (want IDX:FACTOR)"))?;
                args.straggler = Some((
                    idx.parse().map_err(|_| format!("bad straggler index '{idx}'"))?,
                    factor
                        .parse()
                        .map_err(|_| format!("bad straggler factor '{factor}'"))?,
                ));
            }
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                args.format = Some(v.clone());
            }
            "--perturb" => {
                let v = it.next().ok_or("--perturb needs PHASE:FACTOR")?;
                let (phase, factor) = v
                    .split_once(':')
                    .ok_or_else(|| format!("bad --perturb '{v}' (want PHASE:FACTOR)"))?;
                let kind = PhaseKind::parse(phase).ok_or_else(|| {
                    format!("unknown phase '{phase}' (init|scf_iter|rpa_diag|rpa_chi0)")
                })?;
                let factor: f64 = factor
                    .parse()
                    .map_err(|_| format!("bad perturb factor '{factor}'"))?;
                if !(factor > 0.0 && factor.is_finite()) {
                    return Err(format!("perturb factor must be positive, got {factor}"));
                }
                args.perturb = Some((kind, factor));
            }
            "--quick" => args.quick = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}'"));
            }
            other => args.positional.push(other.to_string()),
        }
    }
    Ok(args)
}

/// Resolve a benchmark name or an input-deck directory.
fn resolve(target: &str) -> Result<benchmarks::Benchmark, String> {
    if let Some(b) = benchmarks::suite().into_iter().find(|b| b.name() == target) {
        return Ok(b);
    }
    let dir = std::path::Path::new(target);
    if dir.is_dir() {
        let incar = std::fs::read_to_string(dir.join("INCAR"))
            .map_err(|e| format!("cannot read {target}/INCAR: {e}"))?;
        let poscar = std::fs::read_to_string(dir.join("POSCAR"))
            .map_err(|e| format!("cannot read {target}/POSCAR: {e}"))?;
        let mut deck = parse_incar(&incar).map_err(|e| format!("INCAR: {e}"))?.deck;
        let cell = parse_poscar(&poscar).map_err(|e| format!("POSCAR: {e}"))?;
        if let Ok(kp) = std::fs::read_to_string(dir.join("KPOINTS")) {
            deck.kpoints = parse_kpoints(&kp).map_err(|e| format!("KPOINTS: {e}"))?;
        }
        deck.validate().map_err(|e| format!("combined deck: {e}"))?;
        return Ok(benchmarks::Benchmark {
            cell,
            deck,
            cap_study_nodes: 1,
        });
    }
    Err(format!(
        "'{target}' is neither a benchmark name nor an input directory; try `vpp list`"
    ))
}

fn ctx(quick: bool) -> protocol::StudyContext {
    if quick {
        protocol::StudyContext::quick()
    } else {
        protocol::StudyContext::paper()
    }
}

fn cmd_list() {
    println!("{:<14} {:>9} {:>7} {:>8}  functional", "benchmark", "electrons", "ions", "NPLWV");
    for b in benchmarks::suite() {
        let p = b.params();
        println!(
            "{:<14} {:>9} {:>7} {:>8}  {:?}",
            b.name(),
            p.nelect,
            p.n_ions,
            p.nplwv,
            p.xc
        );
    }
}

fn cmd_profile(args: &Args) -> Result<(), String> {
    let target = args.positional.first().ok_or("profile needs a target")?;
    let bench = resolve(target)?;
    let nodes = args.nodes.unwrap_or(1);
    let cfg = match args.cap {
        Some(c) => protocol::RunConfig::capped(nodes, c),
        None => protocol::RunConfig::nodes(nodes),
    };
    let m = protocol::measure(&bench, &cfg, &ctx(args.quick));
    println!("workload   : {} on {nodes} node(s)", bench.name());
    if let Some(c) = args.cap {
        println!("GPU cap    : {c:.0} W");
    }
    println!("runtime    : {:.0} s", m.runtime_s);
    println!("energy     : {:.2} MJ", m.energy_j / 1e6);
    println!("node power : {}", m.node_summary);
    println!("GPU0 power : {}", m.gpu_summary);
    Ok(())
}

fn cmd_caps(args: &Args) -> Result<(), String> {
    let target = args.positional.first().ok_or("caps needs a target")?;
    let bench = resolve(target)?;
    let nodes = args.nodes.unwrap_or(bench.cap_study_nodes);
    let c = ctx(args.quick);
    println!(
        "{:>6} {:>10} {:>6} {:>12} {:>10}",
        "cap W", "runtime s", "perf", "node mode W", "energy MJ"
    );
    let base = protocol::measure(&bench, &protocol::RunConfig::nodes(nodes), &c);
    for cap in [400.0, 300.0, 200.0, 100.0] {
        let m = if cap >= 400.0 {
            base.clone()
        } else {
            protocol::measure(&bench, &protocol::RunConfig::capped(nodes, cap), &c)
        };
        println!(
            "{cap:>6.0} {:>10.0} {:>6.2} {:>12.0} {:>10.2}",
            m.runtime_s,
            base.runtime_s / m.runtime_s,
            m.node_summary.high_mode_w,
            m.energy_j / 1e6
        );
    }
    Ok(())
}

fn cmd_screen(args: &Args) -> Result<(), String> {
    let target = args.positional.first().ok_or("screen needs a target")?;
    let bench = resolve(target)?;
    let nodes = args.nodes.unwrap_or(4).max(3);
    let c = ctx(true);
    let plan = protocol::plan_for(&bench, nodes, &c);
    let mut spec = JobSpec::new(nodes);
    if let Some((idx, factor)) = args.straggler {
        if idx >= nodes {
            return Err(format!("straggler index {idx} out of {nodes} nodes"));
        }
        spec.straggler = Some(Straggler {
            node: idx,
            slowdown: factor,
        });
        println!("(injected straggler: node {idx} at {factor}x)");
    }
    let res = execute(&plan, &spec, &NetworkModel::perlmutter());
    let sampler = Sampler::ideal(1.0);
    let per_node: Vec<_> = res
        .node_traces
        .iter()
        .map(|t| sampler.sample(&t.node))
        .collect();
    println!("{:>5} {:>10} {:>8}  verdict", "node", "mean W", "z");
    for v in Screener::default_threshold().screen(&per_node) {
        println!(
            "{:>5} {:>10.0} {:>8.2}  {}",
            v.node,
            v.mean_w,
            v.z_score,
            if v.outlier { "OUTLIER" } else { "ok" }
        );
    }
    Ok(())
}

fn cmd_phases(args: &Args) -> Result<(), String> {
    let target = args.positional.first().ok_or("phases needs a target")?;
    let bench = resolve(target)?;
    let nodes = args.nodes.unwrap_or(1);
    let m = protocol::measure(&bench, &protocol::RunConfig::nodes(nodes), &ctx(true));
    let interval = m.node_series.mean_interval_s().unwrap_or(1.0);
    println!("{:>10} {:>12} {:>10}", "duration s", "mean W", "samples");
    for p in Segmenter::node_power().segment(m.node_series.values()) {
        println!(
            "{:>10.0} {:>12.0} {:>10}",
            p.len() as f64 * interval,
            p.mean_w,
            p.len()
        );
    }
    Ok(())
}

/// Sum of node-level energy over a sim-time window, joules.
fn window_energy_j(m: &protocol::Measured, t0: f64, t1: f64) -> f64 {
    m.result
        .node_traces
        .iter()
        .map(|c| c.node.energy_between(t0, t1))
        .sum()
}

/// Per-span detail column: sim-time window plus attributed energy for
/// phase spans, the recorded sim runtime for execution-level spans.
fn span_detail(rec: &trace::SpanRecord, m: &protocol::Measured) -> String {
    if let (Some(t0), Some(t1)) = (rec.field_f64("sim_t0"), rec.field_f64("sim_t1")) {
        let e = window_energy_j(m, t0, t1);
        let total = m.result.energy_j().max(1e-12);
        return format!(
            "sim {t0:>7.1} -> {t1:>7.1} s  {:>9.1} kJ ({:>4.1}%)",
            e / 1e3,
            100.0 * e / total
        );
    }
    if let Some(r) = rec.field_f64("runtime_s") {
        return format!("sim runtime {r:.0} s");
    }
    String::new()
}

fn print_trace_line(label: &str, depth: usize, wall_ms: f64, detail: &str) {
    let padded = format!("{}{label}", "  ".repeat(depth));
    println!("{padded:<44} {wall_ms:>9.3}  {detail}");
}

fn print_span(node: &trace::SpanNode, depth: usize, m: &protocol::Measured) {
    let label = match node.record.field_f64("index") {
        Some(i) => format!("{}[{}]", node.record.name, i as u64),
        None => node.record.name.to_string(),
    };
    let wall_ms = node.record.duration_ns().map_or(f64::NAN, |d| d as f64 / 1e6);
    print_trace_line(&label, depth, wall_ms, &span_detail(&node.record, m));
    print_span_children(&node.children, depth + 1, m);
}

/// Print a sibling list, collapsing runs of more than four same-named
/// spans (SCF iterations, collectives) into one aggregate row so deep
/// traces stay readable.
fn print_span_children(children: &[trace::SpanNode], depth: usize, m: &protocol::Measured) {
    let mut i = 0;
    while i < children.len() {
        let name = children[i].record.name;
        let mut j = i;
        while j < children.len() && children[j].record.name == name {
            j += 1;
        }
        let group = &children[i..j];
        if group.len() <= 4 {
            for n in group {
                print_span(n, depth, m);
            }
        } else {
            let wall_ms: f64 = group
                .iter()
                .filter_map(|n| n.record.duration_ns())
                .sum::<u64>() as f64
                / 1e6;
            let t0 = group
                .iter()
                .filter_map(|n| n.record.field_f64("sim_t0"))
                .fold(f64::INFINITY, f64::min);
            let t1 = group
                .iter()
                .filter_map(|n| n.record.field_f64("sim_t1"))
                .fold(f64::NEG_INFINITY, f64::max);
            let detail = if t0.is_finite() && t1.is_finite() {
                let e = window_energy_j(m, t0, t1);
                let total = m.result.energy_j().max(1e-12);
                format!(
                    "sim {t0:>7.1} -> {t1:>7.1} s  {:>9.1} kJ ({:>4.1}%)",
                    e / 1e3,
                    100.0 * e / total
                )
            } else {
                String::new()
            };
            print_trace_line(&format!("{name} x{}", group.len()), depth, wall_ms, &detail);
        }
        i = j;
    }
}

/// Re-run `target` with the pinned baseline recipe, diff its per-phase
/// trace aggregates against the stored baseline, and print the ranked
/// triage table. Exits 1 when a significant regression is found.
fn cmd_trace_diff(args: &Args, target: &str) -> Result<(), String> {
    let bench = resolve(target)?;
    let path =
        std::env::var("VPP_BENCH_OUT").unwrap_or_else(|_| "BENCH_results.json".to_string());
    let base = load_baseline(&path, flight::BASELINE_GROUP, bench.name())?;
    let mut cfg = flight::baseline_cfg();
    println!(
        "baseline : {path} / {} / {} ({} repeat sample(s))",
        flight::BASELINE_GROUP,
        bench.name(),
        base.samples.len()
    );
    if let Some((kind, factor)) = args.perturb {
        cfg = cfg.perturbed(kind, factor);
        println!("re-run   : perturbed, {} x{factor:.2}", kind.name());
    } else {
        println!("re-run   : unperturbed baseline recipe");
    }
    let (_m, current) = flight::capture(&bench, &cfg, &flight::baseline_ctx());
    let d = trace_diff(&base, &current, &DiffConfig::default());
    println!("paired   : {} repeat(s) bootstrapped", d.paired_repeats);
    println!();
    println!(
        "{:>4}  {:<26} {:<9} {:>12} {:>12} {:>8}  {:<26} verdict",
        "rank", "span", "metric", "base", "current", "delta%", "95% CI (delta)"
    );
    for (i, r) in d.rows.iter().enumerate() {
        let rel = if r.rel_delta.is_finite() {
            format!("{:+.1}", 100.0 * r.rel_delta)
        } else {
            "new".to_string()
        };
        let ci = match &r.ci {
            Some(ci) => format!("[{:+.3e}, {:+.3e}]", ci.lo, ci.hi),
            None => "(exact)".to_string(),
        };
        let verdict = if r.regression {
            "REGRESSION"
        } else if r.significant {
            "improved"
        } else if r.metric == "wall_ns" {
            "context"
        } else {
            "ok"
        };
        println!(
            "{:>4}  {:<26} {:<9} {:>12.4} {:>12.4} {:>8}  {:<26} {verdict}",
            i + 1,
            r.span,
            r.metric,
            r.base,
            r.current,
            rel,
            ci
        );
    }
    if d.counter_deltas.is_empty() {
        println!("\ncounters : all equal");
    } else {
        println!("\ncounters :");
        for c in &d.counter_deltas {
            println!("  {:<30} {:>12} -> {:>12}", c.name, c.base, c.current);
        }
    }
    println!();
    match d.top_regression() {
        Some(top) => {
            println!(
                "verdict  : REGRESSION — {} {} moved {:+.1}% beyond noise",
                top.span,
                top.metric,
                100.0 * top.rel_delta
            );
            std::process::exit(1);
        }
        None if d.significant().is_empty() => {
            println!("verdict  : clean — run matches the stored baseline");
        }
        None => {
            println!("verdict  : changed but not regressed (significant improvements only)");
        }
    }
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    // `vpp trace diff <benchmark>`, or `VPP_BENCH_DIFF=1 vpp trace <benchmark>`.
    if args.positional.first().map(String::as_str) == Some("diff") {
        let target = args.positional.get(1).ok_or("trace diff needs a target")?;
        return cmd_trace_diff(args, target);
    }
    let target = args.positional.first().ok_or("trace needs a target")?;
    if std::env::var("VPP_BENCH_DIFF").is_ok_and(|v| v == "1") {
        return cmd_trace_diff(args, target);
    }
    let bench = resolve(target)?;
    let nodes = args.nodes.unwrap_or(1);
    let mut cfg = match args.cap {
        Some(c) => protocol::RunConfig::capped(nodes, c),
        None => protocol::RunConfig::nodes(nodes),
    };
    if let Some((kind, factor)) = args.perturb {
        cfg = cfg.perturbed(kind, factor);
    }
    let mut c = ctx(args.quick);
    // One traced run: the span tree of a single execution, not the
    // protocol's repeat spread.
    c.repeats = 1;
    let session = trace::session(1 << 20);
    let m = protocol::measure(&bench, &cfg, &c);
    let report = session.finish();
    report.well_formed()?;
    match args.format.as_deref().unwrap_or("tree") {
        "tree" => {}
        "csv" => {
            print!("{}", report.to_csv());
            return Ok(());
        }
        "json" => {
            println!("{}", report.to_json().pretty());
            return Ok(());
        }
        "jsonl" => {
            print!("{}", report.to_jsonl());
            return Ok(());
        }
        "prom" => {
            print!("{}", report.metrics_snapshot().to_prom());
            return Ok(());
        }
        other => {
            return Err(format!(
                "unknown --format '{other}' (tree|csv|json|jsonl|prom)"
            ))
        }
    }
    println!("workload    : {} on {nodes} node(s)", bench.name());
    if let Some(cap) = args.cap {
        println!("GPU cap     : {cap:.0} W");
    }
    if let Some((kind, factor)) = args.perturb {
        println!("perturbed   : {} x{factor:.2}", kind.name());
    }
    println!(
        "sim runtime : {:.0} s    energy {:.2} MJ",
        m.runtime_s,
        m.energy_j / 1e6
    );
    println!();
    println!("{:<44} {:>9}  detail", "span", "wall ms");
    for root in report.span_tree() {
        print_span(&root, 0, &m);
    }
    if !report.counters.is_empty() {
        println!();
        println!("counters:");
        for (k, v) in &report.counters {
            println!("  {k:<30} {v:>12}");
        }
    }
    if !report.gauges.is_empty() {
        println!();
        println!("gauges:");
        for (k, v) in &report.gauges {
            println!("  {k:<30} {v:>12.1}");
        }
    }
    if report.dropped > 0 {
        println!();
        println!("(ring overflow: {} events dropped)", report.dropped);
    }
    Ok(())
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        eprintln!("usage: vpp <profile|caps|screen|phases|trace|list> ...");
        std::process::exit(2);
    };
    let args = match parse_args(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let result = match cmd.as_str() {
        "list" => {
            cmd_list();
            Ok(())
        }
        "profile" => cmd_profile(&args),
        "caps" => cmd_caps(&args),
        "screen" => cmd_screen(&args),
        "phases" => cmd_phases(&args),
        "trace" => cmd_trace(&args),
        other => Err(format!("unknown command '{other}'")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}
