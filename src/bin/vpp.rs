//! `vpp` — the operator's command-line tool.
//!
//! Commands register in a declarative table ([`COMMANDS`]): each entry
//! names its words (multi-word commands like `trace diff` match by
//! longest prefix), its operand, its flag specs and its handler. Usage
//! and `--help` text are generated from the table, and unknown flags are
//! rejected per-command (`--straggler` belongs to `screen` and nothing
//! else), so the parser cannot drift from the documentation.
//!
//! ```text
//! vpp list
//! vpp profile      <benchmark|dir> [--nodes N] [--cap W] [--quick] [--metrics-port PORT]
//! vpp caps         <benchmark>     [--nodes N] [--quick] [--metrics-port PORT]
//! vpp screen       <benchmark>     [--nodes N] [--straggler IDX:FACTOR]
//! vpp phases       <benchmark>     [--nodes N]
//! vpp trace        <benchmark>     [--nodes N] [--cap W] [--quick]
//!                                  [--format tree|csv|json|jsonl|prom]
//!                                  [--perturb PHASE:FACTOR] [--metrics-port PORT]
//! vpp trace diff   <benchmark>     [--perturb PHASE:FACTOR]
//! vpp trace accept <benchmark>     [--tolerance PHASE:PCT]...
//! vpp serve        [benchmark]     [--nodes N] [--cap W] [--quick]
//!                                  [--repeat N] [--metrics-port PORT]
//!                                  [--max-sessions N] [--federate URL]...
//! vpp logs         <url>           [--after SEQ] [--level LVL] [--limit N]
//! ```
//!
//! `<benchmark>` is a Table I name (see `vpp list`); a directory containing
//! `INCAR` / `POSCAR` (and optionally `KPOINTS`) works everywhere a
//! benchmark name does.
//!
//! `trace diff` re-runs the benchmark with the pinned baseline recipe,
//! compares the per-phase trace aggregates against the baseline stored in
//! `BENCH_results.json` (group `trace_baselines`), and exits 1 when a
//! significant regression is found. `--perturb` injects an artificial
//! slowdown — a phase kind stretches compute, `collective:FACTOR`
//! stretches network time only. Setting `VPP_BENCH_DIFF=1` turns a plain
//! `vpp trace <benchmark>` into `vpp trace diff <benchmark>`.
//!
//! `trace accept` re-captures the baseline with the same pinned recipe
//! and blesses it in place, persisting any `--tolerance PHASE:PCT`
//! overrides alongside the samples.
//!
//! `serve` (and `--metrics-port` on `profile` / `caps` / `trace`) starts
//! the std-only observability endpoint (DESIGN.md §3.7): `GET /metrics`,
//! `/healthz` and `/trace?format=json|jsonl|csv` scrape the in-flight
//! run live.
//!
//! `serve` is also the multi-tenant job service: `POST /jobs` submits a
//! JSON job spec (validated against the Table I recipes), `GET /jobs`
//! lists sessions, and `/jobs/<id>`, `/jobs/<id>/trace?after=SEQ` and
//! `/jobs/<id>/metrics` expose each job's status, cursor-streamed trace
//! and Prometheus series. `--max-sessions` bounds concurrent sessions
//! (further jobs queue); `--federate URL` (repeatable) merges peer
//! `/metrics` expositions into this instance's, labelled by peer. The
//! benchmark operand is optional — without one the process runs as a
//! service that only executes POSTed jobs.
//!
//! `logs` fetches one chunk of a running service's structured log
//! journal (`GET /logs?after=SEQ&level=LVL&limit=N`) as jsonl on stdout;
//! the next cursor and drop accounting print to stderr so the output
//! pipes cleanly into `jq`.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use vasp_power_profiles::cluster::{execute, JobSpec, NetworkModel, Straggler};
use vasp_power_profiles::core::{benchmarks, flight, protocol, ProtocolJobHandler};
use vasp_power_profiles::dft::{parse_incar, parse_kpoints, parse_poscar, PhaseKind};
use vasp_power_profiles::powercap::policy::FixedCap;
use vasp_power_profiles::powercap::{campaign, CampaignSpec, CapPolicy, TcoAware};
use vasp_power_profiles::stats::{trace_diff, DiffConfig, Segmenter};
use vasp_power_profiles::substrate::bench::{load_baseline, store_baseline};
use vasp_power_profiles::substrate::serve::{self, RunState, ServeConfig, ServeHandle};
use vasp_power_profiles::substrate::trace::{self, ExportFormat};
use vasp_power_profiles::telemetry::{Sampler, Screener};

// ---------------------------------------------------------------------------
// Declarative command table
// ---------------------------------------------------------------------------

/// One flag a command accepts.
struct FlagSpec {
    /// Name without the leading `--`.
    name: &'static str,
    /// Metavar when the flag takes a value; `None` for booleans.
    value: Option<&'static str>,
    /// May appear more than once.
    repeatable: bool,
    help: &'static str,
}

const fn flag(name: &'static str, value: &'static str, help: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        value: Some(value),
        repeatable: false,
        help,
    }
}

const fn switch(name: &'static str, help: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        value: None,
        repeatable: false,
        help,
    }
}

const NODES: FlagSpec = flag("nodes", "N", "nodes to simulate");
const CAP: FlagSpec = flag("cap", "W", "per-GPU power cap, watts");
const QUICK: FlagSpec = switch("quick", "reduced repeats / settings for smoke runs");
const METRICS_PORT: FlagSpec = flag(
    "metrics-port",
    "PORT",
    "serve /metrics, /healthz and /trace on 127.0.0.1:PORT for the run (0 = ephemeral)",
);

/// One `vpp` subcommand: words, operand, flags and handler.
struct CommandSpec {
    /// Command words; multi-word entries (`trace diff`) match by longest
    /// prefix against the raw argv.
    words: &'static [&'static str],
    /// Operand metavar shown in usage, empty when the command takes none.
    operand: &'static str,
    summary: &'static str,
    flags: &'static [FlagSpec],
    run: fn(&Parsed) -> Result<(), String>,
}

const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        words: &["list"],
        operand: "",
        summary: "name the Table I benchmarks",
        flags: &[],
        run: cmd_list,
    },
    CommandSpec {
        words: &["profile"],
        operand: "<benchmark|dir>",
        summary: "run the measurement protocol and print the power summary",
        flags: &[NODES, CAP, QUICK, METRICS_PORT],
        run: cmd_profile,
    },
    CommandSpec {
        words: &["caps"],
        operand: "<benchmark>",
        summary: "sweep GPU power caps (400/300/200/100 W)",
        flags: &[NODES, QUICK, METRICS_PORT],
        run: cmd_caps,
    },
    CommandSpec {
        words: &["screen"],
        operand: "<benchmark>",
        summary: "per-node power screening with z-score outlier verdicts",
        flags: &[
            NODES,
            flag("straggler", "IDX:FACTOR", "inject a slow node before screening"),
        ],
        run: cmd_screen,
    },
    CommandSpec {
        words: &["phases"],
        operand: "<benchmark>",
        summary: "segment the node power series into phases",
        flags: &[NODES],
        run: cmd_phases,
    },
    CommandSpec {
        words: &["campaign"],
        operand: "",
        summary: "simulate a seeded job campaign under each cap policy",
        flags: &[
            flag("jobs", "N", "jobs to generate (default 2000)"),
            flag("seed", "S", "campaign master seed (default 7)"),
            flag("partitions", "P", "independent machine partitions (default 8)"),
            flag("shards", "K", "parallel shards (default: one per partition)"),
            flag("cap", "WATTS", "add a fixed-cap policy column at WATTS"),
            flag("policy", "NAME", "add a named policy column (tco)"),
            flag(
                "site-budget",
                "WATTS",
                "site-wide envelope: couple partitions through the watt ledger",
            ),
        ],
        run: cmd_campaign,
    },
    CommandSpec {
        words: &["trace"],
        operand: "<benchmark>",
        summary: "one traced execution: span tree or a machine export",
        flags: &[
            NODES,
            CAP,
            QUICK,
            flag("format", "FMT", "tree|csv|json|jsonl|prom (default tree)"),
            flag(
                "perturb",
                "PHASE:FACTOR",
                "slow one phase kind, or `collective:FACTOR` for network time",
            ),
            METRICS_PORT,
        ],
        run: cmd_trace,
    },
    CommandSpec {
        words: &["trace", "diff"],
        operand: "<benchmark>",
        summary: "re-run the pinned recipe and diff against the stored baseline",
        flags: &[flag(
            "perturb",
            "PHASE:FACTOR",
            "slow one phase kind, or `collective:FACTOR` — the regression fixture",
        )],
        run: cmd_trace_diff,
    },
    CommandSpec {
        words: &["trace", "accept"],
        operand: "<benchmark>",
        summary: "re-capture and bless the stored trace baseline in place",
        flags: &[FlagSpec {
            name: "tolerance",
            value: Some("PHASE:PCT"),
            repeatable: true,
            help: "persist a per-span drift tolerance (percent) in the baseline",
        }],
        run: cmd_trace_accept,
    },
    CommandSpec {
        words: &["serve"],
        operand: "[benchmark]",
        summary: "observability endpoint + multi-tenant POST /jobs service",
        flags: &[
            NODES,
            CAP,
            QUICK,
            flag("repeat", "N", "measured runs before settling into serve-only mode"),
            METRICS_PORT,
            flag(
                "max-sessions",
                "N",
                "concurrent job sessions; further POSTed jobs queue (default 2)",
            ),
            flag(
                "max-queue",
                "N",
                "queued submissions before POST /jobs answers 429 (default 32)",
            ),
            flag(
                "job-ttl",
                "DUR",
                "evict terminal jobs after DUR (30s/15m/1h; 0 keeps forever; default 15m)",
            ),
            FlagSpec {
                name: "federate",
                value: Some("URL"),
                repeatable: true,
                help: "merge this peer's /metrics into ours, labelled peer=\"URL\"",
            },
        ],
        run: cmd_serve,
    },
    CommandSpec {
        words: &["logs"],
        operand: "<url>",
        summary: "fetch a running service's structured log journal (jsonl)",
        flags: &[
            flag("after", "SEQ", "cursor from the previous chunk (default 0)"),
            flag("level", "LVL", "minimum severity: debug|info|warn|error (default debug)"),
            flag("limit", "N", "records per chunk (default 512)"),
        ],
        run: cmd_logs,
    },
];

/// Parsed argv for one command: operands plus `(flag, raw value)` pairs
/// in order of appearance (booleans store an empty value).
struct Parsed {
    positional: Vec<String>,
    flags: Vec<(&'static str, String)>,
}

impl Parsed {
    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    fn values<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> {
        self.flags
            .iter()
            .filter(move |(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, name: &str) -> bool {
        self.value(name).is_some()
    }
}

impl CommandSpec {
    fn id(&self) -> String {
        self.words.join(" ")
    }

    fn parse(&self, rest: &[String]) -> Result<Parsed, String> {
        let mut parsed = Parsed {
            positional: Vec::new(),
            flags: Vec::new(),
        };
        let mut it = rest.iter();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                parsed.positional.push(a.clone());
                continue;
            };
            let Some(spec) = self.flags.iter().find(|f| f.name == name) else {
                return Err(format!("unknown flag '--{name}' for 'vpp {}'", self.id()));
            };
            let value = match spec.value {
                Some(metavar) => it
                    .next()
                    .ok_or_else(|| format!("--{name} needs {metavar}"))?
                    .clone(),
                None => String::new(),
            };
            if !spec.repeatable && parsed.flags.iter().any(|(n, _)| *n == spec.name) {
                return Err(format!("--{name} given more than once"));
            }
            parsed.flags.push((spec.name, value));
        }
        Ok(parsed)
    }

    fn usage(&self) -> String {
        let mut s = format!("usage: vpp {}", self.id());
        if !self.operand.is_empty() {
            s.push(' ');
            s.push_str(self.operand);
        }
        for f in self.flags {
            match f.value {
                Some(metavar) => s.push_str(&format!(" [--{} {metavar}]", f.name)),
                None => s.push_str(&format!(" [--{}]", f.name)),
            }
            if f.repeatable {
                s.push_str("...");
            }
        }
        s.push('\n');
        s
    }

    fn help(&self) -> String {
        let mut s = self.usage();
        s.push_str(&format!("\n{}\n", self.summary));
        if !self.flags.is_empty() {
            s.push_str("\nflags:\n");
            for f in self.flags {
                let head = match f.value {
                    Some(metavar) => format!("--{} {metavar}", f.name),
                    None => format!("--{}", f.name),
                };
                s.push_str(&format!("  {head:<28} {}\n", f.help));
            }
        }
        s
    }
}

fn global_usage() -> String {
    let mut s = String::from("usage: vpp <command> [flags]\n\ncommands:\n");
    for c in COMMANDS {
        let left = if c.operand.is_empty() {
            c.id()
        } else {
            format!("{} {}", c.id(), c.operand)
        };
        s.push_str(&format!("  {left:<28} {}\n", c.summary));
    }
    s.push_str("\nrun `vpp <command> --help` for that command's flags\n");
    s
}

/// Longest-prefix match of `raw` against the command table; returns the
/// spec and the remaining (un-consumed) argv.
fn match_command(raw: &[String]) -> Option<(&'static CommandSpec, &[String])> {
    let mut best: Option<(&'static CommandSpec, usize)> = None;
    for c in COMMANDS {
        let n = c.words.len();
        let hit = raw.len() >= n && raw[..n].iter().zip(c.words).all(|(a, b)| a == b);
        if hit && best.is_none_or(|(_, len)| n > len) {
            best = Some((c, n));
        }
    }
    best.map(|(c, n)| (c, &raw[n..]))
}

// ---------------------------------------------------------------------------
// Typed flag readers
// ---------------------------------------------------------------------------

fn flag_parse<T: std::str::FromStr>(p: &Parsed, name: &str) -> Result<Option<T>, String> {
    p.value(name)
        .map(|v| v.parse().map_err(|_| format!("bad --{name} '{v}'")))
        .transpose()
}

/// A `--perturb PHASE:FACTOR` value: either a compute phase kind or the
/// `collective` pseudo-phase stretching network time only.
#[derive(Clone, Copy)]
enum Perturb {
    Phase(PhaseKind, f64),
    Collective(f64),
}

impl Perturb {
    fn label(self) -> String {
        match self {
            Perturb::Phase(kind, factor) => format!("{} x{factor:.2}", kind.name()),
            Perturb::Collective(factor) => format!("collective x{factor:.2}"),
        }
    }

    fn apply(self, cfg: protocol::RunConfig) -> protocol::RunConfig {
        match self {
            Perturb::Phase(kind, factor) => cfg.perturbed(kind, factor),
            Perturb::Collective(factor) => cfg.perturbed_collective(factor),
        }
    }
}

fn flag_perturb(p: &Parsed) -> Result<Option<Perturb>, String> {
    let Some(v) = p.value("perturb") else {
        return Ok(None);
    };
    let (phase, factor) = v
        .split_once(':')
        .ok_or_else(|| format!("bad --perturb '{v}' (want PHASE:FACTOR)"))?;
    let factor: f64 = factor
        .parse()
        .map_err(|_| format!("bad perturb factor '{factor}'"))?;
    if !(factor > 0.0 && factor.is_finite()) {
        return Err(format!("perturb factor must be positive, got {factor}"));
    }
    if phase == "collective" {
        return Ok(Some(Perturb::Collective(factor)));
    }
    let kind = PhaseKind::parse(phase).ok_or_else(|| {
        format!("unknown phase '{phase}' (init|scf_iter|rpa_diag|rpa_chi0|collective)")
    })?;
    Ok(Some(Perturb::Phase(kind, factor)))
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

/// Resolve a benchmark name or an input-deck directory.
fn resolve(target: &str) -> Result<benchmarks::Benchmark, String> {
    if let Some(b) = benchmarks::suite().into_iter().find(|b| b.name() == target) {
        return Ok(b);
    }
    let dir = std::path::Path::new(target);
    if dir.is_dir() {
        let incar = std::fs::read_to_string(dir.join("INCAR"))
            .map_err(|e| format!("cannot read {target}/INCAR: {e}"))?;
        let poscar = std::fs::read_to_string(dir.join("POSCAR"))
            .map_err(|e| format!("cannot read {target}/POSCAR: {e}"))?;
        let mut deck = parse_incar(&incar).map_err(|e| format!("INCAR: {e}"))?.deck;
        let cell = parse_poscar(&poscar).map_err(|e| format!("POSCAR: {e}"))?;
        if let Ok(kp) = std::fs::read_to_string(dir.join("KPOINTS")) {
            deck.kpoints = parse_kpoints(&kp).map_err(|e| format!("KPOINTS: {e}"))?;
        }
        deck.validate().map_err(|e| format!("combined deck: {e}"))?;
        return Ok(benchmarks::Benchmark {
            cell,
            deck,
            cap_study_nodes: 1,
        });
    }
    Err(format!(
        "'{target}' is neither a benchmark name nor an input directory; try `vpp list`"
    ))
}

fn ctx(quick: bool) -> protocol::StudyContext {
    if quick {
        protocol::StudyContext::quick()
    } else {
        protocol::StudyContext::paper()
    }
}

fn flush_stdout() {
    let _ = std::io::stdout().flush();
}

/// Start the observability server when a `--metrics-port` was given. The
/// bound address is printed (and flushed) immediately so a scraper can
/// find an ephemeral port before the run starts.
fn start_server(p: &Parsed) -> Result<Option<ServeHandle>, String> {
    let Some(port) = flag_parse::<u16>(p, "metrics-port")? else {
        return Ok(None);
    };
    let handle =
        serve::serve(port).map_err(|e| format!("cannot bind metrics port {port}: {e}"))?;
    println!("serving on http://{}", handle.addr());
    println!("endpoints   : /metrics /healthz /trace?format=json|jsonl|csv");
    flush_stdout();
    Ok(Some(handle))
}

// ---------------------------------------------------------------------------
// Command handlers
// ---------------------------------------------------------------------------

fn cmd_list(_p: &Parsed) -> Result<(), String> {
    println!("{:<14} {:>9} {:>7} {:>8}  functional", "benchmark", "electrons", "ions", "NPLWV");
    for b in benchmarks::suite() {
        let p = b.params();
        println!(
            "{:<14} {:>9} {:>7} {:>8}  {:?}",
            b.name(),
            p.nelect,
            p.n_ions,
            p.nplwv,
            p.xc
        );
    }
    Ok(())
}

fn cmd_profile(p: &Parsed) -> Result<(), String> {
    let target = p.positional.first().ok_or("profile needs a target")?;
    let bench = resolve(target)?;
    let nodes = flag_parse(p, "nodes")?.unwrap_or(1);
    let cap = flag_parse::<f64>(p, "cap")?;
    let cfg = match cap {
        Some(c) => protocol::RunConfig::capped(nodes, c),
        None => protocol::RunConfig::nodes(nodes),
    };
    let server = start_server(p)?;
    // The endpoint reads the live global recorder, so give it a session
    // to scrape even though `profile` keeps no trace of its own.
    let _session = server
        .as_ref()
        .map(|_| trace::session(flight::SESSION_CAPACITY));
    if let Some(h) = &server {
        h.set_workload(bench.name(), 1);
        h.set_state(RunState::Running);
    }
    let m = protocol::measure(&bench, &cfg, &ctx(p.has("quick")));
    if let Some(h) = &server {
        h.run_completed();
        h.set_state(RunState::Done);
    }
    println!("workload   : {} on {nodes} node(s)", bench.name());
    if let Some(c) = cap {
        println!("GPU cap    : {c:.0} W");
    }
    println!("runtime    : {:.0} s", m.runtime_s);
    println!("energy     : {:.2} MJ", m.energy_j / 1e6);
    println!("node power : {}", m.node_summary);
    println!("GPU0 power : {}", m.gpu_summary);
    Ok(())
}

fn cmd_caps(p: &Parsed) -> Result<(), String> {
    let target = p.positional.first().ok_or("caps needs a target")?;
    let bench = resolve(target)?;
    let nodes = flag_parse(p, "nodes")?.unwrap_or(bench.cap_study_nodes);
    let c = ctx(p.has("quick"));
    let server = start_server(p)?;
    let _session = server
        .as_ref()
        .map(|_| trace::session(flight::SESSION_CAPACITY));
    if let Some(h) = &server {
        h.set_workload(bench.name(), 4);
        h.set_state(RunState::Running);
    }
    println!(
        "{:>6} {:>10} {:>6} {:>12} {:>10}",
        "cap W", "runtime s", "perf", "node mode W", "energy MJ"
    );
    let base = protocol::measure(&bench, &protocol::RunConfig::nodes(nodes), &c);
    if let Some(h) = &server {
        h.run_completed();
    }
    for cap in [400.0, 300.0, 200.0, 100.0] {
        let m = if cap >= 400.0 {
            base.clone()
        } else {
            let m = protocol::measure(&bench, &protocol::RunConfig::capped(nodes, cap), &c);
            if let Some(h) = &server {
                h.run_completed();
            }
            m
        };
        println!(
            "{cap:>6.0} {:>10.0} {:>6.2} {:>12.0} {:>10.2}",
            m.runtime_s,
            base.runtime_s / m.runtime_s,
            m.node_summary.high_mode_w,
            m.energy_j / 1e6
        );
        flush_stdout();
    }
    if let Some(h) = &server {
        h.set_state(RunState::Done);
    }
    Ok(())
}

fn cmd_screen(p: &Parsed) -> Result<(), String> {
    let target = p.positional.first().ok_or("screen needs a target")?;
    let bench = resolve(target)?;
    let nodes = flag_parse::<usize>(p, "nodes")?.unwrap_or(4).max(3);
    let c = ctx(true);
    let plan = protocol::plan_for(&bench, nodes, &c);
    let mut spec = JobSpec::new(nodes);
    if let Some(v) = p.value("straggler") {
        let (idx, factor) = v
            .split_once(':')
            .ok_or_else(|| format!("bad --straggler '{v}' (want IDX:FACTOR)"))?;
        let idx: usize = idx
            .parse()
            .map_err(|_| format!("bad straggler index '{idx}'"))?;
        let factor: f64 = factor
            .parse()
            .map_err(|_| format!("bad straggler factor '{factor}'"))?;
        if idx >= nodes {
            return Err(format!("straggler index {idx} out of {nodes} nodes"));
        }
        spec.straggler = Some(Straggler {
            node: idx,
            slowdown: factor,
        });
        println!("(injected straggler: node {idx} at {factor}x)");
    }
    let res = execute(&plan, &spec, &NetworkModel::perlmutter());
    let sampler = Sampler::ideal(1.0);
    let per_node: Vec<_> = res
        .node_traces
        .iter()
        .map(|t| sampler.sample(&t.node))
        .collect();
    println!("{:>5} {:>10} {:>8}  verdict", "node", "mean W", "z");
    for v in Screener::default_threshold().screen(&per_node) {
        println!(
            "{:>5} {:>10.0} {:>8.2}  {}",
            v.node,
            v.mean_w,
            v.z_score,
            if v.outlier { "OUTLIER" } else { "ok" }
        );
    }
    Ok(())
}

fn cmd_phases(p: &Parsed) -> Result<(), String> {
    let target = p.positional.first().ok_or("phases needs a target")?;
    let bench = resolve(target)?;
    let nodes = flag_parse(p, "nodes")?.unwrap_or(1);
    let m = protocol::measure(&bench, &protocol::RunConfig::nodes(nodes), &ctx(true));
    let interval = m.node_series.mean_interval_s().unwrap_or(1.0);
    println!("{:>10} {:>12} {:>10}", "duration s", "mean W", "samples");
    for seg in Segmenter::node_power().segment(m.node_series.values()) {
        println!(
            "{:>10.0} {:>12.0} {:>10}",
            seg.len() as f64 * interval,
            seg.mean_w,
            seg.len()
        );
    }
    Ok(())
}

/// Sum of node-level energy over a sim-time window, joules.
fn window_energy_j(m: &protocol::Measured, t0: f64, t1: f64) -> f64 {
    m.result
        .node_traces
        .iter()
        .map(|c| c.node.energy_between(t0, t1))
        .sum()
}

/// Per-span detail column: sim-time window plus attributed energy for
/// phase spans, the recorded sim runtime for execution-level spans.
fn span_detail(rec: &trace::SpanRecord, m: &protocol::Measured) -> String {
    if let (Some(t0), Some(t1)) = (rec.field_f64("sim_t0"), rec.field_f64("sim_t1")) {
        let e = window_energy_j(m, t0, t1);
        let total = m.result.energy_j().max(1e-12);
        return format!(
            "sim {t0:>7.1} -> {t1:>7.1} s  {:>9.1} kJ ({:>4.1}%)",
            e / 1e3,
            100.0 * e / total
        );
    }
    if let Some(r) = rec.field_f64("runtime_s") {
        return format!("sim runtime {r:.0} s");
    }
    String::new()
}

fn print_trace_line(label: &str, depth: usize, wall_ms: f64, detail: &str) {
    let padded = format!("{}{label}", "  ".repeat(depth));
    println!("{padded:<44} {wall_ms:>9.3}  {detail}");
}

fn print_span(node: &trace::SpanNode, depth: usize, m: &protocol::Measured) {
    let label = match node.record.field_f64("index") {
        Some(i) => format!("{}[{}]", node.record.name, i as u64),
        None => node.record.name.to_string(),
    };
    let wall_ms = node.record.duration_ns().map_or(f64::NAN, |d| d as f64 / 1e6);
    print_trace_line(&label, depth, wall_ms, &span_detail(&node.record, m));
    print_span_children(&node.children, depth + 1, m);
}

/// Print a sibling list, collapsing runs of more than four same-named
/// spans (SCF iterations, collectives) into one aggregate row so deep
/// traces stay readable.
fn print_span_children(children: &[trace::SpanNode], depth: usize, m: &protocol::Measured) {
    let mut i = 0;
    while i < children.len() {
        let name = children[i].record.name;
        let mut j = i;
        while j < children.len() && children[j].record.name == name {
            j += 1;
        }
        let group = &children[i..j];
        if group.len() <= 4 {
            for n in group {
                print_span(n, depth, m);
            }
        } else {
            let wall_ms: f64 = group
                .iter()
                .filter_map(|n| n.record.duration_ns())
                .sum::<u64>() as f64
                / 1e6;
            let t0 = group
                .iter()
                .filter_map(|n| n.record.field_f64("sim_t0"))
                .fold(f64::INFINITY, f64::min);
            let t1 = group
                .iter()
                .filter_map(|n| n.record.field_f64("sim_t1"))
                .fold(f64::NEG_INFINITY, f64::max);
            let detail = if t0.is_finite() && t1.is_finite() {
                let e = window_energy_j(m, t0, t1);
                let total = m.result.energy_j().max(1e-12);
                format!(
                    "sim {t0:>7.1} -> {t1:>7.1} s  {:>9.1} kJ ({:>4.1}%)",
                    e / 1e3,
                    100.0 * e / total
                )
            } else {
                String::new()
            };
            print_trace_line(&format!("{name} x{}", group.len()), depth, wall_ms, &detail);
        }
        i = j;
    }
}

fn bench_out_path() -> String {
    std::env::var("VPP_BENCH_OUT").unwrap_or_else(|_| "BENCH_results.json".to_string())
}

/// Simulate a seeded campaign of heterogeneous jobs under every cap
/// policy and print the what-if comparison table.
fn cmd_campaign(p: &Parsed) -> Result<(), String> {
    let jobs = flag_parse(p, "jobs")?.unwrap_or(2000usize);
    let seed = flag_parse(p, "seed")?.unwrap_or(7u64);
    let partitions = flag_parse(p, "partitions")?.unwrap_or(8usize);
    if jobs == 0 || partitions == 0 {
        return Err("--jobs and --partitions must be positive".into());
    }
    let mut spec = CampaignSpec {
        partitions,
        ..CampaignSpec::new(jobs, seed)
    };
    if let Some(budget) = flag_parse::<f64>(p, "site-budget")? {
        if !(budget > 0.0 && budget.is_finite()) {
            return Err(format!("--site-budget must be positive watts, got {budget}"));
        }
        spec.site_budget_w = Some(budget);
    }
    let shards = flag_parse(p, "shards")?.unwrap_or(spec.partitions);
    if shards == 0 {
        return Err("--shards must be positive".into());
    }
    // Fixed-cap storage must outlive the borrow the policy table takes.
    let fixed: Option<FixedCap> = match flag_parse::<f64>(p, "cap")? {
        Some(cap) if cap > 0.0 && cap.is_finite() => Some(FixedCap(cap)),
        Some(cap) => return Err(format!("--cap must be positive, got {cap}")),
        None => None,
    };
    let mut policies: Vec<(String, &dyn CapPolicy)> = campaign::baseline_policies()
        .into_iter()
        .map(|(n, p)| (n.to_string(), p as &dyn CapPolicy))
        .collect();
    if let Some(fc) = &fixed {
        policies.push((format!("fixed_{:.0}w", fc.0), fc));
    }
    if let Some(name) = p.value("policy") {
        match name {
            "tco" | "tco_aware" => policies.push(("tco_aware".into(), &TcoAware::DEFAULT)),
            other => return Err(format!("unknown --policy '{other}'; known: tco")),
        }
    }
    println!(
        "campaign : {} jobs, seed {}, {} partitions x {} nodes ({:.0} kW each), {} shard(s)",
        spec.jobs,
        spec.seed,
        spec.partitions,
        spec.nodes_per_partition,
        spec.partition_budget_w / 1e3,
        shards
    );
    if let Some(budget) = spec.site_budget_w {
        println!(
            "site     : {:.1} kW envelope ({:.0} % of the summed {:.1} kW), global backfill on",
            budget / 1e3,
            100.0 * budget / spec.summed_budget_w(),
            spec.summed_budget_w() / 1e3
        );
    }
    println!();
    println!(
        "{:<14} {:>8} {:>10} {:>9} {:>9} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "policy",
        "jobs/h",
        "makespan",
        "peak kW",
        "mean kW",
        "energy MJ",
        "tco $",
        "slow p50",
        "slow p90",
        "backfill"
    );
    let t0 = std::time::Instant::now();
    let mut worst_peak_w: f64 = 0.0;
    for (name, policy) in &policies {
        let out = campaign::run(&spec, *policy, shards);
        worst_peak_w = worst_peak_w.max(out.merged.peak_power_w);
        println!(
            "{:<14} {:>8.1} {:>9.2}h {:>9.1} {:>9.1} {:>10.1} {:>9.2} {:>9.3} {:>9.3} {:>9}",
            name,
            out.throughput_per_hour(),
            out.merged.makespan_s / 3600.0,
            out.merged.peak_power_w / 1e3,
            out.merged.mean_power_w / 1e3,
            out.total_energy_j / 1e6,
            out.tco_usd,
            out.slowdown.p50,
            out.slowdown.p90,
            out.backfilled
        );
    }
    println!();
    if let Some(budget) = spec.site_budget_w {
        let ok = worst_peak_w <= budget + 1e-6;
        println!(
            "within budget : {} (worst peak {:.1} kW vs {:.1} kW envelope)",
            if ok { "yes" } else { "NO" },
            worst_peak_w / 1e3,
            budget / 1e3
        );
    }
    println!(
        "simulated {} policy runs in {:.2} s wall",
        policies.len(),
        t0.elapsed().as_secs_f64()
    );
    Ok(())
}

/// Re-run `target` with the pinned baseline recipe, diff its per-phase
/// trace aggregates against the stored baseline, and print the ranked
/// triage table. Exits 1 when a significant regression is found.
fn cmd_trace_diff(p: &Parsed) -> Result<(), String> {
    let target = p.positional.first().ok_or("trace diff needs a target")?;
    // The campaign baseline is a pinned recipe of its own, not one of the
    // Table I benchmarks: it has no perturbable protocol phases.
    if target == campaign::BASELINE_NAME {
        if flag_perturb(p)?.is_some() {
            return Err("--perturb applies to protocol benchmarks, not the campaign".into());
        }
        let path = bench_out_path();
        let base = load_baseline(&path, flight::BASELINE_GROUP, campaign::BASELINE_NAME)?;
        println!(
            "baseline : {path} / {} / {} ({} repeat sample(s))",
            flight::BASELINE_GROUP,
            campaign::BASELINE_NAME,
            base.samples.len()
        );
        println!("re-run   : pinned campaign recipe (unperturbed)");
        let current = campaign::capture_baseline(flight::SESSION_CAPACITY);
        let d = trace_diff(&base, &current, &DiffConfig::default());
        return print_trace_diff(&d);
    }
    let bench = resolve(target)?;
    let path = bench_out_path();
    let base = load_baseline(&path, flight::BASELINE_GROUP, bench.name())?;
    let mut cfg = flight::baseline_cfg();
    println!(
        "baseline : {path} / {} / {} ({} repeat sample(s))",
        flight::BASELINE_GROUP,
        bench.name(),
        base.samples.len()
    );
    match flag_perturb(p)? {
        Some(perturb) => {
            cfg = perturb.apply(cfg);
            println!("re-run   : perturbed, {}", perturb.label());
        }
        None => println!("re-run   : unperturbed baseline recipe"),
    }
    let (_m, current) = flight::capture(&bench, &cfg, &flight::baseline_ctx());
    let d = trace_diff(&base, &current, &DiffConfig::default());
    print_trace_diff(&d)
}

/// Print the ranked diff table, counters and verdict; exits 1 on a
/// significant regression.
fn print_trace_diff(d: &vasp_power_profiles::stats::TraceDiff) -> Result<(), String> {
    println!("paired   : {} repeat(s) bootstrapped", d.paired_repeats);
    println!();
    println!(
        "{:>4}  {:<26} {:<9} {:>12} {:>12} {:>8}  {:<26} verdict",
        "rank", "span", "metric", "base", "current", "delta%", "95% CI (delta)"
    );
    for (i, r) in d.rows.iter().enumerate() {
        let rel = if r.rel_delta.is_finite() {
            format!("{:+.1}", 100.0 * r.rel_delta)
        } else {
            "new".to_string()
        };
        let ci = match &r.ci {
            Some(ci) => format!("[{:+.3e}, {:+.3e}]", ci.lo, ci.hi),
            None => "(exact)".to_string(),
        };
        let verdict = if r.regression {
            "REGRESSION"
        } else if r.significant {
            "improved"
        } else if r.metric == "wall_ns" {
            "context"
        } else {
            "ok"
        };
        println!(
            "{:>4}  {:<26} {:<9} {:>12.4} {:>12.4} {:>8}  {:<26} {verdict}",
            i + 1,
            r.span,
            r.metric,
            r.base,
            r.current,
            rel,
            ci
        );
    }
    if d.counter_deltas.is_empty() {
        println!("\ncounters : all equal");
    } else {
        println!("\ncounters :");
        for c in &d.counter_deltas {
            println!("  {:<30} {:>12} -> {:>12}", c.name, c.base, c.current);
        }
    }
    println!();
    match d.top_regression() {
        Some(top) => {
            println!(
                "verdict  : REGRESSION — {} {} moved {:+.1}% beyond noise",
                top.span,
                top.metric,
                100.0 * top.rel_delta
            );
            std::process::exit(1);
        }
        None if d.significant().is_empty() => {
            println!("verdict  : clean — run matches the stored baseline");
        }
        None => {
            println!("verdict  : changed but not regressed (significant improvements only)");
        }
    }
    Ok(())
}

/// Re-capture `target` with the pinned recipe and bless the result as the
/// stored baseline, persisting `--tolerance` overrides next to it.
/// Parse repeated `--tolerance PHASE:PCT` flags into span-name fractions.
fn parse_tolerances(p: &Parsed) -> Result<BTreeMap<String, f64>, String> {
    let mut tolerances = BTreeMap::new();
    for v in p.values("tolerance") {
        let (span, pct) = v
            .split_once(':')
            .ok_or_else(|| format!("bad --tolerance '{v}' (want PHASE:PCT)"))?;
        // Phase kinds normalise to their span names; anything dotted is
        // taken as a raw span name (`job.collective`).
        let name = match PhaseKind::parse(span) {
            Some(kind) => kind.name().to_string(),
            None if span.contains('.') => span.to_string(),
            None => {
                return Err(format!(
                    "unknown phase '{span}' (init|scf_iter|rpa_diag|rpa_chi0, \
                     or a span name like job.collective)"
                ))
            }
        };
        let pct: f64 = pct
            .parse()
            .map_err(|_| format!("bad tolerance percent '{pct}'"))?;
        if !(pct >= 0.0 && pct.is_finite()) {
            return Err(format!("tolerance percent must be >= 0, got {pct}"));
        }
        tolerances.insert(name, pct / 100.0);
    }
    Ok(tolerances)
}

fn cmd_trace_accept(p: &Parsed) -> Result<(), String> {
    let target = p.positional.first().ok_or("trace accept needs a target")?;
    if target == campaign::BASELINE_NAME {
        let mut baseline = campaign::capture_baseline(flight::SESSION_CAPACITY);
        baseline.tolerances = parse_tolerances(p)?;
        let path = bench_out_path();
        store_baseline(&path, flight::BASELINE_GROUP, campaign::BASELINE_NAME, &baseline)?;
        println!(
            "blessed  : {path} / {} / {} ({} repeat sample(s))",
            flight::BASELINE_GROUP,
            campaign::BASELINE_NAME,
            baseline.samples.len()
        );
        return Ok(());
    }
    let bench = resolve(target)?;
    let tolerances = parse_tolerances(p)?;
    let (_m, mut baseline) =
        flight::capture(&bench, &flight::baseline_cfg(), &flight::baseline_ctx());
    baseline.tolerances = tolerances;
    let path = bench_out_path();
    store_baseline(&path, flight::BASELINE_GROUP, bench.name(), &baseline)?;
    println!(
        "blessed  : {path} / {} / {} ({} repeat sample(s))",
        flight::BASELINE_GROUP,
        bench.name(),
        baseline.samples.len()
    );
    if baseline.tolerances.is_empty() {
        println!("tolerance: none (exact noise floor applies)");
    } else {
        for (name, frac) in &baseline.tolerances {
            println!("tolerance: {name} ±{:.1}%", 100.0 * frac);
        }
    }
    Ok(())
}

fn cmd_trace(p: &Parsed) -> Result<(), String> {
    let target = p.positional.first().ok_or("trace needs a target")?;
    if std::env::var("VPP_BENCH_DIFF").is_ok_and(|v| v == "1") {
        return cmd_trace_diff(p);
    }
    let bench = resolve(target)?;
    let nodes = flag_parse(p, "nodes")?.unwrap_or(1);
    let cap = flag_parse::<f64>(p, "cap")?;
    let mut cfg = match cap {
        Some(c) => protocol::RunConfig::capped(nodes, c),
        None => protocol::RunConfig::nodes(nodes),
    };
    let perturb = flag_perturb(p)?;
    if let Some(perturb) = perturb {
        cfg = perturb.apply(cfg);
    }
    let fmt = match p.value("format") {
        Some(v) => v
            .parse::<ExportFormat>()
            .map_err(|_| format!("unknown --format '{v}' ({})", ExportFormat::choices()))?,
        None => ExportFormat::Tree,
    };
    let mut c = ctx(p.has("quick"));
    // One traced run: the span tree of a single execution, not the
    // protocol's repeat spread.
    c.repeats = 1;
    let server = start_server(p)?;
    let session = trace::session(1 << 20);
    if let Some(h) = &server {
        h.set_workload(bench.name(), 1);
        h.set_state(RunState::Running);
    }
    let m = protocol::measure(&bench, &cfg, &c);
    if let Some(h) = &server {
        h.run_completed();
        h.set_state(RunState::Done);
    }
    let report = session.finish();
    report.well_formed()?;
    if let Some(body) = report.render(fmt) {
        print!("{body}");
        return Ok(());
    }
    println!("workload    : {} on {nodes} node(s)", bench.name());
    if let Some(cap) = cap {
        println!("GPU cap     : {cap:.0} W");
    }
    if let Some(perturb) = perturb {
        println!("perturbed   : {}", perturb.label());
    }
    println!(
        "sim runtime : {:.0} s    energy {:.2} MJ",
        m.runtime_s,
        m.energy_j / 1e6
    );
    println!();
    println!("{:<44} {:>9}  detail", "span", "wall ms");
    for root in report.span_tree() {
        print_span(&root, 0, &m);
    }
    if !report.counters.is_empty() {
        println!();
        println!("counters:");
        for (k, v) in &report.counters {
            println!("  {k:<30} {v:>12}");
        }
    }
    if !report.gauges.is_empty() {
        println!();
        println!("gauges:");
        for (k, v) in &report.gauges {
            println!("  {k:<30} {v:>12.1}");
        }
    }
    if report.dropped > 0 {
        println!();
        println!("(ring overflow: {} events dropped)", report.dropped);
    }
    Ok(())
}

/// Parse a human duration: a non-negative number with an optional
/// `s`/`m`/`h` suffix (bare numbers are seconds). `0` (any suffix)
/// means "no TTL" and maps to `None`.
fn parse_duration(raw: &str) -> Result<Option<Duration>, String> {
    let (digits, scale_s) = match raw.strip_suffix(['s', 'm', 'h']) {
        Some(num) => {
            let scale = match raw.as_bytes()[raw.len() - 1] {
                b'm' => 60.0,
                b'h' => 3600.0,
                _ => 1.0,
            };
            (num, scale)
        }
        None => (raw, 1.0),
    };
    let n: f64 = digits
        .parse()
        .map_err(|_| format!("expected a duration like 30s/15m/1h or 0, got '{raw}'"))?;
    if !n.is_finite() || n < 0.0 {
        return Err(format!("duration must be non-negative and finite, got '{raw}'"));
    }
    if n == 0.0 {
        return Ok(None);
    }
    Ok(Some(Duration::from_secs_f64(n * scale_s)))
}

/// Run the (optional) benchmark under the observability endpoint, then
/// keep serving — including the multi-tenant `POST /jobs` service —
/// until the process is interrupted.
fn cmd_serve(p: &Parsed) -> Result<(), String> {
    let bench = p.positional.first().map(|t| resolve(t)).transpose()?;
    let nodes = flag_parse(p, "nodes")?.unwrap_or(1);
    let cap = flag_parse::<f64>(p, "cap")?;
    let repeat = flag_parse::<usize>(p, "repeat")?.unwrap_or(1).max(1);
    let port = flag_parse::<u16>(p, "metrics-port")?.unwrap_or(0);
    let max_sessions = flag_parse::<usize>(p, "max-sessions")?.unwrap_or(0);
    let max_queue = flag_parse::<usize>(p, "max-queue")?.unwrap_or(0);
    let federate: Vec<String> = p.values("federate").map(str::to_string).collect();
    let mut serve_cfg = ServeConfig::new(port)
        .federate(federate)
        .handler(Arc::new(ProtocolJobHandler));
    if max_sessions > 0 {
        serve_cfg = serve_cfg.max_sessions(max_sessions);
    }
    if max_queue > 0 {
        serve_cfg = serve_cfg.max_queue(max_queue);
    }
    if let Some(raw) = p.value("job-ttl") {
        serve_cfg = serve_cfg.job_ttl(parse_duration(raw).map_err(|e| format!("--job-ttl: {e}"))?);
    }
    let handle =
        serve::serve_with(serve_cfg).map_err(|e| format!("cannot bind metrics port {port}: {e}"))?;
    println!("serving on http://{}", handle.addr());
    println!("endpoints   : /metrics /healthz /trace?format=json|jsonl|csv /logs?after=SEQ&level=warn");
    println!("job service : POST /jobs, GET /jobs, DELETE /jobs/<id>, /jobs/<id>[/trace?after=SEQ|/metrics]");
    flush_stdout();
    // The session stays open for the life of the process so late scrapes
    // keep seeing the final trace state; POSTed jobs record into their
    // own per-session recorders and leave this one alone.
    let _session = trace::session(flight::SESSION_CAPACITY);
    if let Some(bench) = &bench {
        let cfg = match cap {
            Some(c) => protocol::RunConfig::capped(nodes, c),
            None => protocol::RunConfig::nodes(nodes),
        };
        handle.set_workload(bench.name(), repeat as u64);
        handle.set_state(RunState::Running);
        let c = ctx(p.has("quick"));
        for r in 0..repeat {
            let m = protocol::measure(bench, &cfg, &c);
            handle.run_completed();
            println!(
                "run {}/{repeat} : runtime {:.0} s, energy {:.2} MJ",
                r + 1,
                m.runtime_s,
                m.energy_j / 1e6
            );
            flush_stdout();
        }
        handle.set_state(RunState::Done);
        println!("all runs complete; serving until interrupted (Ctrl-C to stop)");
    } else {
        println!("no benchmark operand; serving POSTed jobs until interrupted (Ctrl-C to stop)");
    }
    flush_stdout();
    loop {
        std::thread::park();
    }
}

fn cmd_logs(p: &Parsed) -> Result<(), String> {
    let target = p
        .positional
        .first()
        .ok_or("logs needs the service address, e.g. `vpp logs 127.0.0.1:9100`")?;
    let after = flag_parse::<u64>(p, "after")?.unwrap_or(0);
    let limit = flag_parse::<usize>(p, "limit")?;
    let level = match p.value("level") {
        // Validate locally so a typo fails with the level vocabulary
        // instead of a server round-trip.
        Some(raw) => raw.parse::<trace::LogLevel>()?.name(),
        None => trace::LogLevel::Debug.name(),
    };
    let mut path = format!("/logs?after={after}&level={level}");
    if let Some(n) = limit {
        path.push_str(&format!("&limit={n}"));
    }
    let hostport = target
        .strip_prefix("http://")
        .unwrap_or(target)
        .split('/')
        .next()
        .unwrap_or(target);
    let mut stream = std::net::TcpStream::connect(hostport)
        .map_err(|e| format!("connect {hostport}: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {hostport}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("send to {hostport}: {e}"))?;
    let mut raw = String::new();
    std::io::Read::read_to_string(&mut stream, &mut raw)
        .map_err(|e| format!("read from {hostport}: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed response from {hostport}"))?;
    let status = head.split_whitespace().nth(1).unwrap_or("");
    if status != "200" {
        return Err(format!("{hostport} answered {status}: {}", body.trim_end()));
    }
    print!("{body}");
    flush_stdout();
    // Cursor bookkeeping goes to stderr so stdout stays pure jsonl.
    for (header, label) in [
        ("x-vpp-next-cursor:", "next cursor"),
        ("x-vpp-more:", "more"),
        ("x-vpp-dropped:", "dropped"),
    ] {
        if let Some(v) = head
            .lines()
            .find(|l| l.to_ascii_lowercase().starts_with(header))
            .and_then(|l| l.split_once(':'))
            .map(|(_, v)| v.trim())
        {
            eprintln!("{label} : {v}");
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        eprint!("{}", global_usage());
        std::process::exit(2);
    }
    if raw[0] == "--help" || raw[0] == "-h" || raw[0] == "help" {
        print!("{}", global_usage());
        return;
    }
    let Some((spec, rest)) = match_command(&raw) else {
        eprintln!("error: unknown command '{}'", raw[0]);
        eprint!("{}", global_usage());
        std::process::exit(2);
    };
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", spec.help());
        return;
    }
    let parsed = match spec.parse(rest) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{}", spec.usage());
            std::process::exit(2);
        }
    };
    if let Err(e) = (spec.run)(&parsed) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}
