//! `vpp` — the operator's command-line tool.
//!
//! ```text
//! vpp profile <benchmark|dir> [--nodes N] [--cap W] [--quick]
//! vpp caps    <benchmark>     [--nodes N]
//! vpp screen  <benchmark>     [--nodes N] [--straggler IDX:FACTOR]
//! vpp phases  <benchmark>     [--nodes N]
//! vpp list
//! ```
//!
//! `<benchmark>` is a Table I name (see `vpp list`); a directory containing
//! `INCAR` / `POSCAR` (and optionally `KPOINTS`) works everywhere a
//! benchmark name does.

use vasp_power_profiles::cluster::{execute, JobSpec, NetworkModel, Straggler};
use vasp_power_profiles::core::{benchmarks, protocol};
use vasp_power_profiles::dft::{parse_incar, parse_kpoints, parse_poscar};
use vasp_power_profiles::stats::Segmenter;
use vasp_power_profiles::telemetry::{Sampler, Screener};

struct Args {
    positional: Vec<String>,
    nodes: Option<usize>,
    cap: Option<f64>,
    quick: bool,
    straggler: Option<(usize, f64)>,
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args {
        positional: Vec::new(),
        nodes: None,
        cap: None,
        quick: false,
        straggler: None,
    };
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nodes" => {
                let v = it.next().ok_or("--nodes needs a value")?;
                args.nodes = Some(v.parse().map_err(|_| format!("bad --nodes '{v}'"))?);
            }
            "--cap" => {
                let v = it.next().ok_or("--cap needs a value")?;
                args.cap = Some(v.parse().map_err(|_| format!("bad --cap '{v}'"))?);
            }
            "--straggler" => {
                let v = it.next().ok_or("--straggler needs IDX:FACTOR")?;
                let (idx, factor) = v
                    .split_once(':')
                    .ok_or_else(|| format!("bad --straggler '{v}' (want IDX:FACTOR)"))?;
                args.straggler = Some((
                    idx.parse().map_err(|_| format!("bad straggler index '{idx}'"))?,
                    factor
                        .parse()
                        .map_err(|_| format!("bad straggler factor '{factor}'"))?,
                ));
            }
            "--quick" => args.quick = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}'"));
            }
            other => args.positional.push(other.to_string()),
        }
    }
    Ok(args)
}

/// Resolve a benchmark name or an input-deck directory.
fn resolve(target: &str) -> Result<benchmarks::Benchmark, String> {
    if let Some(b) = benchmarks::suite().into_iter().find(|b| b.name() == target) {
        return Ok(b);
    }
    let dir = std::path::Path::new(target);
    if dir.is_dir() {
        let incar = std::fs::read_to_string(dir.join("INCAR"))
            .map_err(|e| format!("cannot read {target}/INCAR: {e}"))?;
        let poscar = std::fs::read_to_string(dir.join("POSCAR"))
            .map_err(|e| format!("cannot read {target}/POSCAR: {e}"))?;
        let mut deck = parse_incar(&incar).map_err(|e| format!("INCAR: {e}"))?.deck;
        let cell = parse_poscar(&poscar).map_err(|e| format!("POSCAR: {e}"))?;
        if let Ok(kp) = std::fs::read_to_string(dir.join("KPOINTS")) {
            deck.kpoints = parse_kpoints(&kp).map_err(|e| format!("KPOINTS: {e}"))?;
        }
        deck.validate().map_err(|e| format!("combined deck: {e}"))?;
        return Ok(benchmarks::Benchmark {
            cell,
            deck,
            cap_study_nodes: 1,
        });
    }
    Err(format!(
        "'{target}' is neither a benchmark name nor an input directory; try `vpp list`"
    ))
}

fn ctx(quick: bool) -> protocol::StudyContext {
    if quick {
        protocol::StudyContext::quick()
    } else {
        protocol::StudyContext::paper()
    }
}

fn cmd_list() {
    println!("{:<14} {:>9} {:>7} {:>8}  functional", "benchmark", "electrons", "ions", "NPLWV");
    for b in benchmarks::suite() {
        let p = b.params();
        println!(
            "{:<14} {:>9} {:>7} {:>8}  {:?}",
            b.name(),
            p.nelect,
            p.n_ions,
            p.nplwv,
            p.xc
        );
    }
}

fn cmd_profile(args: &Args) -> Result<(), String> {
    let target = args.positional.first().ok_or("profile needs a target")?;
    let bench = resolve(target)?;
    let nodes = args.nodes.unwrap_or(1);
    let cfg = match args.cap {
        Some(c) => protocol::RunConfig::capped(nodes, c),
        None => protocol::RunConfig::nodes(nodes),
    };
    let m = protocol::measure(&bench, &cfg, &ctx(args.quick));
    println!("workload   : {} on {nodes} node(s)", bench.name());
    if let Some(c) = args.cap {
        println!("GPU cap    : {c:.0} W");
    }
    println!("runtime    : {:.0} s", m.runtime_s);
    println!("energy     : {:.2} MJ", m.energy_j / 1e6);
    println!("node power : {}", m.node_summary);
    println!("GPU0 power : {}", m.gpu_summary);
    Ok(())
}

fn cmd_caps(args: &Args) -> Result<(), String> {
    let target = args.positional.first().ok_or("caps needs a target")?;
    let bench = resolve(target)?;
    let nodes = args.nodes.unwrap_or(bench.cap_study_nodes);
    let c = ctx(args.quick);
    println!(
        "{:>6} {:>10} {:>6} {:>12} {:>10}",
        "cap W", "runtime s", "perf", "node mode W", "energy MJ"
    );
    let base = protocol::measure(&bench, &protocol::RunConfig::nodes(nodes), &c);
    for cap in [400.0, 300.0, 200.0, 100.0] {
        let m = if cap >= 400.0 {
            base.clone()
        } else {
            protocol::measure(&bench, &protocol::RunConfig::capped(nodes, cap), &c)
        };
        println!(
            "{cap:>6.0} {:>10.0} {:>6.2} {:>12.0} {:>10.2}",
            m.runtime_s,
            base.runtime_s / m.runtime_s,
            m.node_summary.high_mode_w,
            m.energy_j / 1e6
        );
    }
    Ok(())
}

fn cmd_screen(args: &Args) -> Result<(), String> {
    let target = args.positional.first().ok_or("screen needs a target")?;
    let bench = resolve(target)?;
    let nodes = args.nodes.unwrap_or(4).max(3);
    let c = ctx(true);
    let plan = protocol::plan_for(&bench, nodes, &c);
    let mut spec = JobSpec::new(nodes);
    if let Some((idx, factor)) = args.straggler {
        if idx >= nodes {
            return Err(format!("straggler index {idx} out of {nodes} nodes"));
        }
        spec.straggler = Some(Straggler {
            node: idx,
            slowdown: factor,
        });
        println!("(injected straggler: node {idx} at {factor}x)");
    }
    let res = execute(&plan, &spec, &NetworkModel::perlmutter());
    let sampler = Sampler::ideal(1.0);
    let per_node: Vec<_> = res
        .node_traces
        .iter()
        .map(|t| sampler.sample(&t.node))
        .collect();
    println!("{:>5} {:>10} {:>8}  verdict", "node", "mean W", "z");
    for v in Screener::default_threshold().screen(&per_node) {
        println!(
            "{:>5} {:>10.0} {:>8.2}  {}",
            v.node,
            v.mean_w,
            v.z_score,
            if v.outlier { "OUTLIER" } else { "ok" }
        );
    }
    Ok(())
}

fn cmd_phases(args: &Args) -> Result<(), String> {
    let target = args.positional.first().ok_or("phases needs a target")?;
    let bench = resolve(target)?;
    let nodes = args.nodes.unwrap_or(1);
    let m = protocol::measure(&bench, &protocol::RunConfig::nodes(nodes), &ctx(true));
    let interval = m.node_series.mean_interval_s().unwrap_or(1.0);
    println!("{:>10} {:>12} {:>10}", "duration s", "mean W", "samples");
    for p in Segmenter::node_power().segment(m.node_series.values()) {
        println!(
            "{:>10.0} {:>12.0} {:>10}",
            p.len() as f64 * interval,
            p.mean_w,
            p.len()
        );
    }
    Ok(())
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        eprintln!("usage: vpp <profile|caps|screen|phases|list> ...");
        std::process::exit(2);
    };
    let args = match parse_args(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let result = match cmd.as_str() {
        "list" => {
            cmd_list();
            Ok(())
        }
        "profile" => cmd_profile(&args),
        "caps" => cmd_caps(&args),
        "screen" => cmd_screen(&args),
        "phases" => cmd_phases(&args),
        other => Err(format!("unknown command '{other}'")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}
