//! # vasp-power-profiles
//!
//! A simulation-based reproduction of *"Understanding VASP Power Profiles
//! on NVIDIA A100 GPUs"* (Zhao, Rrapaj, Austin, Wright — SC 2024).
//!
//! The paper is an empirical power study of VASP on NERSC's Perlmutter
//! system; both the application (licensed) and the testbed (A100 nodes +
//! Cray PM / LDMS / OMNI telemetry) are inaccessible, so this workspace
//! rebuilds the entire measurement chain as calibrated models:
//!
//! * [`gpu`] / [`node`] — A100 and Perlmutter-node power models, including
//!   DVFS-based power capping and manufacturing variability;
//! * [`dft`] — a plane-wave DFT workload simulator reproducing VASP's
//!   parallelisation structure and per-method kernel mixes;
//! * [`cluster`] — a multi-node executor with an NCCL/Slingshot model;
//! * [`telemetry`] — the LDMS/OMNI-like sampling pipeline;
//! * [`stats`] — the paper's analysis methodology (KDE, high power mode,
//!   FWHM, violins, parallel efficiency);
//! * [`powercap`] — the `nvidia-smi` capping interface, the §VI
//!   power-aware scheduler, and a closed-loop budget controller;
//! * [`lqcd`] — the §VI-B follow-up: a MILC-like lattice-QCD workload run
//!   through the identical pipeline;
//! * [`core`] — the Table I benchmark suite, the §III-B measurement
//!   protocol, and one experiment runner per table/figure.
//!
//! ## Quickstart
//!
//! ```
//! use vasp_power_profiles::core::{benchmarks, protocol};
//!
//! let ctx = protocol::StudyContext::quick();
//! let bench = benchmarks::b_hr105_hse();
//! let m = protocol::measure(&bench, &protocol::RunConfig::nodes(1), &ctx);
//! assert!(m.node_summary.high_mode_w > 400.0);
//! println!("{}: {}", m.name, m.node_summary);
//! ```
//!
//! The `repro` binary regenerates every table and figure:
//! `cargo run --release --bin repro` (or `--bin repro -- fig12` for one).

pub use vpp_cluster as cluster;
pub use vpp_core as core;
pub use vpp_dft as dft;
pub use vpp_fleet as fleet;
pub use vpp_gpu as gpu;
pub use vpp_lqcd as lqcd;
pub use vpp_node as node;
pub use vpp_powercap as powercap;
pub use vpp_sim as sim;
pub use vpp_stats as stats;
pub use vpp_substrate as substrate;
pub use vpp_telemetry as telemetry;
