//! The tracing substrate against the statistical phase detector.
//!
//! A Fig-3 style run (Si256_hse, one node) is executed under a trace
//! session; the traced `phase.*` span boundaries — which come from the
//! *planner's* phase table — must agree with the changepoints the
//! `vpp_stats::phases` Segmenter finds in the sampled power timeline,
//! within one sampling window. The two views are produced by completely
//! independent code paths, so this is an end-to-end consistency check on
//! both.

use vasp_power_profiles::core::{benchmarks, protocol};
use vasp_power_profiles::stats::Segmenter;
use vasp_power_profiles::substrate::{par_map, prop, properties, span, trace};
use vasp_power_profiles::telemetry::Sampler;

#[test]
fn traced_phase_boundaries_match_changepoint_detection() {
    let bench = benchmarks::si256_hse();
    let mut ctx = protocol::StudyContext::single();
    // Gap-free 1 Hz sampling: one sampling window == one second.
    ctx.sampler = Sampler::ideal(1.0);
    let session = trace::session(1 << 20);
    let m = protocol::measure(&bench, &protocol::RunConfig::nodes(1), &ctx);
    let report = session.finish();
    report.well_formed().expect("trace must be well-formed");

    // Every phase boundary the executor traced, in sim time.
    let mut boundaries: Vec<f64> = Vec::new();
    for s in report.spans() {
        if s.name.starts_with("phase.") {
            let t0 = s.field_f64("sim_t0").expect("phase spans carry sim_t0");
            let t1 = s.field_f64("sim_t1").expect("phase spans carry sim_t1");
            boundaries.push(t0);
            boundaries.push(t1);
        }
    }
    assert!(!boundaries.is_empty(), "the run must emit phase spans");

    let dt = m.node_series.mean_interval_s().expect("sampled series");
    let times = m.node_series.times();
    let segments = Segmenter::node_power().segment(m.node_series.values());
    assert!(
        segments.len() >= 2,
        "a Fig-3 run has detectable phase structure, got {segments:?}"
    );
    // Every interior changepoint the detector finds must sit within one
    // sampling window of a boundary the executor traced.
    for seg in &segments[1..] {
        let t_cp = times[seg.start];
        let nearest = boundaries
            .iter()
            .map(|b| (t_cp - b).abs())
            .fold(f64::INFINITY, f64::min);
        assert!(
            nearest <= dt + 1e-9,
            "changepoint at {t_cp:.1}s is {nearest:.2}s from the nearest \
             traced phase boundary (sampling window {dt:.2}s)"
        );
    }
}

properties! {
    /// Spans opened on pool workers must nest LIFO per thread and carry
    /// parents recorded on the same thread, whatever the fan-out.
    fn span_nesting_is_well_formed_under_par_map(rng) {
        let tasks: Vec<usize> =
            (0..prop::usize_in(rng, 1, 9)).map(|_| rng.index(5)).collect();
        let session = trace::session(1 << 14);
        let results = par_map(tasks.clone(), |depth| {
            fn nest(d: usize) {
                let mut s = span!("prop.level", depth = d);
                if d > 0 {
                    nest(d - 1);
                }
                s.record("done", true);
            }
            nest(depth);
            trace::counter("prop.tasks", 1);
            depth
        });
        let report = session.finish();
        report.well_formed().expect("concurrent spans must stay well-formed");
        assert_eq!(results, tasks);
        assert_eq!(report.counters["prop.tasks"] as usize, tasks.len());
        // One span per nesting level per task.
        let expected: usize = tasks.iter().map(|d| d + 1).sum();
        let levels = report.spans().iter().filter(|s| s.name == "prop.level").count();
        assert_eq!(levels, expected);
    }
}
