//! Integration tests for the observability endpoint: a real scraper over
//! `std::net::TcpStream` against a live [`serve`] instance — Prometheus
//! text parsing, `/healthz` state transitions, request rejection, and
//! leak-free shutdown.
//!
//! The server reads process-global trace state, so the tests serialize on
//! a lock instead of trusting the harness' thread scheduling.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

use vasp_power_profiles::substrate::serve::{serve, RunState};
use vasp_power_profiles::substrate::{span, trace};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Minimal HTTP/1.1 GET: returns `(status, head, body)`.
fn get(addr: SocketAddr, target: &str) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(
        s,
        "GET {target} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header terminator");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, head.to_string(), body.to_string())
}

/// Minimal HTTP/1.1 HEAD of the same target.
fn head_req(addr: SocketAddr, target: &str) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(
        s,
        "HEAD {target} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header terminator");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, head.to_string(), body.to_string())
}

/// The value of one response header, if present.
fn header<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    head.lines()
        .filter_map(|l| l.split_once(": "))
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v)
}

/// Count live threads whose comm is `vpp-serve`. Linux clones inherit the
/// parent thread's comm, so the acceptor and both scoped workers all
/// report the name the server sets.
fn serve_threads() -> usize {
    std::fs::read_dir("/proc/self/task")
        .expect("linux procfs")
        .filter_map(Result::ok)
        .filter_map(|e| std::fs::read_to_string(e.path().join("comm")).ok())
        .filter(|c| c.trim() == "vpp-serve")
        .count()
}

/// Joined threads can linger in `/proc/self/task` for a moment after
/// `join` returns (the kernel wakes the joiner before the task entry is
/// torn down), so zero-thread assertions poll briefly.
fn serve_threads_settled() -> usize {
    let mut remaining = serve_threads();
    for _ in 0..200 {
        if remaining == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
        remaining = serve_threads();
    }
    remaining
}

#[test]
fn metrics_exposition_is_parseable_prometheus_text() {
    let _guard = locked();
    let session = trace::session(1 << 16);
    {
        let mut s = span!("serve_test.work", kind = 1);
        s.record("sim_t0", 0.0);
        s.record("sim_t1", 2.5);
        trace::counter("serve_test.ticks", 3);
        trace::gauge("serve_test.level", 0.75);
    }
    let h = serve(0).expect("bind ephemeral");
    let (status, head, body) = get(h.addr(), "/metrics");
    assert_eq!(status, 200);
    assert!(
        head.contains("Content-Type: text/plain; version=0.0.4"),
        "{head}"
    );

    // Strict pass over the exposition: every line is a comment or a
    // `name value` sample with a well-formed metric name and float value,
    // and every sample's family was declared by a preceding # TYPE line.
    let mut typed: Vec<String> = Vec::new();
    let mut samples = 0;
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            typed.push(parts.next().expect("type line names a metric").to_string());
            let kind = parts.next().expect("type line names a kind");
            assert!(
                ["counter", "gauge", "summary", "histogram"].contains(&kind),
                "unknown metric kind: {line}"
            );
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (name_and_labels, value) = line.rsplit_once(' ').expect("sample line");
        let name = name_and_labels
            .split('{')
            .next()
            .expect("metric name before labels");
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in: {line}"
        );
        assert!(
            value.parse::<f64>().is_ok(),
            "sample value is not a float: {line}"
        );
        assert!(
            typed.iter().any(|t| name == t || name.starts_with(t.as_str())),
            "sample before its # TYPE declaration: {line}"
        );
        samples += 1;
    }
    assert!(samples >= 4, "expected a non-trivial exposition:\n{body}");
    assert!(body.contains("vpp_up 1"), "{body}");
    assert!(body.contains("vpp_serve_test_ticks_total 3"), "{body}");
    assert!(body.contains("vpp_serve_test_level 0.75"), "{body}");

    h.shutdown();
    drop(session);
}

#[test]
fn healthz_walks_idle_running_done() {
    let _guard = locked();
    let h = serve(0).expect("bind ephemeral");
    let (status, head, body) = get(h.addr(), "/healthz");
    assert_eq!(status, 200);
    assert!(head.contains("Content-Type: application/json"), "{head}");
    assert!(body.contains("\"state\": \"idle\""), "{body}");

    h.set_workload("serve_it", 2);
    h.set_state(RunState::Running);
    let (_, _, body) = get(h.addr(), "/healthz");
    assert!(body.contains("\"state\": \"running\""), "{body}");
    assert!(body.contains("\"workload\": \"serve_it\""), "{body}");
    assert!(body.contains("\"runs_total\": 2"), "{body}");

    h.run_completed();
    h.run_completed();
    h.set_state(RunState::Done);
    let (_, _, body) = get(h.addr(), "/healthz");
    assert!(body.contains("\"state\": \"done\""), "{body}");
    assert!(body.contains("\"runs_completed\": 2"), "{body}");
    h.shutdown();
}

#[test]
fn rejects_unknown_paths_and_non_get_methods() {
    let _guard = locked();
    let h = serve(0).expect("bind ephemeral");
    let (status, _, body) = get(h.addr(), "/not-an-endpoint");
    assert_eq!(status, 404);
    assert!(body.contains("/metrics"), "404 names the endpoints: {body}");

    let mut s = TcpStream::connect(h.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(s, "DELETE /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read response");
    assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
    assert!(raw.contains("Allow: GET"), "{raw}");
    h.shutdown();
}

#[test]
fn head_mirrors_get_on_every_route() {
    let _guard = locked();
    let session = trace::session(1 << 16);
    {
        let mut s = span!("serve_head.work", kind = 1);
        s.record("sim_t0", 0.0);
        s.record("sim_t1", 1.0);
    }
    let h = serve(0).expect("bind ephemeral");

    // RFC 9110 §9.3.2: HEAD answers with the status and header fields a
    // GET would produce — including Content-Length — and no body. That
    // holds on every route, 404s and 405s included.
    for target in ["/metrics", "/healthz", "/trace?format=jsonl", "/jobs", "/nope"] {
        let (get_status, get_head, get_body) = get(h.addr(), target);
        let (head_status, head_head, head_body) = head_req(h.addr(), target);
        assert_eq!(head_status, get_status, "HEAD {target} diverged from GET");
        assert!(head_body.is_empty(), "HEAD {target} returned a body: {head_body}");
        assert_eq!(
            header(&head_head, "Content-Type"),
            header(&get_head, "Content-Type"),
            "HEAD {target} content type"
        );
        let announced: usize = header(&head_head, "Content-Length")
            .unwrap_or_else(|| panic!("HEAD {target} lacks Content-Length: {head_head}"))
            .parse()
            .expect("numeric Content-Length");
        assert!(
            announced > 0 || get_body.is_empty(),
            "HEAD {target} announced an empty body while GET returned {} bytes",
            get_body.len()
        );
    }

    // `/jobs` is byte-stable between consecutive requests, so HEAD's
    // announced length must equal the body GET actually sends.
    let (_, get_head, get_body) = get(h.addr(), "/jobs");
    let (_, head_head, _) = head_req(h.addr(), "/jobs");
    assert_eq!(
        header(&head_head, "Content-Length"),
        header(&get_head, "Content-Length")
    );
    assert_eq!(
        header(&get_head, "Content-Length"),
        Some(get_body.len().to_string().as_str())
    );

    // HEAD is advertised next to GET on a 405.
    let mut s = TcpStream::connect(h.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(s, "PUT /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read response");
    assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
    assert!(raw.contains("Allow: GET, HEAD"), "{raw}");

    h.shutdown();
    drop(session);
}

#[test]
fn shutdown_joins_every_server_thread_and_releases_the_listener() {
    let _guard = locked();
    assert_eq!(serve_threads_settled(), 0, "no server threads before the test");
    let h = serve(0).expect("bind ephemeral");
    let addr = h.addr();
    let (status, _, _) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(serve_threads() >= 1, "server threads alive while serving");

    h.shutdown();
    assert_eq!(serve_threads_settled(), 0, "vpp-serve threads survived shutdown");
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(250)).is_err(),
        "listener still accepting after shutdown"
    );
}

#[test]
fn dropping_the_handle_is_a_clean_shutdown_too() {
    let _guard = locked();
    assert_eq!(serve_threads_settled(), 0);
    let addr;
    {
        let h = serve(0).expect("bind ephemeral");
        addr = h.addr();
        let (status, _, _) = get(addr, "/healthz");
        assert_eq!(status, 200);
    }
    assert_eq!(serve_threads_settled(), 0, "drop did not join the server threads");
    assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(250)).is_err());
}
