//! Integration tests for the observability endpoint: a real scraper over
//! `std::net::TcpStream` against a live [`serve`] instance — Prometheus
//! text parsing, `/healthz` state transitions, request rejection, and
//! leak-free shutdown.
//!
//! The server reads process-global trace state, so the tests serialize on
//! a lock instead of trusting the harness' thread scheduling.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use vasp_power_profiles::substrate::json::{self, Value};
use vasp_power_profiles::substrate::serve::{serve, RunState};
use vasp_power_profiles::substrate::{span, trace};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Minimal HTTP/1.1 GET: returns `(status, head, body)`.
fn get(addr: SocketAddr, target: &str) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(
        s,
        "GET {target} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header terminator");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, head.to_string(), body.to_string())
}

/// Minimal HTTP/1.1 HEAD of the same target.
fn head_req(addr: SocketAddr, target: &str) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(
        s,
        "HEAD {target} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header terminator");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, head.to_string(), body.to_string())
}

/// The value of one response header, if present.
fn header<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    head.lines()
        .filter_map(|l| l.split_once(": "))
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v)
}

/// Count live threads whose comm is `vpp-serve`. Linux clones inherit the
/// parent thread's comm, so the acceptor and both scoped workers all
/// report the name the server sets.
fn serve_threads() -> usize {
    std::fs::read_dir("/proc/self/task")
        .expect("linux procfs")
        .filter_map(Result::ok)
        .filter_map(|e| std::fs::read_to_string(e.path().join("comm")).ok())
        .filter(|c| c.trim() == "vpp-serve")
        .count()
}

/// Joined threads can linger in `/proc/self/task` for a moment after
/// `join` returns (the kernel wakes the joiner before the task entry is
/// torn down), so zero-thread assertions poll briefly.
fn serve_threads_settled() -> usize {
    let mut remaining = serve_threads();
    for _ in 0..200 {
        if remaining == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
        remaining = serve_threads();
    }
    remaining
}

#[test]
fn metrics_exposition_is_parseable_prometheus_text() {
    let _guard = locked();
    let session = trace::session(1 << 16);
    {
        let mut s = span!("serve_test.work", kind = 1);
        s.record("sim_t0", 0.0);
        s.record("sim_t1", 2.5);
        trace::counter("serve_test.ticks", 3);
        trace::gauge("serve_test.level", 0.75);
    }
    let h = serve(0).expect("bind ephemeral");
    let (status, head, body) = get(h.addr(), "/metrics");
    assert_eq!(status, 200);
    assert!(
        head.contains("Content-Type: text/plain; version=0.0.4"),
        "{head}"
    );

    // Strict pass over the exposition: every line is a comment or a
    // `name value` sample with a well-formed metric name and float value,
    // and every sample's family was declared by a preceding # TYPE line.
    let mut typed: Vec<String> = Vec::new();
    let mut samples = 0;
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            typed.push(parts.next().expect("type line names a metric").to_string());
            let kind = parts.next().expect("type line names a kind");
            assert!(
                ["counter", "gauge", "summary", "histogram"].contains(&kind),
                "unknown metric kind: {line}"
            );
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (name_and_labels, value) = line.rsplit_once(' ').expect("sample line");
        let name = name_and_labels
            .split('{')
            .next()
            .expect("metric name before labels");
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in: {line}"
        );
        assert!(
            value.parse::<f64>().is_ok(),
            "sample value is not a float: {line}"
        );
        assert!(
            typed.iter().any(|t| name == t || name.starts_with(t.as_str())),
            "sample before its # TYPE declaration: {line}"
        );
        samples += 1;
    }
    assert!(samples >= 4, "expected a non-trivial exposition:\n{body}");
    assert!(body.contains("vpp_up 1"), "{body}");
    assert!(body.contains("vpp_serve_test_ticks_total 3"), "{body}");
    assert!(body.contains("vpp_serve_test_level 0.75"), "{body}");

    h.shutdown();
    drop(session);
}

#[test]
fn healthz_walks_idle_running_done() {
    let _guard = locked();
    let h = serve(0).expect("bind ephemeral");
    let (status, head, body) = get(h.addr(), "/healthz");
    assert_eq!(status, 200);
    assert!(head.contains("Content-Type: application/json"), "{head}");
    assert!(body.contains("\"state\": \"idle\""), "{body}");

    // The journal's health rides along: current admission level plus
    // per-severity drop counts, one guard acquisition server-side.
    let doc = json::parse(&body).expect("healthz is JSON");
    assert_eq!(
        doc.get("log_level").and_then(Value::as_str),
        Some(trace::log_level().name()),
        "{body}"
    );
    let dropped = doc.get("log_dropped").expect("healthz reports log drops");
    for level in ["debug", "info", "warn", "error"] {
        assert!(
            dropped.get(level).and_then(Value::as_f64).is_some(),
            "log_dropped lacks '{level}': {body}"
        );
    }

    h.set_workload("serve_it", 2);
    h.set_state(RunState::Running);
    let (_, _, body) = get(h.addr(), "/healthz");
    assert!(body.contains("\"state\": \"running\""), "{body}");
    assert!(body.contains("\"workload\": \"serve_it\""), "{body}");
    assert!(body.contains("\"runs_total\": 2"), "{body}");

    h.run_completed();
    h.run_completed();
    h.set_state(RunState::Done);
    let (_, _, body) = get(h.addr(), "/healthz");
    assert!(body.contains("\"state\": \"done\""), "{body}");
    assert!(body.contains("\"runs_completed\": 2"), "{body}");
    h.shutdown();
}

#[test]
fn rejects_unknown_paths_and_non_get_methods() {
    let _guard = locked();
    let h = serve(0).expect("bind ephemeral");
    let (status, head, body) = get(h.addr(), "/not-an-endpoint");
    assert_eq!(status, 404);
    assert!(body.contains("/metrics"), "404 names the endpoints: {body}");
    // Errors answer one structured JSON shape: {"error": ..., "detail": ...}.
    assert!(
        head.contains("Content-Type: application/json"),
        "error bodies are JSON: {head}"
    );
    assert!(body.contains("\"error\": \"Not Found\""), "{body}");
    assert!(body.contains("\"detail\": "), "{body}");

    let mut s = TcpStream::connect(h.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(s, "DELETE /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read response");
    assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
    assert!(raw.contains("Allow: GET"), "{raw}");
    h.shutdown();
}

#[test]
fn head_mirrors_get_on_every_route() {
    let _guard = locked();
    let session = trace::session(1 << 16);
    {
        let mut s = span!("serve_head.work", kind = 1);
        s.record("sim_t0", 0.0);
        s.record("sim_t1", 1.0);
    }
    let h = serve(0).expect("bind ephemeral");

    // RFC 9110 §9.3.2: HEAD answers with the status and header fields a
    // GET would produce — including Content-Length — and no body. That
    // holds on every route, 404s and 405s included.
    for target in ["/metrics", "/healthz", "/trace?format=jsonl", "/logs", "/jobs", "/nope"] {
        let (get_status, get_head, get_body) = get(h.addr(), target);
        let (head_status, head_head, head_body) = head_req(h.addr(), target);
        assert_eq!(head_status, get_status, "HEAD {target} diverged from GET");
        assert!(head_body.is_empty(), "HEAD {target} returned a body: {head_body}");
        assert_eq!(
            header(&head_head, "Content-Type"),
            header(&get_head, "Content-Type"),
            "HEAD {target} content type"
        );
        let announced: usize = header(&head_head, "Content-Length")
            .unwrap_or_else(|| panic!("HEAD {target} lacks Content-Length: {head_head}"))
            .parse()
            .expect("numeric Content-Length");
        assert!(
            announced > 0 || get_body.is_empty(),
            "HEAD {target} announced an empty body while GET returned {} bytes",
            get_body.len()
        );
    }

    // `/jobs` is byte-stable between consecutive requests, so HEAD's
    // announced length must equal the body GET actually sends.
    let (_, get_head, get_body) = get(h.addr(), "/jobs");
    let (_, head_head, _) = head_req(h.addr(), "/jobs");
    assert_eq!(
        header(&head_head, "Content-Length"),
        header(&get_head, "Content-Length")
    );
    assert_eq!(
        header(&get_head, "Content-Length"),
        Some(get_body.len().to_string().as_str())
    );

    // HEAD is advertised next to GET on a 405.
    let mut s = TcpStream::connect(h.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(s, "PUT /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read response");
    assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
    assert!(raw.contains("Allow: GET, HEAD"), "{raw}");

    h.shutdown();
    drop(session);
}

/// Group one histogram family's `_bucket` samples by their non-`le`
/// labels: `labels -> [(le, cumulative)]` in exposition order.
fn histogram_buckets(body: &str, family: &str) -> BTreeMap<String, Vec<(String, u64)>> {
    let mut groups: BTreeMap<String, Vec<(String, u64)>> = BTreeMap::new();
    let prefix = format!("{family}_bucket{{");
    for line in body.lines() {
        let Some(rest) = line.strip_prefix(prefix.as_str()) else {
            continue;
        };
        let (labels, value) = rest.rsplit_once(' ').expect("bucket sample line");
        let labels = labels.strip_suffix('}').expect("closing label brace");
        let mut le = None;
        let mut others = Vec::new();
        for part in labels.split(',') {
            match part.strip_prefix("le=\"") {
                Some(v) => le = Some(v.trim_end_matches('"').to_string()),
                None => others.push(part),
            }
        }
        groups.entry(others.join(",")).or_default().push((
            le.expect("every bucket sample carries le"),
            value.parse().expect("integer bucket count"),
        ));
    }
    groups
}

/// The float value of the sample whose `name{labels}` part is exactly
/// `name_and_labels`.
fn sample_value(body: &str, name_and_labels: &str) -> Option<f64> {
    body.lines()
        .filter_map(|l| l.rsplit_once(' '))
        .find(|(n, _)| *n == name_and_labels)
        .map(|(_, v)| v.parse().expect("float sample value"))
}

#[test]
fn histogram_exposition_is_cumulative_and_internally_consistent() {
    let _guard = locked();
    let session = trace::session(1 << 16);
    // A bimodal power distribution straddling the 200 W bucket edge the
    // paper's idle/compute mode split keys on: 25 low observations and
    // 25 high, each weighted 3 (duration-weighted, like the executor).
    for i in 0..50u64 {
        let watts = if i % 2 == 0 { 70.0 } else { 330.0 };
        trace::histogram_count("power_watts", watts, 3);
    }
    let h = serve(0).expect("bind ephemeral");
    let (status, _, _) = get(h.addr(), "/healthz"); // populates per-route stats
    assert_eq!(status, 200);
    let (status, _, body) = get(h.addr(), "/metrics");
    assert_eq!(status, 200);

    // Every declared histogram family obeys the exposition contract:
    // cumulative bucket counts are monotone nondecreasing, the series
    // ends at le="+Inf", and that terminal count equals `_count` while
    // `_sum` is present and finite.
    let families: Vec<&str> = body
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|rest| rest.strip_suffix(" histogram"))
        .collect();
    assert!(families.contains(&"vpp_power_watts"), "{body}");
    assert!(families.contains(&"vpp_serve_request_seconds"), "{body}");
    for family in &families {
        let groups = histogram_buckets(&body, family);
        assert!(!groups.is_empty(), "# TYPE {family} histogram has no buckets");
        for (labels, buckets) in &groups {
            let mut prev = 0u64;
            for (le, cum) in buckets {
                assert!(
                    *cum >= prev,
                    "{family}{{{labels}}}: cumulative count decreased at le={le}"
                );
                prev = *cum;
            }
            let (last_le, total) = buckets.last().expect("at least one bucket");
            assert_eq!(last_le, "+Inf", "{family}{{{labels}}} missing +Inf bucket");
            let count_sample = if labels.is_empty() {
                format!("{family}_count")
            } else {
                format!("{family}_count{{{labels}}}")
            };
            assert_eq!(
                sample_value(&body, &count_sample),
                Some(*total as f64),
                "+Inf bucket != _count for {family}{{{labels}}}:\n{body}"
            );
            let sum_sample = if labels.is_empty() {
                format!("{family}_sum")
            } else {
                format!("{family}_sum{{{labels}}}")
            };
            let sum = sample_value(&body, &sum_sample)
                .unwrap_or_else(|| panic!("{family}{{{labels}}} lacks _sum:\n{body}"));
            assert!(sum.is_finite(), "{family}{{{labels}}} _sum is not finite");
        }
    }

    // The recorded distribution round-trips exactly: 150 weighted
    // observations, 75 at or below the 200 W edge, sum 30 000 W·obs.
    let power = &histogram_buckets(&body, "vpp_power_watts")[""];
    let le200 = power
        .iter()
        .find(|(le, _)| le == "200")
        .expect("200 W is a bucket edge of the power table");
    assert_eq!(le200.1, 75, "{body}");
    assert_eq!(sample_value(&body, "vpp_power_watts_count"), Some(150.0));
    assert_eq!(
        sample_value(&body, "vpp_power_watts_sum"),
        Some(3.0 * (25.0 * 70.0 + 25.0 * 330.0))
    );

    // The /healthz request above shows up as per-route service telemetry.
    let routes = histogram_buckets(&body, "vpp_serve_request_seconds");
    assert!(
        routes.keys().any(|k| k.contains(r#"route="/healthz""#)),
        "{body}"
    );
    let ok = sample_value(
        &body,
        r#"vpp_serve_response_status_total{route="/healthz",status="200"}"#,
    );
    assert!(ok.is_some_and(|v| v >= 1.0), "{body}");

    h.shutdown();
    drop(session);
}

#[test]
fn logs_cursor_is_exactly_once_under_concurrent_writers() {
    let _guard = locked();
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 150;
    let h = serve(0).expect("bind ephemeral");
    let addr = h.addr();

    // Watermark the process-global journal: records admitted by other
    // tests carry seqs below `start`, so the exactly-once accounting
    // below only counts our own target's records.
    let start = trace::log_stats().next_seq;
    let threads: Vec<_> = (0..WRITERS)
        .map(|w| {
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    trace::log_event(
                        trace::LogLevel::Info,
                        "serve_test.cursor",
                        format!("writer {w} record {i}"),
                        vec![("writer", w.into()), ("i", i.into())],
                    );
                }
            })
        })
        .collect();

    // Page through /logs over real sockets while the writers are still
    // racing: an odd chunk size, the cursor taken from the response
    // header, every one of our records seen exactly once.
    let expected = (WRITERS * PER_WRITER) as usize;
    let mut after = start;
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    while seen.len() < expected && Instant::now() < deadline {
        let (status, head, body) = get(addr, &format!("/logs?after={after}&limit=97&level=info"));
        assert_eq!(status, 200, "{body}");
        for line in body.lines() {
            let rec = json::parse(line).expect("jsonl record parses");
            let seq = rec.get("seq").and_then(Value::as_f64).expect("record has seq") as u64;
            if rec.get("target").and_then(Value::as_str) != Some("serve_test.cursor") {
                continue;
            }
            assert!(seq >= start, "stale record leaked past the watermark");
            assert!(seen.insert(seq), "seq {seq} delivered twice");
        }
        let next: u64 = header(&head, "X-Vpp-Next-Cursor")
            .expect("chunk advertises a cursor")
            .parse()
            .expect("cursor is an integer");
        assert!(next >= after, "cursor went backwards: {next} < {after}");
        after = next;
        if body.is_empty() {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    for t in threads {
        t.join().expect("writer thread");
    }
    assert_eq!(seen.len(), expected, "missing log records");

    // Drained: the final chunk is empty, keeps the cursor, and reports
    // no more matching records.
    let (status, head, body) = get(addr, &format!("/logs?after={after}&limit=97&level=info"));
    assert_eq!(status, 200);
    assert_eq!(header(&head, "X-Vpp-More"), Some("false"), "{body}");

    // Severity filtering composes with the cursor: at `level=warn` none
    // of our info-level records appear.
    let (status, _, body) = get(addr, &format!("/logs?after={start}&level=warn&limit=4096"));
    assert_eq!(status, 200);
    assert!(
        !body.contains("serve_test.cursor"),
        "info records leaked into level=warn: {body}"
    );

    // Malformed cursor parameters are client errors, not shrugs.
    let (status, _, _) = get(addr, "/logs?after=x");
    assert_eq!(status, 400);
    let (status, _, body) = get(addr, "/logs?level=noise");
    assert_eq!(status, 400);
    assert!(body.contains("unknown log level"), "{body}");
    assert!(
        body.contains("\"error\": \"Bad Request\""),
        "structured error shape: {body}"
    );

    h.shutdown();
}

#[test]
fn shutdown_joins_every_server_thread_and_releases_the_listener() {
    let _guard = locked();
    assert_eq!(serve_threads_settled(), 0, "no server threads before the test");
    let h = serve(0).expect("bind ephemeral");
    let addr = h.addr();
    let (status, _, _) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(serve_threads() >= 1, "server threads alive while serving");

    h.shutdown();
    assert_eq!(serve_threads_settled(), 0, "vpp-serve threads survived shutdown");
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(250)).is_err(),
        "listener still accepting after shutdown"
    );
}

#[test]
fn dropping_the_handle_is_a_clean_shutdown_too() {
    let _guard = locked();
    assert_eq!(serve_threads_settled(), 0);
    let addr;
    {
        let h = serve(0).expect("bind ephemeral");
        addr = h.addr();
        let (status, _, _) = get(addr, "/healthz");
        assert_eq!(status, 200);
    }
    assert_eq!(serve_threads_settled(), 0, "drop did not join the server threads");
    assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(250)).is_err());
}
