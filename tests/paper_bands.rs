//! The paper's headline quantitative claims, asserted end-to-end against
//! the full simulation pipeline. These are the "shape" checks DESIGN.md §4
//! promises: who wins, by roughly what factor, where the knees fall.

use vasp_power_profiles::core::{benchmarks, protocol};
use vasp_power_profiles::stats::parallel_efficiency;

fn measure_1node(bench: &benchmarks::Benchmark) -> protocol::Measured {
    protocol::measure(bench, &protocol::RunConfig::nodes(1), &protocol::StudyContext::quick())
}

#[test]
fn workload_power_range_matches_paper() {
    // Paper §III-D: high power mode per node ranges from 766 to 1810 W.
    let modes: Vec<(String, f64)> = benchmarks::suite()
        .iter()
        .map(|b| {
            let m = measure_1node(b);
            (m.name.clone(), m.node_summary.high_mode_w)
        })
        .collect();
    let lo = modes.iter().map(|&(_, w)| w).fold(f64::INFINITY, f64::min);
    let hi = modes.iter().map(|&(_, w)| w).fold(f64::NEG_INFINITY, f64::max);
    assert!((700.0..950.0).contains(&lo), "lowest workload {lo} (paper: 766)");
    assert!((1600.0..2000.0).contains(&hi), "highest workload {hi} (paper: 1810)");
    assert!(hi / lo > 1.8, "range must span ~2.4x: {modes:?}");
}

#[test]
fn gaasbi_is_the_lowest_power_workload() {
    let suite = benchmarks::suite();
    let modes: Vec<(String, f64)> = suite
        .iter()
        .map(|b| {
            let m = measure_1node(b);
            (m.name.clone(), m.node_summary.high_mode_w)
        })
        .collect();
    let min = modes
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    assert_eq!(min.0, "GaAsBi-64", "paper Fig. 5: GaAsBi-64 at 766 W is lowest: {modes:?}");
}

#[test]
fn hse_benchmarks_outdraw_their_dft_counterparts() {
    // Paper: B.hR105_hse uses ~380 W less than Si256_hse, and both HSE
    // benchmarks outdraw the plain-DFT ones; PdO4 vs PdO2 differ >150 W.
    let si256 = measure_1node(&benchmarks::si256_hse()).node_summary.high_mode_w;
    let b105 = measure_1node(&benchmarks::b_hr105_hse()).node_summary.high_mode_w;
    let pdo4 = measure_1node(&benchmarks::pdo4()).node_summary.high_mode_w;
    let pdo2 = measure_1node(&benchmarks::pdo2()).node_summary.high_mode_w;
    assert!(si256 > b105, "Si256_hse {si256} vs B.hR105 {b105}");
    assert!(
        (150.0..650.0).contains(&(si256 - b105)),
        "paper gap ~380 W, got {}",
        si256 - b105
    );
    assert!(pdo4 - pdo2 > 150.0, "paper: >150 W; got {}", pdo4 - pdo2);
    assert!(b105 > pdo4, "HSE outdraws basic DFT: {b105} vs {pdo4}");
}

#[test]
fn fifty_percent_tdp_cap_costs_under_ten_percent() {
    // The paper's headline: a 200 W (50% TDP) cap costs <10% on every
    // benchmark; 300 W is free.
    let ctx = protocol::StudyContext::quick();
    for bench in benchmarks::suite() {
        let nodes = bench.cap_study_nodes;
        let base = protocol::measure(&bench, &protocol::RunConfig::nodes(nodes), &ctx);
        let c300 = protocol::measure(&bench, &protocol::RunConfig::capped(nodes, 300.0), &ctx);
        let c200 = protocol::measure(&bench, &protocol::RunConfig::capped(nodes, 200.0), &ctx);
        let p300 = base.runtime_s / c300.runtime_s;
        let p200 = base.runtime_s / c200.runtime_s;
        assert!(p300 > 0.97, "{}: 300 W should be free, perf {p300}", bench.name());
        assert!(
            p200 > 0.885,
            "{}: 200 W must stay within ~10% (paper: ≤9%), perf {p200}",
            bench.name()
        );
    }
}

#[test]
fn hundred_watt_cap_splits_the_suite() {
    // Paper Fig. 12: >60% loss for Si256_hse/Si128_acfdtr at 100 W, but
    // <5% for GaAsBi-64 and PdO2.
    let ctx = protocol::StudyContext::quick();
    let perf_at_100 = |bench: &benchmarks::Benchmark| {
        let nodes = bench.cap_study_nodes;
        let base = protocol::measure(bench, &protocol::RunConfig::nodes(nodes), &ctx);
        let c = protocol::measure(bench, &protocol::RunConfig::capped(nodes, 100.0), &ctx);
        base.runtime_s / c.runtime_s
    };
    let hungry = perf_at_100(&benchmarks::si256_hse());
    assert!(hungry < 0.5, "Si256_hse at 100 W: perf {hungry} (paper ~0.4)");
    let light = perf_at_100(&benchmarks::gaasbi64());
    assert!(light > 0.93, "GaAsBi-64 at 100 W: perf {light} (paper >0.95)");
    let pdo2 = perf_at_100(&benchmarks::pdo2());
    assert!(pdo2 > 0.90, "PdO2 at 100 W: perf {pdo2} (paper >0.95)");
}

#[test]
fn power_flat_while_efficiency_holds() {
    // Paper §IV-C: power stays steady over node counts with PE ≥ 70%.
    let ctx = protocol::StudyContext::quick();
    let bench = benchmarks::si256_hse();
    let m1 = protocol::measure(&bench, &protocol::RunConfig::nodes(1), &ctx);
    let m4 = protocol::measure(&bench, &protocol::RunConfig::nodes(4), &ctx);
    let pe = parallel_efficiency(m1.runtime_s, 4.0, m4.runtime_s);
    assert!(pe > 0.70, "Si256_hse must stay efficient at 4 nodes: {pe}");
    let drift =
        (m4.node_summary.high_mode_w - m1.node_summary.high_mode_w).abs()
            / m1.node_summary.high_mode_w;
    assert!(drift < 0.10, "power should be ~flat: drift {drift}");
}

#[test]
fn gpus_carry_over_seventy_percent_of_hot_workloads() {
    // Paper Fig. 3.
    let m = measure_1node(&benchmarks::si256_hse());
    let c = &m.result.node_traces[0];
    let t0 = c.node.start() + 8.0;
    let t1 = c.node.end() - 2.0;
    let gpu: f64 = c.gpus.iter().map(|g| g.energy_between(t0, t1)).sum();
    let share = gpu / c.node.energy_between(t0, t1);
    assert!(share > 0.70, "GPU share {share}");
}

#[test]
fn node_idle_power_in_observed_band() {
    // Paper §III-B.2: idle 410–510 W across sampled nodes.
    use vasp_power_profiles::node::NodeInstance;
    use vasp_power_profiles::sim::Rng;
    for seed in 0..24 {
        let idle = NodeInstance::sample(&mut Rng::new(seed)).idle_w();
        assert!((395.0..525.0).contains(&idle), "seed {seed}: idle {idle}");
    }
}
