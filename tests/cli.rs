//! Integration tests for the `vpp` CLI binary.

use std::process::Command;

fn vpp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vpp"))
}

#[test]
fn list_names_the_seven_benchmarks() {
    let out = vpp().arg("list").output().expect("vpp runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in [
        "Si256_hse",
        "B.hR105_hse",
        "PdO4",
        "PdO2",
        "GaAsBi-64",
        "CuC_vdw",
        "Si128_acfdtr",
    ] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
}

#[test]
fn profile_reports_a_power_summary() {
    let out = vpp()
        .args(["profile", "B.hR105_hse", "--quick"])
        .output()
        .expect("vpp runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("node power"));
    assert!(text.contains("mode"));
}

#[test]
fn unknown_benchmark_fails_with_guidance() {
    let out = vpp().args(["profile", "NoSuchThing"]).output().expect("vpp runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("vpp list"), "{err}");
}

#[test]
fn unknown_flag_is_rejected() {
    let out = vpp()
        .args(["profile", "PdO2", "--bogus"])
        .output()
        .expect("vpp runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}

#[test]
fn missing_command_prints_usage() {
    let out = vpp().output().expect("vpp runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn screen_flags_injected_straggler() {
    let out = vpp()
        .args(["screen", "PdO4", "--nodes", "4", "--straggler", "2:1.5"])
        .output()
        .expect("vpp runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("OUTLIER"), "{text}");
}

#[test]
fn profile_accepts_an_input_deck_directory() {
    let dir = std::env::temp_dir().join(format!("vpp_cli_deck_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("INCAR"), "ALGO = Fast\nNELM = 12\n").unwrap();
    std::fs::write(
        dir.join("POSCAR"),
        "Si64\n1.0\n10.86 0 0\n0 10.86 0\n0 0 10.86\nSi\n64\nDirect\n",
    )
    .unwrap();
    let out = vpp()
        .args(["profile", dir.to_str().unwrap(), "--quick"])
        .output()
        .expect("vpp runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("Si64"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_prom_format_emits_a_wellformed_exposition() {
    let out = vpp()
        .args(["trace", "B.hR105_hse", "--quick", "--format", "prom"])
        .output()
        .expect("vpp runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("# TYPE vpp_job_ops_gpu_total counter"), "{text}");
    assert!(text.contains("vpp_span_duration_seconds"), "{text}");
}

#[test]
fn trace_jsonl_format_is_one_json_object_per_line() {
    let out = vpp()
        .args(["trace", "B.hR105_hse", "--quick", "--format", "jsonl"])
        .output()
        .expect("vpp runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.lines().count() > 10, "expected an event stream");
    for line in text.lines() {
        assert!(
            line.starts_with("{\"kind\":") && line.ends_with('}'),
            "not a compact JSON object: {line}"
        );
    }
}

#[test]
fn trace_rejects_unknown_format_and_bad_perturb() {
    let out = vpp()
        .args(["trace", "B.hR105_hse", "--quick", "--format", "yaml"])
        .output()
        .expect("vpp runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown --format"));

    let out = vpp()
        .args(["trace", "B.hR105_hse", "--perturb", "warmup:1.5"])
        .output()
        .expect("vpp runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown phase"));
}

#[test]
fn trace_diff_without_a_stored_baseline_fails_with_guidance() {
    let out = vpp()
        .env("VPP_BENCH_OUT", "/nonexistent/bench.json")
        .args(["trace", "diff", "B.hR105_hse"])
        .output()
        .expect("vpp runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot read"), "{err}");
}
