//! Integration tests for the `vpp` CLI binary.

use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn vpp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vpp"))
}

#[test]
fn list_names_the_seven_benchmarks() {
    let out = vpp().arg("list").output().expect("vpp runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in [
        "Si256_hse",
        "B.hR105_hse",
        "PdO4",
        "PdO2",
        "GaAsBi-64",
        "CuC_vdw",
        "Si128_acfdtr",
    ] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
}

#[test]
fn profile_reports_a_power_summary() {
    let out = vpp()
        .args(["profile", "B.hR105_hse", "--quick"])
        .output()
        .expect("vpp runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("node power"));
    assert!(text.contains("mode"));
}

#[test]
fn unknown_benchmark_fails_with_guidance() {
    let out = vpp().args(["profile", "NoSuchThing"]).output().expect("vpp runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("vpp list"), "{err}");
}

#[test]
fn unknown_flag_is_rejected() {
    let out = vpp()
        .args(["profile", "PdO2", "--bogus"])
        .output()
        .expect("vpp runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}

#[test]
fn flags_are_scoped_per_subcommand() {
    // --straggler belongs to `screen`; every other command rejects it with
    // an error that names the command it was offered to.
    let out = vpp()
        .args(["phases", "PdO2", "--straggler", "2:1.5"])
        .output()
        .expect("vpp runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag '--straggler'"), "{err}");
    assert!(err.contains("vpp phases"), "scoped to the command: {err}");
    assert!(err.contains("usage: vpp phases"), "usage follows: {err}");

    // --format belongs to `trace`, not `trace diff`.
    let out = vpp()
        .args(["trace", "diff", "B.hR105_hse", "--format", "json"])
        .output()
        .expect("vpp runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag '--format'"), "{err}");
    assert!(err.contains("vpp trace diff"), "{err}");
}

#[test]
fn every_subcommand_prints_generated_usage_on_help() {
    let commands: &[&[&str]] = &[
        &["list"],
        &["profile"],
        &["caps"],
        &["screen"],
        &["phases"],
        &["trace"],
        &["trace", "diff"],
        &["trace", "accept"],
        &["serve"],
    ];
    for words in commands {
        let mut args: Vec<&str> = words.to_vec();
        args.push("--help");
        let out = vpp().args(&args).output().expect("vpp runs");
        assert!(
            out.status.success(),
            "--help exits 0 for {words:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        let expect = format!("usage: vpp {}", words.join(" "));
        assert!(text.starts_with(&expect), "{words:?} help:\n{text}");
    }
    let out = vpp().arg("--help").output().expect("vpp runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("usage: vpp <command>"), "{text}");
    assert!(text.contains("trace accept"), "table lists every command: {text}");
    assert!(text.contains("serve"), "{text}");
}

/// One HTTP GET against a `vpp serve` child; returns the response body.
fn http_get(addr: &str, target: &str) -> Option<String> {
    let mut s = TcpStream::connect(addr).ok()?;
    s.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    write!(s, "GET {target} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").ok()?;
    let mut raw = String::new();
    s.read_to_string(&mut raw).ok()?;
    raw.split_once("\r\n\r\n").map(|(_, body)| body.to_string())
}

#[test]
fn serve_exposes_live_metrics_on_an_ephemeral_port() {
    let mut child = vpp()
        .args(["serve", "B.hR105_hse", "--quick", "--metrics-port", "0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("vpp serve spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve prints its address before exiting")
            .expect("readable stdout");
        if let Some(rest) = line.strip_prefix("serving on http://") {
            break rest.trim().to_string();
        }
    };

    // Poll until the run publishes protocol.coverage, then check the
    // other endpoints against the same live process.
    let deadline = Instant::now() + Duration::from_secs(120);
    let metrics = loop {
        if let Some(body) = http_get(&addr, "/metrics") {
            if body.contains("vpp_protocol_coverage") {
                break body;
            }
        }
        assert!(
            Instant::now() < deadline,
            "protocol.coverage never appeared on /metrics"
        );
        std::thread::sleep(Duration::from_millis(100));
    };
    assert!(metrics.contains("vpp_up 1"), "{metrics}");
    assert!(metrics.contains("vpp_serve_requests_total"), "{metrics}");

    let health = http_get(&addr, "/healthz").expect("healthz responds");
    assert!(health.contains("\"workload\": \"B.hR105_hse\""), "{health}");
    let trace = http_get(&addr, "/trace?format=jsonl").expect("trace responds");
    assert!(
        trace.lines().next().is_some_and(|l| l.starts_with('{')),
        "{trace}"
    );

    child.kill().expect("serve child killable");
    let _ = child.wait();
}

#[test]
fn missing_command_prints_usage() {
    let out = vpp().output().expect("vpp runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn screen_flags_injected_straggler() {
    let out = vpp()
        .args(["screen", "PdO4", "--nodes", "4", "--straggler", "2:1.5"])
        .output()
        .expect("vpp runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("OUTLIER"), "{text}");
}

#[test]
fn profile_accepts_an_input_deck_directory() {
    let dir = std::env::temp_dir().join(format!("vpp_cli_deck_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("INCAR"), "ALGO = Fast\nNELM = 12\n").unwrap();
    std::fs::write(
        dir.join("POSCAR"),
        "Si64\n1.0\n10.86 0 0\n0 10.86 0\n0 0 10.86\nSi\n64\nDirect\n",
    )
    .unwrap();
    let out = vpp()
        .args(["profile", dir.to_str().unwrap(), "--quick"])
        .output()
        .expect("vpp runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("Si64"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_prom_format_emits_a_wellformed_exposition() {
    let out = vpp()
        .args(["trace", "B.hR105_hse", "--quick", "--format", "prom"])
        .output()
        .expect("vpp runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("# TYPE vpp_job_ops_gpu_total counter"), "{text}");
    assert!(text.contains("vpp_span_duration_seconds"), "{text}");
}

#[test]
fn trace_jsonl_format_is_one_json_object_per_line() {
    let out = vpp()
        .args(["trace", "B.hR105_hse", "--quick", "--format", "jsonl"])
        .output()
        .expect("vpp runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.lines().count() > 10, "expected an event stream");
    for line in text.lines() {
        assert!(
            line.starts_with("{\"kind\":") && line.ends_with('}'),
            "not a compact JSON object: {line}"
        );
    }
}

#[test]
fn trace_rejects_unknown_format_and_bad_perturb() {
    let out = vpp()
        .args(["trace", "B.hR105_hse", "--quick", "--format", "yaml"])
        .output()
        .expect("vpp runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown --format"));

    let out = vpp()
        .args(["trace", "B.hR105_hse", "--perturb", "warmup:1.5"])
        .output()
        .expect("vpp runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown phase"));
}

#[test]
fn trace_accept_blesses_a_baseline_that_diff_then_accepts() {
    let path = std::env::temp_dir().join(format!("vpp_accept_{}.json", std::process::id()));
    let out = vpp()
        .env("VPP_BENCH_OUT", &path)
        .args([
            "trace",
            "accept",
            "B.hR105_hse",
            "--tolerance",
            "scf_iter:5",
            "--tolerance",
            "job.collective:10",
        ])
        .output()
        .expect("vpp runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("blessed"), "{text}");
    assert!(text.contains("phase.scf_iter"), "{text}");
    let stored = std::fs::read_to_string(&path).expect("baseline file written");
    assert!(stored.contains("\"tolerances\""), "{stored}");
    assert!(stored.contains("\"job.collective\""), "{stored}");

    // The blessed baseline round-trips: an unperturbed diff is clean.
    let out = vpp()
        .env("VPP_BENCH_OUT", &path)
        .args(["trace", "diff", "B.hR105_hse"])
        .output()
        .expect("vpp runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("clean"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn trace_diff_without_a_stored_baseline_fails_with_guidance() {
    let out = vpp()
        .env("VPP_BENCH_OUT", "/nonexistent/bench.json")
        .args(["trace", "diff", "B.hR105_hse"])
        .output()
        .expect("vpp runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot read"), "{err}");
}
