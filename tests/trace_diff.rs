//! End-to-end flight-recorder triage: capture a baseline, re-run, diff.
//!
//! The simulator is deterministic per seed, so an unperturbed re-run must
//! reproduce the baseline's sim-time/energy aggregates exactly and the
//! diff must be clean; injecting a slowdown into one traced phase must
//! surface exactly that phase as the top-ranked regression, with the
//! telemetry counter deltas alongside.

use vasp_power_profiles::core::{benchmarks, flight};
use vasp_power_profiles::dft::PhaseKind;
use vasp_power_profiles::stats::{trace_diff, DiffConfig};

#[test]
fn unperturbed_rerun_matches_its_baseline() {
    let bench = benchmarks::b_hr105_hse();
    let ctx = flight::baseline_ctx();
    let (_, base) = flight::capture(&bench, &flight::baseline_cfg(), &ctx);
    let (_, rerun) = flight::capture(&bench, &flight::baseline_cfg(), &ctx);
    let d = trace_diff(&base, &rerun, &DiffConfig::default());
    assert_eq!(d.paired_repeats, flight::BASELINE_REPEATS);
    assert!(!d.has_regressions(), "{:?}", d.top_regression());
    assert!(d.significant().is_empty(), "{:?}", d.significant());
    assert!(d.counter_deltas.is_empty(), "{:?}", d.counter_deltas);
}

#[test]
fn collective_and_compute_perturbations_move_disjoint_spans() {
    let bench = benchmarks::b_hr105_hse();
    let ctx = flight::baseline_ctx();
    let (_, base) = flight::capture(&bench, &flight::baseline_cfg(), &ctx);

    // Direction 1: stretching only network time must surface exactly the
    // collective span's pure-communication window, scaled by the factor.
    let slowed_net = flight::baseline_cfg().perturbed_collective(1.6);
    let (_, net) = flight::capture(&bench, &slowed_net, &ctx);
    let d = trace_diff(&base, &net, &DiffConfig::default());
    assert!(d.has_regressions());
    let top = d.top_regression().expect("collective regression ranked first");
    assert_eq!(top.span, "job.collective", "culprit span named: {top:?}");
    assert_eq!(top.metric, "sim_s", "{top:?}");
    // The collective sim window is [t_sync, t_sync + comm_s * factor), so
    // the aggregated sim_s scales exactly — not approximately — by 1.6.
    assert!((top.rel_delta - 0.6).abs() < 1e-6, "{top:?}");
    // Compute phases keep their op mix and per-op compute times.
    assert!(
        d.counter_deltas.iter().all(|c| !c.name.starts_with("job.ops")),
        "{:?}",
        d.counter_deltas
    );

    // Direction 2: a compute-phase slowdown must leave the collective's
    // communication window untouched (waits are excluded from it).
    let slowed_compute = flight::baseline_cfg().perturbed(PhaseKind::ScfIter, 1.6);
    let (_, compute) = flight::capture(&bench, &slowed_compute, &ctx);
    let d = trace_diff(&base, &compute, &DiffConfig::default());
    let row = d
        .rows
        .iter()
        .find(|r| r.span == "job.collective" && r.metric == "sim_s")
        .expect("collective sim row present");
    assert!(
        !row.significant,
        "compute perturbation leaked into the collective window: {row:?}"
    );
    assert!(row.rel_delta.abs() < 1e-9, "{row:?}");
}

#[test]
fn slowed_phase_is_named_top_ranked_with_counter_deltas() {
    let bench = benchmarks::b_hr105_hse();
    let ctx = flight::baseline_ctx();
    let (_, base) = flight::capture(&bench, &flight::baseline_cfg(), &ctx);
    let slowed_cfg = flight::baseline_cfg().perturbed(PhaseKind::ScfIter, 1.6);
    let (_, slowed) = flight::capture(&bench, &slowed_cfg, &ctx);

    let d = trace_diff(&base, &slowed, &DiffConfig::default());
    assert!(d.has_regressions());
    let top = d.top_regression().expect("a regression is ranked first");
    assert_eq!(top.span, "phase.scf_iter", "culprit phase named: {top:?}");
    assert!(top.rel_delta > 0.3, "{top:?}");
    // Every significant sim/energy row blames the perturbed phase or a
    // wrapper that contains it — never the untouched init phase.
    for r in d.significant() {
        assert_ne!(r.span, "phase.init", "{r:?}");
    }
    // A pure slowdown stretches durations without changing the op mix:
    // the structural counters must not register deltas. (Longer runs like
    // Si256_hse additionally move the telemetry ingest counters — the
    // verify.sh smoke covers that side.)
    assert!(
        d.counter_deltas
            .iter()
            .all(|c| !c.name.starts_with("job.ops")),
        "{:?}",
        d.counter_deltas
    );
    // Triage is deterministic: the same comparison ranks identically.
    let again = trace_diff(&base, &slowed, &DiffConfig::default());
    let key = |t: &vasp_power_profiles::stats::TraceDiff| -> Vec<(String, &'static str, bool)> {
        t.rows
            .iter()
            .map(|r| (r.span.clone(), r.metric, r.significant))
            .collect()
    };
    assert_eq!(key(&d), key(&again));
}
