//! Cross-crate integration: the full measurement chain
//! (plan → cluster execution → telemetry → store → statistics)
//! wired exactly as the experiments use it.

use vasp_power_profiles::cluster::{execute, JobSpec, NetworkModel};
use vasp_power_profiles::core::benchmarks;
use vasp_power_profiles::dft::{build_plan, CostModel, ParallelLayout};
use vasp_power_profiles::stats::PowerSummary;
use vasp_power_profiles::telemetry::{Channel, Sampler, Store};

#[test]
fn full_chain_from_benchmark_to_archive() {
    let bench = benchmarks::pdo2();
    let plan = build_plan(
        &bench.params(),
        &ParallelLayout::nodes(2),
        &CostModel::calibrated(),
    );
    let result = execute(&plan, &JobSpec::new(2), &NetworkModel::perlmutter());

    // Archive it through the OMNI-like store.
    let store = Store::new();
    let stored = store.ingest_job("pdo2-run", &result.node_traces, &Sampler::ldms_production());
    assert_eq!(stored, 14, "7 channels × 2 nodes");

    // Query back and analyse with the paper's methodology.
    let node0 = store.query("pdo2-run", 0, Channel::Node).unwrap();
    let summary = PowerSummary::from_samples(node0.values());
    assert!(summary.high_mode_w > 500.0 && summary.high_mode_w < 2350.0);
    assert!(summary.min_w >= 350.0, "never below idle-ish: {}", summary.min_w);

    // Energy bookkeeping is consistent between the trace and the series.
    let trace_energy = result.node_traces[0].node.energy();
    let series_energy = node0.energy_estimate_j();
    let rel = (series_energy - trace_energy).abs() / trace_energy;
    assert!(rel < 0.10, "sampled energy estimate off by {rel}");
}

#[test]
fn component_channels_sum_below_node_channel() {
    // Node total includes unmetered peripherals: cpu + mem + gpus < node.
    let bench = benchmarks::b_hr105_hse();
    let plan = build_plan(
        &bench.params(),
        &ParallelLayout::nodes(1),
        &CostModel::calibrated(),
    );
    let result = execute(&plan, &JobSpec::new(1), &NetworkModel::perlmutter());
    let c = &result.node_traces[0];
    let mid = 0.5 * (c.node.start() + c.node.end());
    let metered: f64 = c.cpu.power_at(mid)
        + c.mem.power_at(mid)
        + c.gpus.iter().map(|g| g.power_at(mid)).sum::<f64>();
    let node = c.node.power_at(mid);
    assert!(node > metered, "gap must be positive: node {node} vs {metered}");
    assert!(node - metered < 250.0, "gap is peripherals-sized: {}", node - metered);
}

#[test]
fn per_gpu_channels_differ_but_agree_in_scale() {
    let bench = benchmarks::pdo4();
    let plan = build_plan(
        &bench.params(),
        &ParallelLayout::nodes(1),
        &CostModel::calibrated(),
    );
    let result = execute(&plan, &JobSpec::new(1), &NetworkModel::perlmutter());
    let sampler = Sampler::ideal(1.0);
    let means: Vec<f64> = result.node_traces[0]
        .gpus
        .iter()
        .map(|g| sampler.sample(g).mean())
        .collect();
    let lo = means.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = means.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert!(hi - lo > 0.5, "boards must differ: {means:?}");
    assert!(hi / lo < 1.25, "but only slightly: {means:?}");
}

#[test]
fn capped_job_never_exceeds_cap_anywhere() {
    let bench = benchmarks::si128_acfdtr();
    let plan = build_plan(
        &bench.params(),
        &ParallelLayout::nodes(1),
        &CostModel::calibrated(),
    );
    let mut spec = JobSpec::new(1);
    spec.gpu_power_cap_w = Some(250.0);
    let result = execute(&plan, &spec, &NetworkModel::perlmutter());
    for (i, g) in result.node_traces[0].gpus.iter().enumerate() {
        let max = g.max_power().unwrap();
        assert!(max <= 250.0 + 1e-9, "GPU {i} drew {max} W under a 250 W cap");
    }
}

#[test]
fn rpa_timeline_shows_the_cpu_only_stage() {
    // Fig. 3 bottom panel: a flat low-GPU stretch in the middle of
    // Si128_acfdtr where the exact diagonalisation runs on CPUs.
    let bench = benchmarks::si128_acfdtr();
    let plan = build_plan(
        &bench.params(),
        &ParallelLayout::nodes(1),
        &CostModel::calibrated(),
    );
    let result = execute(&plan, &JobSpec::new(1), &NetworkModel::perlmutter());
    let c = &result.node_traces[0];
    // Find a 30-second window where GPUs idle but CPU works hard.
    let mut found = false;
    let mut t = c.node.start();
    while t + 30.0 < c.node.end() {
        let gpu_mean: f64 = c
            .gpus
            .iter()
            .map(|g| g.mean_power(t, t + 30.0))
            .sum::<f64>()
            / 4.0;
        let cpu_mean = c.cpu.mean_power(t, t + 30.0);
        if gpu_mean < 80.0 && cpu_mean > 200.0 {
            found = true;
            break;
        }
        t += 10.0;
    }
    assert!(found, "no CPU-only diagonalisation stage in the timeline");
}
