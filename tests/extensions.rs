//! Integration tests for the beyond-the-paper extensions: the MILC
//! deployment step (§VI-B), thermal verification, the closed-loop budget
//! controller, phase segmentation on real pipeline output, and
//! periodicity-based runtime extrapolation (§VI-C).

use vasp_power_profiles::cluster::{execute, JobSpec, NetworkModel};
use vasp_power_profiles::core::{benchmarks, protocol};
use vasp_power_profiles::dft::{CostModel, ParallelLayout};
use vasp_power_profiles::gpu::ThermalModel;
use vasp_power_profiles::lqcd::{MilcWorkload, SolverParams};
use vasp_power_profiles::stats::Segmenter;
use vasp_power_profiles::telemetry::{Channel, Query, Sampler, Store};

fn milc_small() -> MilcWorkload {
    MilcWorkload {
        lattice: [32, 32, 32, 48],
        trajectories: 2,
        md_steps: 6,
        solver: SolverParams {
            cg_iters: 400,
            solves_per_step: 2,
        },
    }
}

#[test]
fn milc_and_vasp_split_under_the_100w_floor() {
    // The §VI-B finding: the same cap that devastates HSE barely touches
    // MILC — the basis for per-application cap policies.
    let net = NetworkModel::perlmutter();
    let cm = CostModel::calibrated();
    let plan = milc_small().build_plan(&ParallelLayout::nodes(1), &net, &cm);
    let base = execute(&plan, &JobSpec::new(1), &net).runtime_s;
    let mut capped_spec = JobSpec::new(1);
    capped_spec.gpu_power_cap_w = Some(100.0);
    let capped = execute(&plan, &capped_spec, &net).runtime_s;
    let milc_perf = base / capped;

    let ctx = protocol::StudyContext::quick();
    let vasp_base = protocol::measure(
        &benchmarks::si256_hse(),
        &protocol::RunConfig::nodes(1),
        &ctx,
    );
    let vasp_capped = protocol::measure(
        &benchmarks::si256_hse(),
        &protocol::RunConfig::capped(1, 100.0),
        &ctx,
    );
    let vasp_perf = vasp_base.runtime_s / vasp_capped.runtime_s;

    assert!(milc_perf > 0.88, "MILC tolerates the floor: {milc_perf}");
    assert!(vasp_perf < 0.5, "HSE collapses at the floor: {vasp_perf}");
}

#[test]
fn no_reproduced_workload_thermally_throttles() {
    // The thermal model's purpose: verify Perlmutter's liquid cooling keeps
    // every reproduced workload below the slowdown temperature, so power
    // capping is the *only* throttling mechanism in play (as the paper
    // implicitly assumes).
    let thermal = ThermalModel::liquid_cooled();
    let ctx = protocol::StudyContext::quick();
    for bench in [benchmarks::si256_hse(), benchmarks::si128_acfdtr()] {
        let m = protocol::measure(&bench, &protocol::RunConfig::nodes(1), &ctx);
        for (i, gpu) in m.result.node_traces[0].gpus.iter().enumerate() {
            let frac = thermal.throttle_fraction(gpu);
            assert_eq!(frac, 0.0, "{} GPU {i} thermally throttled", bench.name());
            let peak = thermal.peak_temperature_c(gpu);
            assert!(peak < 75.0, "{} GPU {i} peaked at {peak} °C", bench.name());
        }
    }
}

#[test]
fn segmentation_recovers_the_rpa_structure_from_pipeline_output() {
    let ctx = protocol::StudyContext::quick();
    let m = protocol::measure(
        &benchmarks::si128_acfdtr(),
        &protocol::RunConfig::nodes(1),
        &ctx,
    );
    let seg = Segmenter::node_power();
    let low = seg
        .longest_low_phase(m.node_series.values(), 900.0)
        .expect("the CPU-only diagonalisation must be detected");
    let interval = m.node_series.mean_interval_s().unwrap();
    let dur = low.len() as f64 * interval;
    assert!(
        (40.0..200.0).contains(&dur),
        "diag stage duration {dur}s at {:.0} W",
        low.mean_w
    );
    assert!(low.mean_w < 800.0);
}

#[test]
fn periodicity_detects_milc_trajectory_structure() {
    // MILC's per-MD-step force bursts give the timeline a measurable
    // period — the §VI-C extrapolation hook.
    let net = NetworkModel::perlmutter();
    let cm = CostModel::calibrated();
    let w = milc_small();
    let plan = w.build_plan(&ParallelLayout::nodes(1), &net, &cm);
    let res = execute(&plan, &JobSpec::new(1), &net);
    let series = Sampler::ideal(0.5).sample(&res.node_traces[0].node);
    let period = vasp_power_profiles::stats::dominant_period(
        series.values(),
        series.len() / 2,
        0.15,
    );
    assert!(period.is_some(), "no periodicity found in the MILC timeline");
    // One MD step ≈ runtime / (trajectories × md_steps).
    let expect = res.runtime_s / (w.trajectories * w.md_steps) as f64 / 0.5;
    let got = period.unwrap() as f64;
    assert!(
        got > 0.5 * expect && got < 2.5 * expect * w.md_steps as f64,
        "period {got} samples vs per-step {expect}"
    );
}

#[test]
fn telemetry_queries_work_on_pipeline_output() {
    let ctx = protocol::StudyContext::quick();
    let m = protocol::measure(&benchmarks::pdo4(), &protocol::RunConfig::nodes(2), &ctx);
    let store = Store::new();
    store.ingest_job("pdo4", &m.result.node_traces, &Sampler::ideal(1.0));
    let q = Query::new(&store);

    let node_energy = q.job_energy_j("pdo4", Channel::Node).unwrap();
    assert!(
        (node_energy - m.energy_j).abs() / m.energy_j < 0.05,
        "archived energy {node_energy} vs measured {}",
        m.energy_j
    );
    let share = q.gpu_energy_share("pdo4").unwrap();
    assert!((0.4..0.9).contains(&share), "gpu share {share}");
    let stats = q.fleet_stats("pdo4", Channel::Node).unwrap();
    assert_eq!(stats.nodes, 2);
    assert!(stats.spread_w >= 0.0 && stats.spread_w < 150.0);
}

#[test]
fn screening_catches_an_injected_straggler() {
    // Run a 4-node job with one slow node; the §III-B.1 screen (automated
    // in vpp-telemetry::screening) must flag exactly that node. The
    // straggler keeps computing while the healthy nodes wait at barriers,
    // so its mean power stands out above the fleet.
    use vasp_power_profiles::cluster::Straggler;
    use vasp_power_profiles::telemetry::Screener;

    let bench = benchmarks::pdo4();
    let plan = vasp_power_profiles::core::protocol::plan_for(
        &bench,
        4,
        &protocol::StudyContext::quick(),
    );
    let mut spec = JobSpec::new(4);
    spec.straggler = Some(Straggler {
        node: 2,
        slowdown: 1.35,
    });
    let res = execute(&plan, &spec, &NetworkModel::perlmutter());
    let sampler = Sampler::ideal(1.0);
    let per_node: Vec<_> = res
        .node_traces
        .iter()
        .map(|c| sampler.sample(&c.node))
        .collect();
    let verdicts = Screener::default_threshold().screen(&per_node);
    let outliers: Vec<usize> = verdicts.iter().filter(|v| v.outlier).map(|v| v.node).collect();
    assert_eq!(outliers, vec![2], "verdicts: {verdicts:?}");
    // And the straggler is the *hot* one (works while others wait).
    assert!(verdicts[2].z_score > 0.0, "{verdicts:?}");
}

#[test]
fn energy_objectives_split_hungry_and_tolerant_workloads() {
    use vasp_power_profiles::stats::energy_metrics::{best_point, Objective, OperatingPoint};

    let ctx = protocol::StudyContext::quick();
    let points = |bench: &benchmarks::Benchmark| -> Vec<OperatingPoint> {
        let nodes = bench.cap_study_nodes;
        [400.0, 200.0, 100.0]
            .iter()
            .map(|&cap| {
                let m = if cap >= 400.0 {
                    protocol::measure(bench, &protocol::RunConfig::nodes(nodes), &ctx)
                } else {
                    protocol::measure(bench, &protocol::RunConfig::capped(nodes, cap), &ctx)
                };
                OperatingPoint {
                    cap_w: cap,
                    energy_j: m.energy_j,
                    runtime_s: m.runtime_s,
                }
            })
            .collect()
    };

    // Cap-tolerant PdO2: even ED²P caps deep.
    let pdo2 = points(&benchmarks::pdo2());
    assert!(
        best_point(&pdo2, Objective::Ed2p).cap_w <= 200.0,
        "{pdo2:?}"
    );
    // Hungry Si256_hse: ED²P refuses the 100 W floor.
    let hse = points(&benchmarks::si256_hse());
    assert!(
        best_point(&hse, Objective::Ed2p).cap_w > 100.0,
        "{hse:?}"
    );
}
