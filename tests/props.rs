//! Property-based tests over the cross-crate invariants DESIGN.md §7
//! promises, driven by the in-tree harness (`vpp_substrate::properties!`)
//! on the deterministic simulation RNG.

use vasp_power_profiles::gpu::{Gpu, Kernel, KernelKind};
use vasp_power_profiles::sim::{EventQueue, PowerTrace};
use vasp_power_profiles::stats;
use vasp_power_profiles::telemetry::Sampler;
use vpp_substrate::prop::{segments, usize_in, vec_f64};
use vpp_substrate::{prop_assume, properties};

properties! {
    fn trace_energy_is_sum_of_segment_energies(rng) {
        let segs = segments(rng, 1, 40);
        let trace = PowerTrace::from_segments(0.0, segs.clone());
        let direct: f64 = segs.iter().map(|&(d, w)| d * w).sum();
        assert!((trace.energy() - direct).abs() <= 1e-6 * (1.0 + direct));
    }

    fn trace_sum_conserves_energy(rng) {
        let a = segments(rng, 1, 40);
        let b = segments(rng, 1, 40);
        let offset = rng.uniform(0.0, 10.0);
        let ta = PowerTrace::from_segments(0.0, a);
        let tb = PowerTrace::from_segments(offset, b);
        let sum = PowerTrace::sum(&[&ta, &tb]);
        let total = ta.energy() + tb.energy();
        assert!((sum.energy() - total).abs() <= 1e-6 * (1.0 + total));
    }

    fn trace_sum_matches_reference_cut_union(rng) {
        let a = PowerTrace::from_segments(0.0, segments(rng, 1, 40));
        let b = PowerTrace::from_segments(rng.uniform(0.0, 10.0), segments(rng, 1, 40));
        let c = PowerTrace::from_segments(rng.uniform(0.0, 50.0), segments(rng, 1, 40));
        let fast = PowerTrace::sum(&[&a, &b, &c]);
        let slow = vasp_power_profiles::sim::trace::reference::sum_cut_union(&[&a, &b, &c]);
        assert!((fast.energy() - slow.energy()).abs() <= 1e-9 * (1.0 + slow.energy()));
        for _ in 0..32 {
            let t = rng.uniform(slow.start(), slow.end());
            let (pf, ps) = (fast.power_at(t), slow.power_at(t));
            assert!(
                (pf - ps).abs() <= 1e-6 * (1.0 + ps.abs()),
                "power_at({t}): merge {pf} vs cut-union {ps}"
            );
        }
    }

    fn slicing_partitions_energy(rng) {
        let trace = PowerTrace::from_segments(0.0, segments(rng, 1, 40));
        let frac = rng.uniform(0.05, 0.95);
        let cut = trace.start() + frac * trace.duration();
        let left = trace.slice(trace.start(), cut);
        let right = trace.slice(cut, trace.end());
        let total = left.energy() + right.energy();
        assert!((total - trace.energy()).abs() <= 1e-6 * (1.0 + trace.energy()));
    }

    fn shifting_preserves_everything_but_time(rng) {
        let mut t = PowerTrace::from_segments(0.0, segments(rng, 1, 40));
        let dt = rng.uniform(-100.0, 100.0);
        let e = t.energy();
        let d = t.duration();
        t.shift(dt);
        assert!((t.energy() - e).abs() <= 1e-9 * (1.0 + e));
        assert!((t.duration() - d).abs() <= 1e-9);
        assert!((t.start() - dt).abs() <= 1e-9);
    }

    fn sampler_preserves_mean_power(rng) {
        let trace = PowerTrace::from_segments(0.0, segments(rng, 1, 40));
        prop_assume!(trace.duration() > 2.0);
        let series = Sampler::ideal(0.25).sample(&trace);
        prop_assume!(series.len() > 4);
        let covered = series.len() as f64 * 0.25;
        let true_mean = trace.energy_between(trace.start(), trace.start() + covered) / covered;
        assert!(
            (series.mean() - true_mean).abs() <= 1e-6 * (1.0 + true_mean),
            "sampled {} vs true {}", series.mean(), true_mean
        );
    }

    fn kde_density_integrates_to_one(rng) {
        let data = vec_f64(rng, 0.0, 2500.0, 8, 200);
        let kde = stats::kde::Kde::fit(&data, stats::kde::Bandwidth::Silverman);
        let (xs, ys) = kde.grid(1024);
        let step = xs[1] - xs[0];
        let integral: f64 = ys.iter().sum::<f64>() * step;
        assert!((integral - 1.0).abs() < 0.05, "integral = {integral}");
    }

    fn binned_kde_grid_matches_exact_grid(rng) {
        let data = vec_f64(rng, 0.0, 2500.0, 8, 200);
        let kde = stats::kde::Kde::fit(&data, stats::kde::Bandwidth::Silverman);
        let (_, binned) = kde.grid(512);
        let (_, exact) = kde.grid_exact(512);
        let peak = exact.iter().copied().fold(0.0f64, f64::max);
        for (b, e) in binned.iter().zip(&exact) {
            assert!(
                (b - e).abs() <= 0.01 * peak,
                "binned {b} vs exact {e} (peak {peak})"
            );
        }
    }

    fn high_power_mode_lies_within_data_hull(rng) {
        let data = vec_f64(rng, 0.0, 2500.0, 8, 200);
        let mode = stats::high_power_mode(&data);
        let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // KDE support extends ~3 bandwidths beyond the hull.
        let slack = 0.2 * (hi - lo) + 30.0;
        assert!(mode.x >= lo - slack && mode.x <= hi + slack);
    }

    fn mode_is_shift_equivariant(rng) {
        let data = vec_f64(rng, 100.0, 1000.0, 16, 128);
        let shift = rng.uniform(0.0, 500.0);
        let m0 = stats::high_power_mode(&data);
        let shifted: Vec<f64> = data.iter().map(|x| x + shift).collect();
        let m1 = stats::high_power_mode(&shifted);
        assert!(
            (m1.x - m0.x - shift).abs() < 20.0,
            "mode moved {} under a {shift} shift", m1.x - m0.x
        );
    }

    fn quantiles_are_monotone(rng) {
        let data = vec_f64(rng, 0.0, 1e4, 2, 100);
        let p1 = rng.uniform(0.0, 1.0);
        let p2 = rng.uniform(0.0, 1.0);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        assert!(stats::describe::quantile(&data, lo) <= stats::describe::quantile(&data, hi));
    }

    fn throttle_perf_monotone_in_cap_for_any_kernel(rng) {
        let width = rng.uniform(1.0, 1e8);
        let duty = rng.uniform(0.05, 1.0);
        let kernel = Kernel::with_duty(KernelKind::TensorGemm, width, 1.0, duty);
        let mut last = 0.0;
        for cap in [100.0, 150.0, 200.0, 250.0, 300.0, 350.0, 400.0] {
            let mut gpu = Gpu::nominal();
            gpu.set_power_limit(cap);
            let ex = gpu.execute(&kernel);
            assert!(ex.perf >= last - 1e-12, "perf fell as cap rose");
            assert!(ex.perf <= 1.0 + 1e-12);
            last = ex.perf;
        }
    }

    fn capped_power_never_exceeds_effective_ceiling(rng) {
        let width = rng.uniform(1.0, 1e8);
        let duty = rng.uniform(0.05, 1.0);
        let cap = rng.uniform(100.0, 400.0);
        for kind in KernelKind::all() {
            let kernel = Kernel::with_duty(kind, width, 1.0, duty);
            let mut gpu = Gpu::nominal();
            gpu.set_power_limit(cap);
            let ex = gpu.execute(&kernel);
            assert!(
                ex.watts <= gpu.effective_ceiling() + 1e-9,
                "{kind:?} drew {} over ceiling {}", ex.watts, gpu.effective_ceiling()
            );
        }
    }

    fn throttled_kernels_never_speed_up(rng) {
        let width = rng.uniform(1.0, 1e8);
        let duty = rng.uniform(0.05, 1.0);
        let cap = rng.uniform(100.0, 400.0);
        for kind in KernelKind::all() {
            let kernel = Kernel::with_duty(kind, width, 1.0, duty);
            let base = Gpu::nominal().execute(&kernel).duration_s;
            let mut gpu = Gpu::nominal();
            gpu.set_power_limit(cap);
            let capped = gpu.execute(&kernel).duration_s;
            assert!(capped >= base - 1e-12, "{kind:?} sped up under a cap");
        }
    }

    fn event_queue_delivers_sorted(rng) {
        let times = vec_f64(rng, 0.0, 1e6, 1, 200);
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut last = f64::NEG_INFINITY;
        while let Some((t, _)) = q.next() {
            assert!(t >= last);
            last = t;
        }
    }

    fn utilisation_monotone_and_bounded(rng) {
        let w1 = rng.uniform(0.0, 1e9);
        let w2 = rng.uniform(0.0, 1e9);
        let gpu = Gpu::nominal();
        let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        assert!(gpu.utilisation(lo) <= gpu.utilisation(hi));
        assert!((0.0..1.0).contains(&gpu.utilisation(hi)));
    }

    fn downsampling_covers_every_sample_with_group_means(rng) {
        let values = vec_f64(rng, 0.0, 2000.0, 16, 256);
        let factor = usize_in(rng, 1, 8);
        let times: Vec<f64> = (0..values.len()).map(|i| i as f64).collect();
        let series = vasp_power_profiles::telemetry::TimeSeries::new(times, values.clone());
        let d = series.downsample(factor);
        assert_eq!(d.len(), values.len().div_ceil(factor), "partial tail kept");
        for (lo, &got) in (0..values.len()).step_by(factor).zip(d.values()) {
            let hi = (lo + factor).min(values.len());
            let direct: f64 = values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
            assert!(
                (got - direct).abs() < 1e-9 * (1.0 + direct.abs()),
                "group [{lo}, {hi}): got {got}, direct {direct}"
            );
        }
    }

    fn screened_kde_never_panics_on_non_finite_data(rng) {
        let mut data = vec_f64(rng, 0.0, 2500.0, 1, 100);
        for _ in 0..usize_in(rng, 0, 8) {
            let junk = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][rng.index(3)];
            let pos = rng.index(data.len());
            data.insert(pos, junk);
        }
        match stats::kde::Kde::fit_screened(&data, stats::kde::Bandwidth::Silverman) {
            Some((kde, rejected)) => {
                assert!(rejected < data.len());
                let (_, ys) = kde.grid(128);
                assert!(ys.iter().all(|y| y.is_finite()));
            }
            None => assert!(data.iter().all(|x| !x.is_finite())),
        }
    }

    fn raw_ingest_tolerates_duplicates_and_disorder(rng) {
        use vasp_power_profiles::telemetry::{quarantine, QualityConfig, RawSeries};
        let n = usize_in(rng, 2, 120);
        let mut raw = RawSeries::new();
        for i in 0..n {
            // ~1 in 5 timestamps is replaced by a random earlier/equal one,
            // producing both out-of-order arrivals and exact duplicates.
            let t = if rng.index(5) == 0 { rng.index(n) as f64 } else { i as f64 };
            raw.push(t, rng.uniform(50.0, 2000.0));
        }
        let clean = quarantine(&raw, &QualityConfig::new(1.0));
        let q = clean.quality;
        assert_eq!(q.n_raw, n);
        assert_eq!(q.n_kept + q.removed(), n);
        assert_eq!(q.n_kept, clean.series.len());
        // The screened output must satisfy TimeSeries's strict-monotone
        // invariant, i.e. re-ingesting it cannot panic.
        let rebuilt = vasp_power_profiles::telemetry::TimeSeries::new(
            clean.series.times().to_vec(),
            clean.series.values().to_vec(),
        );
        for w in rebuilt.times().windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    fn coarsen_conserves_energy(rng) {
        let trace = PowerTrace::from_segments(0.0, segments(rng, 1, 40));
        let dt = rng.uniform(0.05, 10.0);
        let coarse = trace.coarsen(dt);
        assert!((coarse.energy() - trace.energy()).abs() <= 1e-6 * (1.0 + trace.energy()));
        assert!((coarse.duration() - trace.duration()).abs() <= 1e-9);
        assert!(coarse.len() <= trace.duration().div_euclid(dt) as usize + 2);
    }

    fn phase_segmentation_tiles_the_input(rng) {
        let n_steps = usize_in(rng, 1, 8);
        let data: Vec<f64> = (0..n_steps)
            .flat_map(|_| {
                let n = usize_in(rng, 5, 40);
                let w = rng.uniform(50.0, 2300.0);
                std::iter::repeat_n(w, n)
            })
            .collect();
        let phases = stats::Segmenter::node_power().segment(&data);
        assert!(!phases.is_empty());
        assert_eq!(phases[0].start, 0);
        assert_eq!(phases.last().unwrap().end, data.len());
        for w in phases.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // Every phase mean lies within the data hull.
        let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for p in &phases {
            assert!(p.mean_w >= lo - 1e-9 && p.mean_w <= hi + 1e-9);
        }
    }

    fn square_wave_period_is_recovered(rng) {
        let period = usize_in(rng, 6, 30);
        let cycles = usize_in(rng, 8, 20);
        let n = period * cycles;
        let data: Vec<f64> = (0..n)
            .map(|i| if (i % period) < period / 2 { 600.0 } else { 1500.0 })
            .collect();
        let got = stats::dominant_period(&data, n / 2, 0.3);
        assert!(got.is_some());
        let got = got.unwrap();
        // Allow the detector to land on the period or a harmonic.
        let ok = (1..=3).any(|k| got.abs_diff(period * k) <= 1);
        assert!(ok, "period {period}, detected {got}");
    }

    fn bootstrap_ci_always_brackets_its_estimate(rng) {
        let data = vec_f64(rng, 10.0, 2000.0, 8, 80);
        let seed = rng.index(1000) as u64;
        let ci = stats::bootstrap_ci(&data, 60, 0.9, seed, stats::describe::mean);
        assert!(ci.lo <= ci.hi);
        // The point estimate can fall marginally outside a percentile CI
        // for skewed tiny samples; allow slack of one interval width.
        let slack = ci.width() + 1e-9;
        assert!(ci.estimate >= ci.lo - slack && ci.estimate <= ci.hi + slack);
    }

    fn pareto_front_is_nondominated_and_sorted(rng) {
        use vasp_power_profiles::stats::energy_metrics::{pareto_front, OperatingPoint};
        let n = usize_in(rng, 1, 20);
        let points: Vec<OperatingPoint> = (0..n)
            .map(|_| OperatingPoint {
                cap_w: rng.uniform(100.0, 400.0),
                energy_j: rng.uniform(1e5, 1e7),
                runtime_s: rng.uniform(10.0, 1e4),
            })
            .collect();
        let front = pareto_front(&points);
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[0].runtime_s <= w[1].runtime_s);
            assert!(w[0].energy_j >= w[1].energy_j);
        }
        // No front point is dominated by any input point.
        for f in &front {
            for p in &points {
                let dominates = p.runtime_s <= f.runtime_s
                    && p.energy_j <= f.energy_j
                    && (p.runtime_s < f.runtime_s || p.energy_j < f.energy_j);
                assert!(!dominates);
            }
        }
    }
}
