//! Property-based tests over the cross-crate invariants DESIGN.md §7
//! promises.

use proptest::prelude::*;
use vasp_power_profiles::gpu::{Gpu, Kernel, KernelKind};
use vasp_power_profiles::sim::{EventQueue, PowerTrace};
use vasp_power_profiles::stats;
use vasp_power_profiles::telemetry::Sampler;

fn segment_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.01f64..5.0, 0.0f64..2500.0), 1..40)
}

proptest! {
    #[test]
    fn trace_energy_is_sum_of_segment_energies(segs in segment_strategy()) {
        let trace = PowerTrace::from_segments(0.0, segs.clone());
        let direct: f64 = segs.iter().map(|&(d, w)| d * w).sum();
        prop_assert!((trace.energy() - direct).abs() <= 1e-6 * (1.0 + direct));
    }

    #[test]
    fn trace_sum_conserves_energy(
        a in segment_strategy(),
        b in segment_strategy(),
        offset in 0.0f64..10.0,
    ) {
        let ta = PowerTrace::from_segments(0.0, a);
        let tb = PowerTrace::from_segments(offset, b);
        let sum = PowerTrace::sum(&[&ta, &tb]);
        let total = ta.energy() + tb.energy();
        prop_assert!((sum.energy() - total).abs() <= 1e-6 * (1.0 + total));
    }

    #[test]
    fn slicing_partitions_energy(segs in segment_strategy(), frac in 0.05f64..0.95) {
        let trace = PowerTrace::from_segments(0.0, segs);
        let cut = trace.start() + frac * trace.duration();
        let left = trace.slice(trace.start(), cut);
        let right = trace.slice(cut, trace.end());
        let total = left.energy() + right.energy();
        prop_assert!((total - trace.energy()).abs() <= 1e-6 * (1.0 + trace.energy()));
    }

    #[test]
    fn shifting_preserves_everything_but_time(
        segs in segment_strategy(),
        dt in -100.0f64..100.0,
    ) {
        let mut t = PowerTrace::from_segments(0.0, segs);
        let e = t.energy();
        let d = t.duration();
        t.shift(dt);
        prop_assert!((t.energy() - e).abs() <= 1e-9 * (1.0 + e));
        prop_assert!((t.duration() - d).abs() <= 1e-9);
        prop_assert!((t.start() - dt).abs() <= 1e-9);
    }

    #[test]
    fn sampler_preserves_mean_power(segs in segment_strategy()) {
        let trace = PowerTrace::from_segments(0.0, segs);
        prop_assume!(trace.duration() > 2.0);
        let series = Sampler::ideal(0.25).sample(&trace);
        prop_assume!(series.len() > 4);
        let covered = series.len() as f64 * 0.25;
        let true_mean = trace.energy_between(trace.start(), trace.start() + covered) / covered;
        prop_assert!(
            (series.mean() - true_mean).abs() <= 1e-6 * (1.0 + true_mean),
            "sampled {} vs true {}", series.mean(), true_mean
        );
    }

    #[test]
    fn kde_density_integrates_to_one(
        data in prop::collection::vec(0.0f64..2500.0, 8..200),
    ) {
        let kde = stats::kde::Kde::fit(&data, stats::kde::Bandwidth::Silverman);
        let (xs, ys) = kde.grid(1024);
        let step = xs[1] - xs[0];
        let integral: f64 = ys.iter().sum::<f64>() * step;
        prop_assert!((integral - 1.0).abs() < 0.05, "integral = {integral}");
    }

    #[test]
    fn high_power_mode_lies_within_data_hull(
        data in prop::collection::vec(0.0f64..2500.0, 8..200),
    ) {
        let mode = stats::high_power_mode(&data);
        let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // KDE support extends ~3 bandwidths beyond the hull.
        let slack = 0.2 * (hi - lo) + 30.0;
        prop_assert!(mode.x >= lo - slack && mode.x <= hi + slack);
    }

    #[test]
    fn mode_is_shift_equivariant(
        data in prop::collection::vec(100.0f64..1000.0, 16..128),
        shift in 0.0f64..500.0,
    ) {
        let m0 = stats::high_power_mode(&data);
        let shifted: Vec<f64> = data.iter().map(|x| x + shift).collect();
        let m1 = stats::high_power_mode(&shifted);
        prop_assert!(
            (m1.x - m0.x - shift).abs() < 20.0,
            "mode moved {} under a {shift} shift", m1.x - m0.x
        );
    }

    #[test]
    fn quantiles_are_monotone(
        data in prop::collection::vec(0.0f64..1e4, 2..100),
        p1 in 0.0f64..1.0,
        p2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(stats::describe::quantile(&data, lo) <= stats::describe::quantile(&data, hi));
    }

    #[test]
    fn throttle_perf_monotone_in_cap_for_any_kernel(
        width in 1.0f64..1e8,
        duty in 0.05f64..1.0,
    ) {
        let kernel = Kernel::with_duty(KernelKind::TensorGemm, width, 1.0, duty);
        let mut last = 0.0;
        for cap in [100.0, 150.0, 200.0, 250.0, 300.0, 350.0, 400.0] {
            let mut gpu = Gpu::nominal();
            gpu.set_power_limit(cap);
            let ex = gpu.execute(&kernel);
            prop_assert!(ex.perf >= last - 1e-12, "perf fell as cap rose");
            prop_assert!(ex.perf <= 1.0 + 1e-12);
            last = ex.perf;
        }
    }

    #[test]
    fn capped_power_never_exceeds_effective_ceiling(
        width in 1.0f64..1e8,
        duty in 0.05f64..1.0,
        cap in 100.0f64..400.0,
    ) {
        for kind in KernelKind::all() {
            let kernel = Kernel::with_duty(kind, width, 1.0, duty);
            let mut gpu = Gpu::nominal();
            gpu.set_power_limit(cap);
            let ex = gpu.execute(&kernel);
            prop_assert!(
                ex.watts <= gpu.effective_ceiling() + 1e-9,
                "{kind:?} drew {} over ceiling {}", ex.watts, gpu.effective_ceiling()
            );
        }
    }

    #[test]
    fn throttled_kernels_never_speed_up(
        width in 1.0f64..1e8,
        duty in 0.05f64..1.0,
        cap in 100.0f64..400.0,
    ) {
        for kind in KernelKind::all() {
            let kernel = Kernel::with_duty(kind, width, 1.0, duty);
            let base = Gpu::nominal().execute(&kernel).duration_s;
            let mut gpu = Gpu::nominal();
            gpu.set_power_limit(cap);
            let capped = gpu.execute(&kernel).duration_s;
            prop_assert!(capped >= base - 1e-12, "{kind:?} sped up under a cap");
        }
    }

    #[test]
    fn event_queue_delivers_sorted(times in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut last = f64::NEG_INFINITY;
        while let Some((t, _)) = q.next() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn utilisation_monotone_and_bounded(w1 in 0.0f64..1e9, w2 in 0.0f64..1e9) {
        let gpu = Gpu::nominal();
        let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        prop_assert!(gpu.utilisation(lo) <= gpu.utilisation(hi));
        prop_assert!((0.0..1.0).contains(&gpu.utilisation(hi)));
    }

    #[test]
    fn downsampling_preserves_covered_mean(
        values in prop::collection::vec(0.0f64..2000.0, 16..256),
        factor in 1usize..8,
    ) {
        let times: Vec<f64> = (0..values.len()).map(|i| i as f64).collect();
        let series = vasp_power_profiles::telemetry::TimeSeries::new(times, values.clone());
        let d = series.downsample(factor);
        prop_assume!(!d.is_empty());
        let covered = d.len() * factor;
        let direct: f64 = values[..covered].iter().sum::<f64>() / covered as f64;
        prop_assert!((d.mean() - direct).abs() < 1e-9 * (1.0 + direct));
    }
}

proptest! {
    #[test]
    fn coarsen_conserves_energy(segs in segment_strategy(), dt in 0.05f64..10.0) {
        let trace = PowerTrace::from_segments(0.0, segs);
        let coarse = trace.coarsen(dt);
        prop_assert!((coarse.energy() - trace.energy()).abs() <= 1e-6 * (1.0 + trace.energy()));
        prop_assert!((coarse.duration() - trace.duration()).abs() <= 1e-9);
        prop_assert!(coarse.len() <= trace.duration().div_euclid(dt) as usize + 2);
    }

    #[test]
    fn phase_segmentation_tiles_the_input(
        steps in prop::collection::vec((5usize..40, 50.0f64..2300.0), 1..8),
    ) {
        let data: Vec<f64> = steps
            .iter()
            .flat_map(|&(n, w)| std::iter::repeat_n(w, n))
            .collect();
        let phases = stats::Segmenter::node_power().segment(&data);
        prop_assert!(!phases.is_empty());
        prop_assert_eq!(phases[0].start, 0);
        prop_assert_eq!(phases.last().unwrap().end, data.len());
        for w in phases.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        // Every phase mean lies within the data hull.
        let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for p in &phases {
            prop_assert!(p.mean_w >= lo - 1e-9 && p.mean_w <= hi + 1e-9);
        }
    }

    #[test]
    fn square_wave_period_is_recovered(period in 6usize..30, cycles in 8usize..20) {
        let n = period * cycles;
        let data: Vec<f64> = (0..n)
            .map(|i| if (i % period) < period / 2 { 600.0 } else { 1500.0 })
            .collect();
        let got = stats::dominant_period(&data, n / 2, 0.3);
        prop_assert!(got.is_some());
        let got = got.unwrap();
        // Allow the detector to land on the period or a harmonic.
        let ok = (1..=3).any(|k| got.abs_diff(period * k) <= 1);
        prop_assert!(ok, "period {period}, detected {got}");
    }

    #[test]
    fn bootstrap_ci_always_brackets_its_estimate(
        data in prop::collection::vec(10.0f64..2000.0, 8..80),
        seed in 0u64..1000,
    ) {
        let ci = stats::bootstrap_ci(&data, 60, 0.9, seed, stats::describe::mean);
        prop_assert!(ci.lo <= ci.hi);
        // The point estimate can fall marginally outside a percentile CI
        // for skewed tiny samples; allow slack of one interval width.
        let slack = ci.width() + 1e-9;
        prop_assert!(ci.estimate >= ci.lo - slack && ci.estimate <= ci.hi + slack);
    }

    #[test]
    fn pareto_front_is_nondominated_and_sorted(
        pts in prop::collection::vec((100.0f64..400.0, 1e5f64..1e7, 10.0f64..1e4), 1..20),
    ) {
        use vasp_power_profiles::stats::energy_metrics::{pareto_front, OperatingPoint};
        let points: Vec<OperatingPoint> = pts
            .iter()
            .map(|&(c, e, t)| OperatingPoint { cap_w: c, energy_j: e, runtime_s: t })
            .collect();
        let front = pareto_front(&points);
        prop_assert!(!front.is_empty());
        for w in front.windows(2) {
            prop_assert!(w[0].runtime_s <= w[1].runtime_s);
            prop_assert!(w[0].energy_j >= w[1].energy_j);
        }
        // No front point is dominated by any input point.
        for f in &front {
            for p in &points {
                let dominates = p.runtime_s <= f.runtime_s
                    && p.energy_j <= f.energy_j
                    && (p.runtime_s < f.runtime_s || p.energy_j < f.energy_j);
                prop_assert!(!dominates);
            }
        }
    }
}
