//! Robustness properties of the VASP-format parsers: arbitrary input must
//! never panic, and valid input must round-trip.

use proptest::prelude::*;
use vasp_power_profiles::dft::{parse_incar, parse_kpoints, parse_poscar};

proptest! {
    #[test]
    fn incar_parser_never_panics(text in ".{0,400}") {
        // Any outcome is fine; panicking is not.
        let _ = parse_incar(&text);
    }

    #[test]
    fn kpoints_parser_never_panics(text in ".{0,200}") {
        let _ = parse_kpoints(&text);
    }

    #[test]
    fn poscar_parser_never_panics(text in ".{0,400}") {
        let _ = parse_poscar(&text);
    }

    #[test]
    fn incar_parser_never_panics_on_taggy_input(
        lines in prop::collection::vec(
            ("[A-Z]{2,12}", "[ -~]{0,20}"),
            0..12
        )
    ) {
        let text: String = lines
            .iter()
            .map(|(t, v)| format!("{t} = {v}\n"))
            .collect();
        let _ = parse_incar(&text);
    }

    #[test]
    fn valid_incar_round_trips(
        nelm in 1usize..200,
        nbands in 1usize..4096,
        encut in 100.0f64..900.0,
        nsim in 1usize..16,
    ) {
        let text = format!(
            "NELM = {nelm}\nNBANDS = {nbands}\nENCUT = {encut}\nNSIM = {nsim}\n"
        );
        let deck = parse_incar(&text).expect("valid deck").deck;
        prop_assert_eq!(deck.nelm, nelm);
        prop_assert_eq!(deck.nbands, Some(nbands));
        prop_assert_eq!(deck.nsim, nsim);
        prop_assert!((deck.encut_ev.unwrap() - encut).abs() < 1e-9);
    }

    #[test]
    fn valid_poscar_counts_round_trip(
        counts in prop::collection::vec(1usize..300, 1..3),
        lat in 5.0f64..40.0,
    ) {
        let species = ["Si", "O", "Cu"];
        let names: Vec<&str> = species.iter().take(counts.len()).copied().collect();
        let text = format!(
            "fuzzed\n1.0\n{lat} 0 0\n0 {lat} 0\n0 0 {lat}\n{}\n{}\nDirect\n",
            names.join(" "),
            counts.iter().map(ToString::to_string).collect::<Vec<_>>().join(" ")
        );
        let cell = parse_poscar(&text).expect("valid structure");
        prop_assert_eq!(cell.n_ions(), counts.iter().sum::<usize>());
    }

    #[test]
    fn valid_kpoints_round_trip(mesh in prop::collection::vec(1usize..12, 3)) {
        let text = format!(
            "mesh\n0\nGamma\n{} {} {}\n",
            mesh[0], mesh[1], mesh[2]
        );
        let got = parse_kpoints(&text).expect("valid mesh");
        prop_assert_eq!(got.to_vec(), mesh);
    }
}
