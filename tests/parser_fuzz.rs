//! Robustness properties of the VASP-format parsers: arbitrary input must
//! never panic, and valid input must round-trip. Driven by the in-tree
//! property harness; `any_string` salts printable ASCII with newlines,
//! control bytes and multi-byte unicode so the parsers see hostile input.

use vasp_power_profiles::dft::{parse_incar, parse_kpoints, parse_poscar};
use vpp_substrate::prop::{any_string, printable_string, upper_string, usize_in};
use vpp_substrate::properties;

properties! {
    fn incar_parser_never_panics(rng) {
        // Any outcome is fine; panicking is not.
        let _ = parse_incar(&any_string(rng, 400));
    }

    fn kpoints_parser_never_panics(rng) {
        let _ = parse_kpoints(&any_string(rng, 200));
    }

    fn poscar_parser_never_panics(rng) {
        let _ = parse_poscar(&any_string(rng, 400));
    }

    fn incar_parser_never_panics_on_taggy_input(rng) {
        let n_lines = rng.index(12);
        let text: String = (0..n_lines)
            .map(|_| {
                let tag = upper_string(rng, 2, 12);
                let value = printable_string(rng, 20);
                format!("{tag} = {value}\n")
            })
            .collect();
        let _ = parse_incar(&text);
    }

    fn valid_incar_round_trips(rng) {
        let nelm = usize_in(rng, 1, 200);
        let nbands = usize_in(rng, 1, 4096);
        let encut = rng.uniform(100.0, 900.0);
        let nsim = usize_in(rng, 1, 16);
        let text = format!(
            "NELM = {nelm}\nNBANDS = {nbands}\nENCUT = {encut}\nNSIM = {nsim}\n"
        );
        let deck = parse_incar(&text).expect("valid deck").deck;
        assert_eq!(deck.nelm, nelm);
        assert_eq!(deck.nbands, Some(nbands));
        assert_eq!(deck.nsim, nsim);
        assert!((deck.encut_ev.unwrap() - encut).abs() < 1e-9);
    }

    fn valid_poscar_counts_round_trip(rng) {
        let n_species = usize_in(rng, 1, 3);
        let counts: Vec<usize> = (0..n_species).map(|_| usize_in(rng, 1, 300)).collect();
        let lat = rng.uniform(5.0, 40.0);
        let species = ["Si", "O", "Cu"];
        let names: Vec<&str> = species.iter().take(counts.len()).copied().collect();
        let text = format!(
            "fuzzed\n1.0\n{lat} 0 0\n0 {lat} 0\n0 0 {lat}\n{}\n{}\nDirect\n",
            names.join(" "),
            counts.iter().map(ToString::to_string).collect::<Vec<_>>().join(" ")
        );
        let cell = parse_poscar(&text).expect("valid structure");
        assert_eq!(cell.n_ions(), counts.iter().sum::<usize>());
    }

    fn valid_kpoints_round_trip(rng) {
        let mesh: Vec<usize> = (0..3).map(|_| usize_in(rng, 1, 12)).collect();
        let text = format!(
            "mesh\n0\nGamma\n{} {} {}\n",
            mesh[0], mesh[1], mesh[2]
        );
        let got = parse_kpoints(&text).expect("valid mesh");
        assert_eq!(got.to_vec(), mesh);
    }
}
