//! Reproducibility: the entire pipeline is bit-deterministic under fixed
//! seeds, and distinct seeds model distinct physical placements.

use vasp_power_profiles::cluster::{execute, JobSpec, NetworkModel};
use vasp_power_profiles::core::{benchmarks, protocol};
use vasp_power_profiles::dft::{build_plan, CostModel, ParallelLayout};

#[test]
fn measurements_are_bit_reproducible() {
    let ctx = protocol::StudyContext::quick();
    let bench = benchmarks::b_hr105_hse();
    let a = protocol::measure(&bench, &protocol::RunConfig::nodes(1), &ctx);
    let b = protocol::measure(&bench, &protocol::RunConfig::nodes(1), &ctx);
    assert_eq!(a.runtime_s.to_bits(), b.runtime_s.to_bits());
    assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
    assert_eq!(a.node_series, b.node_series);
    assert_eq!(a.node_summary, b.node_summary);
}

#[test]
fn repeats_differ_but_modestly() {
    // The protocol's five repeats land on different fleets: runtimes and
    // powers differ slightly (that's what min-selection screens), but
    // within a few percent.
    let bench = benchmarks::pdo4();
    let plan = build_plan(
        &bench.params(),
        &ParallelLayout::nodes(1),
        &CostModel::calibrated(),
    );
    let net = NetworkModel::perlmutter();
    let runtimes: Vec<f64> = (0..5)
        .map(|rep| {
            let mut spec = JobSpec::new(1);
            spec.seed = 0xDE7E_0000 + rep;
            execute(&plan, &spec, &net).runtime_s
        })
        .collect();
    let lo = runtimes.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = runtimes.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert!(hi > lo, "fleets must differ: {runtimes:?}");
    assert!(hi / lo < 1.06, "but only a few percent: {runtimes:?}");
}

#[test]
fn experiment_results_are_stable_across_calls() {
    let ctx = protocol::StudyContext::quick();
    let a = vasp_power_profiles::core::experiments::fig02::run(&ctx);
    let b = vasp_power_profiles::core::experiments::fig02::run(&ctx);
    assert_eq!(a, b);
}

#[test]
fn seed_salt_changes_the_fleet_not_the_physics() {
    let bench = benchmarks::b_hr105_hse();
    let ctx = protocol::StudyContext::quick();
    let mut cfg1 = protocol::RunConfig::nodes(1);
    cfg1.seed_salt = 1;
    let mut cfg2 = protocol::RunConfig::nodes(1);
    cfg2.seed_salt = 2;
    let a = protocol::measure(&bench, &cfg1, &ctx);
    let b = protocol::measure(&bench, &cfg2, &ctx);
    assert_ne!(a.runtime_s.to_bits(), b.runtime_s.to_bits(), "fleets differ");
    let rel = (a.node_summary.high_mode_w - b.node_summary.high_mode_w).abs()
        / a.node_summary.high_mode_w;
    assert!(rel < 0.08, "physics must agree across fleets: {rel}");
}
