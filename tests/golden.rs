//! Golden regression pins: outputs that must never drift without an
//! intentional recalibration (in which case update the constants here and
//! `EXPERIMENTS.md` together).

use vasp_power_profiles::core::experiments::table1;

#[test]
fn table1_text_is_pinned() {
    let text = table1::run().to_string();
    // Table I is fully deterministic (derived, no simulation): pin the
    // load-bearing cells.
    for needle in [
        "Si256_hse       1020 (255)         HSE     CG (Damped)    41     640",
        "80x80x80   512000",
        "PdO4       3288 (348)   DFT (LDA)  RMM (VeryFast)    60    2048",
        "GaAsBi-64         266 (64)   DFT (GGA)   BD+RMM (Fast)    60     192",
        "4 4 4 (2)",
        "Si128_acfdtr        512 (128)   ACFDT/RPA     BD (Normal)    12     320        23506",
    ] {
        assert!(text.contains(needle), "missing: {needle}\nin:\n{text}");
    }
}

#[test]
fn table1_csv_is_pinned() {
    let csv = table1::run().csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 8, "header + 7 benchmarks");
    assert_eq!(
        lines[0],
        "benchmark,electrons,ions,functional,algo,nelm,nbands,nbandsexact,ngx,ngy,ngz,nplwv,k1,k2,k3,kpar"
    );
    assert!(lines[1].starts_with("Si256_hse,1020,255,HSE,"));
    assert!(lines[7].contains("23506"));
}

#[test]
fn suite_parameters_are_bitwise_stable() {
    // The derived parameters drive every experiment; pin their exact
    // values so silent drift in the derivation chain is caught.
    let expect: [(&str, usize, usize); 7] = [
        ("Si256_hse", 512_000, 44_609),
        ("B.hR105_hse", 110_592, 9_337),
        ("PdO4", 518_400, 44_282),
        ("PdO2", 259_200, 22_048),
        ("GaAsBi-64", 343_000, 29_248),
        ("CuC_vdw", 1_029_000, 88_164),
        ("Si128_acfdtr", 216_000, 18_352),
    ];
    for (bench, &(name, nplwv, npw)) in
        vasp_power_profiles::core::benchmarks::suite().iter().zip(&expect)
    {
        let p = bench.params();
        assert_eq!(p.name, name);
        assert_eq!(p.nplwv, nplwv, "{name} NPLWV");
        assert_eq!(p.npw, npw, "{name} NPW");
    }
}
