//! Integration tests for the multi-tenant job service: real HTTP clients
//! over `std::net::TcpStream` against a live [`serve_with`] instance
//! with a synthetic [`JobHandler`].
//!
//! The acceptance criteria this file pins:
//! - two concurrently POSTed jobs run simultaneously and record into
//!   disjoint per-session traces,
//! - `GET /jobs/<id>/trace?after=SEQ` delivers each event exactly once
//!   across chunks,
//! - a federated instance's `/metrics` parses as strict Prometheus text
//!   and carries both peers' series under `peer="..."` labels.
//!
//! Job runner threads are named `vpp-serve` like the acceptor/workers,
//! so the leak accounting here covers them too. Tests serialize on a
//! lock so thread counting cannot race another test's server.

use std::collections::BTreeSet;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use vasp_power_profiles::substrate::json::{self, Value};
use vasp_power_profiles::substrate::serve::{
    serve, serve_with, CancelToken, JobHandler, ServeConfig,
};
use vasp_power_profiles::substrate::trace;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Minimal HTTP/1.1 exchange: returns `(status, head, body)`.
fn request(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(
        s,
        "{method} {target} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header terminator");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, head.to_string(), body.to_string())
}

fn get(addr: SocketAddr, target: &str) -> (u16, String, String) {
    request(addr, "GET", target, "")
}

/// The value of one response header, if present.
fn header<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    head.lines()
        .filter_map(|l| l.split_once(": "))
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v)
}

/// POST a job spec and return its id from the 201 body.
fn submit(addr: SocketAddr, spec: &str) -> u64 {
    let (status, head, body) = request(addr, "POST", "/jobs", spec);
    assert_eq!(status, 201, "submit failed: {body}");
    assert!(header(&head, "Location").is_some(), "201 carries Location: {head}");
    let doc = json::parse(&body).expect("201 body is JSON");
    doc.get("id").and_then(Value::as_f64).expect("201 body has an id") as u64
}

/// Poll `GET /jobs/<id>` until the job reaches `state` (or panic after
/// ten seconds).
fn await_state(addr: SocketAddr, id: u64, state: &str) -> Value {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, _, body) = get(addr, &format!("/jobs/{id}"));
        assert_eq!(status, 200, "{body}");
        let doc = json::parse(&body).expect("status is JSON");
        if doc.get("state").and_then(Value::as_str) == Some(state) {
            return doc;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} never reached '{state}'; last: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A synthetic workload: `validate` demands a `tag`, `run` emits
/// `events` marks named after the tag. With `"rendezvous": true` the run
/// meets the test thread on `gate` once before emitting and once after,
/// which both proves two jobs are inside `run` simultaneously and lets
/// the test inspect a still-running job deterministically. With
/// `"await_cancel": true` the run parks until its [`CancelToken`] fires —
/// a deterministically cancellable long job.
struct TagHandler {
    gate: Arc<Barrier>,
}

impl JobHandler for TagHandler {
    fn validate(&self, spec: &Value) -> Result<Value, String> {
        spec.get("tag")
            .and_then(Value::as_str)
            .ok_or("'tag' (string) is required")?;
        Ok(spec.clone())
    }

    fn run(&self, spec: &Value, cancel: &CancelToken) -> Result<Value, String> {
        let tag = spec
            .get("tag")
            .and_then(Value::as_str)
            .ok_or("validated spec lost its tag")?
            .to_string();
        let events = spec.get("events").and_then(Value::as_f64).unwrap_or(8.0) as usize;
        let rendezvous = matches!(spec.get("rendezvous"), Some(Value::Bool(true)));
        if matches!(spec.get("await_cancel"), Some(Value::Bool(true))) {
            let deadline = Instant::now() + Duration::from_secs(10);
            while !cancel.is_canceled() {
                if Instant::now() >= deadline {
                    return Err("await_cancel job never saw its token fire".to_string());
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            return Err("stopped at the cancel checkpoint".to_string());
        }
        if rendezvous {
            self.gate.wait();
        }
        for _ in 0..events {
            match tag.as_str() {
                "alpha" => trace::mark("job.alpha"),
                "beta" => trace::mark("job.beta"),
                _ => trace::mark("job.cursor"),
            }
        }
        if rendezvous {
            self.gate.wait();
        }
        Ok(Value::Obj(vec![
            ("tag".to_string(), Value::Str(tag)),
            ("events".to_string(), Value::Num(events as f64)),
        ]))
    }
}

/// Count live threads whose comm is `vpp-serve` (acceptor, workers and
/// job runners all set it), polling briefly since joined tasks can
/// linger in procfs for a moment.
fn serve_threads_settled() -> usize {
    let count = || {
        std::fs::read_dir("/proc/self/task")
            .expect("linux procfs")
            .filter_map(Result::ok)
            .filter_map(|e| std::fs::read_to_string(e.path().join("comm")).ok())
            .filter(|c| c.trim() == "vpp-serve")
            .count()
    };
    let mut remaining = count();
    for _ in 0..200 {
        if remaining == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
        remaining = count();
    }
    remaining
}

/// Parse a jsonl trace body into `(seq, name)` pairs.
fn trace_lines(body: &str) -> Vec<(u64, String)> {
    body.lines()
        .map(|line| {
            let ev = json::parse(line).unwrap_or_else(|e| panic!("bad jsonl line '{line}': {e}"));
            (
                ev.get("seq").and_then(Value::as_f64).expect("event has a seq") as u64,
                ev.get("name")
                    .and_then(Value::as_str)
                    .expect("event has a name")
                    .to_string(),
            )
        })
        .collect()
}

/// A keep-alive HTTP client: one `TcpStream` reused for every request,
/// reading `Content-Length`-framed responses so the next exchange starts
/// exactly where the previous body ended. Reconnects — and counts it —
/// only when the server signals `Connection: close` (the per-connection
/// request cap) or the socket dies before a response.
struct Client {
    addr: SocketAddr,
    stream: TcpStream,
    reconnects: usize,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        Client {
            addr,
            stream: Client::dial(addr),
            reconnects: 0,
        }
    }

    fn dial(addr: SocketAddr) -> TcpStream {
        let s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s
    }

    fn reconnect(&mut self) {
        self.stream = Client::dial(self.addr);
        self.reconnects += 1;
    }

    fn get(&mut self, target: &str) -> (u16, String, String) {
        self.request("GET", target, "")
    }

    fn request(&mut self, method: &str, target: &str, body: &str) -> (u16, String, String) {
        let msg = format!(
            "{method} {target} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        if self.stream.write_all(msg.as_bytes()).is_err() {
            // The server hung up between exchanges (request cap landed
            // right on the previous response); it never saw this request,
            // so resending on a fresh socket cannot double-submit.
            self.reconnect();
            self.stream.write_all(msg.as_bytes()).expect("send after reconnect");
        }
        let resp = match self.read_response() {
            Some(resp) => resp,
            None => {
                self.reconnect();
                self.stream.write_all(msg.as_bytes()).expect("send after reconnect");
                self.read_response().expect("response after reconnect")
            }
        };
        if header(&resp.1, "Connection") == Some("close") {
            self.reconnect();
        }
        resp
    }

    /// One framed response, or `None` when the connection closed before
    /// a response head arrived.
    fn read_response(&mut self) -> Option<(u16, String, String)> {
        let mut buf: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 2048];
        let head_end = loop {
            if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break i + 4;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) if buf.is_empty() => return None,
                Ok(0) => panic!("connection closed mid-head: {:?}", String::from_utf8_lossy(&buf)),
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(_) if buf.is_empty() => return None,
                Err(e) => panic!("read head: {e}"),
            }
        };
        let head = String::from_utf8_lossy(&buf[..head_end - 4]).to_string();
        let len: usize = header(&head, "Content-Length")
            .expect("framed response carries Content-Length")
            .parse()
            .expect("numeric Content-Length");
        let mut body = buf[head_end..].to_vec();
        while body.len() < len {
            let n = self.stream.read(&mut chunk).expect("read body");
            assert!(n > 0, "connection closed mid-body");
            body.extend_from_slice(&chunk[..n]);
        }
        assert_eq!(body.len(), len, "read past the framed body");
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        Some((status, head, String::from_utf8_lossy(&body).to_string()))
    }
}

#[test]
fn concurrent_jobs_run_simultaneously_with_disjoint_traces() {
    let _guard = locked();
    let gate = Arc::new(Barrier::new(3)); // two jobs + this test
    let h = serve_with(
        ServeConfig::new(0)
            .max_sessions(2)
            .handler(Arc::new(TagHandler { gate: gate.clone() })),
    )
    .expect("bind ephemeral");
    let addr = h.addr();

    let a = submit(addr, r#"{"tag": "alpha", "events": 40, "rendezvous": true}"#);
    let b = submit(addr, r#"{"tag": "beta", "events": 40, "rendezvous": true}"#);
    assert_ne!(a, b);

    // Both runs are inside `run` once the first rendezvous completes, and
    // neither can finish before the second — so this snapshot must show
    // two simultaneously running sessions.
    gate.wait();
    let (_, _, listing) = get(addr, "/jobs");
    gate.wait();

    let doc = json::parse(&listing).expect("listing is JSON");
    assert_eq!(doc.get("running").and_then(Value::as_f64), Some(2.0), "{listing}");
    let Some(Value::Arr(jobs)) = doc.get("jobs") else {
        panic!("listing has a jobs array: {listing}");
    };
    for job in jobs {
        assert_eq!(job.get("state").and_then(Value::as_str), Some("running"), "{listing}");
    }

    let done_a = await_state(addr, a, "done");
    let done_b = await_state(addr, b, "done");
    assert_eq!(
        done_a.get("result").and_then(|r| r.get("tag")).and_then(Value::as_str),
        Some("alpha")
    );
    assert_eq!(
        done_b.get("result").and_then(|r| r.get("tag")).and_then(Value::as_str),
        Some("beta")
    );

    // Each session's trace holds its own 40 marks and nothing of the
    // neighbour's, even though both ran at the same time.
    for (id, own, other) in [(a, "job.alpha", "job.beta"), (b, "job.beta", "job.alpha")] {
        let (status, _, body) = get(addr, &format!("/jobs/{id}/trace?limit=4096"));
        assert_eq!(status, 200);
        let lines = trace_lines(&body);
        assert_eq!(lines.len(), 40, "job {id} trace:\n{body}");
        assert!(lines.iter().all(|(_, name)| name == own), "{body}");
        assert!(lines.iter().all(|(_, name)| name != other), "{body}");
    }

    h.shutdown();
    assert_eq!(serve_threads_settled(), 0, "job runner threads survived shutdown");
}

#[test]
fn trace_cursor_delivers_each_event_exactly_once_across_chunks() {
    let _guard = locked();
    const EVENTS: usize = 1500; // several times the default chunk size
    let gate = Arc::new(Barrier::new(2)); // the job + this test
    let h = serve_with(
        ServeConfig::new(0)
            .max_sessions(1)
            .handler(Arc::new(TagHandler { gate: gate.clone() })),
    )
    .expect("bind ephemeral");
    let addr = h.addr();

    let id = submit(
        addr,
        &format!(r#"{{"tag": "cursor", "events": {EVENTS}, "rendezvous": true}}"#),
    );
    gate.wait(); // job starts emitting; it parks on the gate again when done

    // Page through the live trace with an odd chunk size. Every chunk
    // advertises the next cursor; the union of chunks must be exactly
    // seqs 0..EVENTS with no duplicates and no holes.
    let mut after = 0u64;
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut saw_more = false;
    let deadline = Instant::now() + Duration::from_secs(10);
    while seen.len() < EVENTS && Instant::now() < deadline {
        let (status, head, body) = get(addr, &format!("/jobs/{id}/trace?after={after}&limit=257"));
        assert_eq!(status, 200, "{body}");
        for (seq, name) in trace_lines(&body) {
            assert_eq!(name, "job.cursor");
            assert!(seen.insert(seq), "seq {seq} delivered twice");
        }
        saw_more |= header(&head, "X-Vpp-More") == Some("true");
        let next: u64 = header(&head, "X-Vpp-Next-Cursor")
            .expect("chunk advertises a cursor")
            .parse()
            .expect("cursor is an integer");
        assert!(next >= after, "cursor went backwards: {next} < {after}");
        after = next;
        if body.is_empty() {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    gate.wait(); // release the job before asserting, so failures cannot deadlock shutdown

    assert_eq!(seen.len(), EVENTS, "missing events");
    assert_eq!(seen.iter().copied().collect::<Vec<_>>(), (0..EVENTS as u64).collect::<Vec<_>>());
    assert!(saw_more, "a 257-event chunk over 1500 events must set X-Vpp-More");

    let done = await_state(addr, id, "done");
    assert_eq!(
        done.get("trace").and_then(|t| t.get("admitted")).and_then(Value::as_f64),
        Some(EVENTS as f64)
    );

    // Caught up: an empty chunk that keeps the cursor and reports the
    // terminal state.
    let (status, head, body) = get(addr, &format!("/jobs/{id}/trace?after={after}"));
    assert_eq!(status, 200);
    assert!(body.is_empty(), "{body}");
    assert_eq!(header(&head, "X-Vpp-More"), Some("false"));
    assert_eq!(header(&head, "X-Vpp-Job-State"), Some("done"));

    // Strict query parsing guards the cursor protocol: unknown keys and
    // malformed cursors are client errors, not shrugs.
    let (status, _, body) = get(addr, &format!("/jobs/{id}/trace?cursor=5"));
    assert_eq!(status, 400, "{body}");
    let (status, _, body) = get(addr, &format!("/jobs/{id}/trace?after=x"));
    assert_eq!(status, 400, "{body}");

    h.shutdown();
}

#[test]
fn queued_jobs_wait_for_a_session_and_then_run() {
    let _guard = locked();
    let gate = Arc::new(Barrier::new(2)); // the first job + this test
    let h = serve_with(
        ServeConfig::new(0)
            .max_sessions(1)
            .handler(Arc::new(TagHandler { gate: gate.clone() })),
    )
    .expect("bind ephemeral");
    let addr = h.addr();

    let first = submit(addr, r#"{"tag": "alpha", "events": 4, "rendezvous": true}"#);
    let second = submit(addr, r#"{"tag": "beta", "events": 4}"#);

    // One session: while the first job holds it at the rendezvous, the
    // second must be queued, not running.
    gate.wait();
    let (_, _, listing) = get(addr, "/jobs");
    let (_, _, queued_status) = get(addr, &format!("/jobs/{second}"));
    gate.wait();

    let doc = json::parse(&listing).expect("listing is JSON");
    assert_eq!(doc.get("running").and_then(Value::as_f64), Some(1.0), "{listing}");
    assert_eq!(doc.get("queued").and_then(Value::as_f64), Some(1.0), "{listing}");
    let queued = json::parse(&queued_status).expect("status is JSON");
    assert_eq!(queued.get("state").and_then(Value::as_str), Some("queued"));

    await_state(addr, first, "done");
    await_state(addr, second, "done");

    // Invalid submissions are rejected up front and never enter the queue.
    let (status, _, body) = request(addr, "POST", "/jobs", r#"{"no_tag": 1}"#);
    assert_eq!(status, 400, "{body}");
    let (status, _, body) = request(addr, "POST", "/jobs", "not json");
    assert_eq!(status, 400, "{body}");
    let (_, _, listing) = get(addr, "/jobs");
    let doc = json::parse(&listing).expect("listing is JSON");
    let Some(Value::Arr(jobs)) = doc.get("jobs") else {
        panic!("listing has a jobs array: {listing}");
    };
    assert_eq!(jobs.len(), 2, "rejected specs must not be registered: {listing}");

    h.shutdown();
    assert_eq!(serve_threads_settled(), 0, "job runner threads survived shutdown");
}

#[test]
fn one_keep_alive_connection_covers_submit_poll_cancel_and_eviction() {
    let _guard = locked();
    let gate = Arc::new(Barrier::new(1)); // unused: no rendezvous jobs here
    let h = serve_with(
        ServeConfig::new(0)
            .max_sessions(1)
            .job_ttl(Some(Duration::from_millis(250)))
            .handler(Arc::new(TagHandler { gate })),
    )
    .expect("bind ephemeral");
    let mut c = Client::connect(h.addr());

    // Submit a job that parks until canceled; it takes the only session.
    let (status, head, body) =
        c.request("POST", "/jobs", r#"{"tag": "alpha", "await_cancel": true}"#);
    assert_eq!(status, 201, "{body}");
    assert_eq!(header(&head, "Connection"), Some("keep-alive"), "{head}");
    let a = json::parse(&body).unwrap().get("id").and_then(Value::as_f64).unwrap() as u64;

    // A second submission must queue behind it...
    let (status, _, body) = c.request("POST", "/jobs", r#"{"tag": "beta"}"#);
    assert_eq!(status, 201, "{body}");
    let b = json::parse(&body).unwrap().get("id").and_then(Value::as_f64).unwrap() as u64;

    // ...and cancel instantly while queued: terminal right away.
    let (status, _, body) = c.request("DELETE", &format!("/jobs/{b}"), "");
    assert_eq!(status, 200, "{body}");
    let doc = json::parse(&body).unwrap();
    assert_eq!(doc.get("state").and_then(Value::as_str), Some("canceled"), "{body}");
    let (status, _, body) = c.request("DELETE", &format!("/jobs/{b}"), "");
    assert_eq!(status, 409, "cancel of a terminal job must conflict: {body}");

    // Cancel the running job: 202 now, canceled once the handler's
    // checkpoint fires.
    let (status, _, body) = c.request("DELETE", &format!("/jobs/{a}"), "");
    assert_eq!(status, 202, "{body}");
    let doc = json::parse(&body).unwrap();
    assert_eq!(doc.get("cancel_requested"), Some(&Value::Bool(true)), "{body}");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, _, body) = c.get(&format!("/jobs/{a}"));
        assert_eq!(status, 200, "{body}");
        let doc = json::parse(&body).unwrap();
        match doc.get("state").and_then(Value::as_str) {
            Some("canceled") => break,
            other => assert!(
                Instant::now() < deadline,
                "job {a} stuck in {other:?}: {body}"
            ),
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let (status, _, _) = c.request("DELETE", &format!("/jobs/{a}"), "");
    assert_eq!(status, 409);

    // The freed session runs a fresh job; cursor-poll its whole trace
    // over the same socket.
    let (status, _, body) = c.request("POST", "/jobs", r#"{"tag": "cursor", "events": 30}"#);
    assert_eq!(status, 201, "{body}");
    let d = json::parse(&body).unwrap().get("id").and_then(Value::as_f64).unwrap() as u64;
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut after = 0u64;
    let mut seen = 0usize;
    loop {
        let (status, head, body) = c.get(&format!("/jobs/{d}/trace?after={after}&limit=16"));
        assert_eq!(status, 200, "{body}");
        for (i, (seq, name)) in trace_lines(&body).into_iter().enumerate() {
            assert_eq!(seq, after + i as u64, "chunks are contiguous from the cursor");
            assert_eq!(name, "job.cursor");
        }
        seen += body.lines().count();
        after = header(&head, "X-Vpp-Next-Cursor").unwrap().parse().unwrap();
        let more = header(&head, "X-Vpp-More") == Some("true");
        let state = header(&head, "X-Vpp-Job-State").unwrap().to_string();
        if seen >= 30 && !more && state == "done" {
            break;
        }
        assert!(Instant::now() < deadline, "trace never drained: seen {seen}, state {state}");
        if body.is_empty() {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    assert_eq!(seen, 30, "every event exactly once");

    // Everything above rode one connection.
    assert_eq!(c.reconnects, 0, "the whole walkthrough must fit one keep-alive connection");

    // TTL eviction: the canceled job ages out and its id answers 410
    // (requests themselves drive the sweep).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, _, body) = c.get(&format!("/jobs/{b}"));
        if status == 410 {
            assert!(body.contains("evicted"), "{body}");
            assert!(
                body.contains("\"error\": \"Gone\""),
                "structured error shape: {body}"
            );
            break;
        }
        assert_eq!(status, 200, "{body}");
        assert!(Instant::now() < deadline, "job {b} never evicted: {body}");
        std::thread::sleep(Duration::from_millis(20));
    }
    let (status, _, body) = c.get("/metrics");
    assert_eq!(status, 200);
    let evicted = body
        .lines()
        .find_map(|l| l.strip_prefix("vpp_serve_jobs_evicted_total "))
        .expect("exposition carries vpp_serve_jobs_evicted_total")
        .parse::<f64>()
        .unwrap();
    assert!(evicted >= 1.0, "{body}");
    // The pre-rename `vpp_serve_jobs_evicted` alias has completed its
    // one-release deprecation window: only the `_total` name is exposed.
    assert!(
        !body.lines().any(|l| l.starts_with("vpp_serve_jobs_evicted ")),
        "removed alias vpp_serve_jobs_evicted resurfaced"
    );
    let canceled = body
        .lines()
        .find_map(|l| l.strip_prefix("vpp_serve_jobs_canceled_total "))
        .expect("exposition carries vpp_serve_jobs_canceled_total")
        .parse::<f64>()
        .unwrap();
    assert_eq!(canceled, 2.0, "one queued + one running cancel");

    h.shutdown();
    assert_eq!(serve_threads_settled(), 0, "job runner threads survived shutdown");
}

#[test]
fn full_queue_answers_429_with_retry_after() {
    let _guard = locked();
    let gate = Arc::new(Barrier::new(2)); // the gated job + this test
    let h = serve_with(
        ServeConfig::new(0)
            .max_sessions(1)
            .max_queue(1)
            .handler(Arc::new(TagHandler { gate: gate.clone() })),
    )
    .expect("bind ephemeral");
    let addr = h.addr();

    // One job holds the session at its rendezvous, one fills the queue.
    let first = submit(addr, r#"{"tag": "alpha", "events": 4, "rendezvous": true}"#);
    let second = submit(addr, r#"{"tag": "beta", "events": 4}"#);

    // The queue is at its bound: the next submission is refused with
    // backpressure, not queued.
    let mark = trace::log_stats().next_seq;
    let (status, head, body) = request(addr, "POST", "/jobs", r#"{"tag": "gamma"}"#);
    assert_eq!(status, 429, "{body}");
    assert_eq!(header(&head, "Retry-After"), Some("1"), "{head}");
    assert!(body.contains("queue is full"), "{body}");

    // The refusal leaves a structured warn in the journal, fetchable
    // over HTTP with cursor + severity filtering.
    let (status, _, journal) = get(addr, &format!("/logs?after={mark}&level=warn"));
    assert_eq!(status, 200);
    assert!(
        journal
            .lines()
            .any(|l| l.contains("serve.jobs") && l.contains("queue full")),
        "429 left no warn record in /logs: {journal}"
    );

    // Nothing was registered for the refused submission.
    let (_, _, listing) = get(addr, "/jobs");
    let doc = json::parse(&listing).unwrap();
    let Some(Value::Arr(jobs)) = doc.get("jobs") else {
        panic!("listing has a jobs array: {listing}");
    };
    assert_eq!(jobs.len(), 2, "{listing}");

    // Release the gate: both admitted jobs complete, and a retry of the
    // refused submission now lands.
    gate.wait();
    gate.wait();
    await_state(addr, first, "done");
    await_state(addr, second, "done");
    let third = submit(addr, r#"{"tag": "gamma"}"#);
    await_state(addr, third, "done");

    h.shutdown();
    assert_eq!(serve_threads_settled(), 0, "job runner threads survived shutdown");
}

#[test]
fn soak_500_short_jobs_with_short_ttl_keeps_the_registry_bounded() {
    let _guard = locked();
    const JOBS: usize = 500;
    let gate = Arc::new(Barrier::new(2)); // the plug job + this test
    let h = serve_with(
        ServeConfig::new(0)
            .max_sessions(1)
            .max_queue(8)
            .job_ttl(Some(Duration::from_secs(1)))
            .handler(Arc::new(TagHandler { gate: gate.clone() })),
    )
    .expect("bind ephemeral");
    let mut c = Client::connect(h.addr());

    // Plug the only session at the rendezvous so the queue genuinely
    // fills: the soak must see real 429s, not a lucky drain.
    let (status, _, _) = c.request("POST", "/jobs", r#"{"tag": "alpha", "rendezvous": true}"#);
    assert_eq!(status, 201);
    let mut rejected = 0usize;
    let mut accepted = 1usize; // the plug
    let mut released = false;
    while accepted < JOBS {
        let (status, _, body) = c.request("POST", "/jobs", r#"{"tag": "beta", "events": 2}"#);
        match status {
            201 => accepted += 1,
            429 => {
                rejected += 1;
                if !released {
                    // Queue proven full under backpressure; unplug and
                    // let the soak throughput come from real drains.
                    gate.wait();
                    gate.wait();
                    released = true;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            other => panic!("submission answered {other}: {body}"),
        }
    }
    assert!(rejected > 0, "a bounded queue must refuse at least once");

    // Drain: every job terminal, then every job evicted by the 1 s TTL.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, _, body) = c.get("/jobs");
        assert_eq!(status, 200);
        let doc = json::parse(&body).unwrap();
        let Some(Value::Arr(jobs)) = doc.get("jobs") else {
            panic!("listing has a jobs array: {body}");
        };
        // Bounded at every poll: live entries never exceed the working
        // set (sessions + queue) plus terminal jobs younger than the TTL.
        if jobs.is_empty() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "registry never drained: {} entries left",
            jobs.len()
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    let (status, _, body) = c.get("/metrics");
    assert_eq!(status, 200);
    let evicted = body
        .lines()
        .find_map(|l| l.strip_prefix("vpp_serve_jobs_evicted_total "))
        .expect("exposition carries vpp_serve_jobs_evicted_total")
        .parse::<f64>()
        .unwrap();
    assert_eq!(evicted, JOBS as f64, "every accepted job must age out");
    let submitted = body
        .lines()
        .find_map(|l| l.strip_prefix("vpp_serve_jobs_submitted_total "))
        .expect("exposition carries vpp_serve_jobs_submitted_total")
        .parse::<f64>()
        .unwrap();
    assert_eq!(submitted, JOBS as f64, "429s must not count as submissions");

    h.shutdown();
    assert_eq!(serve_threads_settled(), 0, "job runner threads survived shutdown");
}

#[test]
fn federated_metrics_carry_both_peers_series() {
    let _guard = locked();
    let peer1 = serve(0).expect("bind peer 1");
    let peer2 = serve(0).expect("bind peer 2");
    let fed = serve_with(
        ServeConfig::new(0).federate(vec![peer1.addr().to_string(), peer2.addr().to_string()]),
    )
    .expect("bind federated instance");

    let (status, _, body) = get(fed.addr(), "/metrics");
    assert_eq!(status, 200);

    // Strict pass over the merged exposition: every sample parses and
    // follows its family's # TYPE declaration exactly once.
    let mut typed: Vec<String> = Vec::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let name = rest.split_whitespace().next().expect("type line names a metric");
            assert!(
                !typed.iter().any(|t| t == name),
                "family declared twice in the merge: {line}"
            );
            typed.push(name.to_string());
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (name_and_labels, value) = line.rsplit_once(' ').expect("sample line");
        let name = name_and_labels.split('{').next().expect("metric name");
        assert!(value.parse::<f64>().is_ok(), "sample value is not a float: {line}");
        assert!(
            typed.iter().any(|t| name == t || name.starts_with(t.as_str())),
            "sample before its # TYPE declaration: {line}"
        );
    }

    // Both peers were scraped and their series are distinguishable by the
    // peer label; the federating instance's own series stay unlabelled.
    for peer in [&peer1, &peer2] {
        let label = format!("peer=\"{}\"", peer.addr());
        assert!(
            body.contains(&format!("vpp_federate_peer_up{{{label}}} 1")),
            "missing peer-up for {label}:\n{body}"
        );
        assert!(
            body.contains(&format!("vpp_up{{{label}}} 1")),
            "missing relabelled vpp_up for {label}:\n{body}"
        );
    }
    assert!(body.contains("\nvpp_up 1\n"), "own unlabelled vpp_up survives the merge");

    // An unreachable peer degrades to peer_up 0 instead of failing the
    // whole exposition.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve a port");
        l.local_addr().expect("local addr")
    };
    let fed2 = serve_with(ServeConfig::new(0).federate(vec![dead.to_string()]))
        .expect("bind second federated instance");
    let (status, _, body) = get(fed2.addr(), "/metrics");
    assert_eq!(status, 200);
    assert!(
        body.contains(&format!("vpp_federate_peer_up{{peer=\"{dead}\"}} 0")),
        "{body}"
    );

    fed2.shutdown();
    fed.shutdown();
    peer2.shutdown();
    peer1.shutdown();
}
