//! Integration tests for the multi-tenant job service: real HTTP clients
//! over `std::net::TcpStream` against a live [`serve_with`] instance
//! with a synthetic [`JobHandler`].
//!
//! The acceptance criteria this file pins:
//! - two concurrently POSTed jobs run simultaneously and record into
//!   disjoint per-session traces,
//! - `GET /jobs/<id>/trace?after=SEQ` delivers each event exactly once
//!   across chunks,
//! - a federated instance's `/metrics` parses as strict Prometheus text
//!   and carries both peers' series under `peer="..."` labels.
//!
//! Job runner threads are named `vpp-serve` like the acceptor/workers,
//! so the leak accounting here covers them too. Tests serialize on a
//! lock so thread counting cannot race another test's server.

use std::collections::BTreeSet;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use vasp_power_profiles::substrate::json::{self, Value};
use vasp_power_profiles::substrate::serve::{serve, serve_with, JobHandler, ServeConfig};
use vasp_power_profiles::substrate::trace;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Minimal HTTP/1.1 exchange: returns `(status, head, body)`.
fn request(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(
        s,
        "{method} {target} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header terminator");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, head.to_string(), body.to_string())
}

fn get(addr: SocketAddr, target: &str) -> (u16, String, String) {
    request(addr, "GET", target, "")
}

/// The value of one response header, if present.
fn header<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    head.lines()
        .filter_map(|l| l.split_once(": "))
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v)
}

/// POST a job spec and return its id from the 201 body.
fn submit(addr: SocketAddr, spec: &str) -> u64 {
    let (status, head, body) = request(addr, "POST", "/jobs", spec);
    assert_eq!(status, 201, "submit failed: {body}");
    assert!(header(&head, "Location").is_some(), "201 carries Location: {head}");
    let doc = json::parse(&body).expect("201 body is JSON");
    doc.get("id").and_then(Value::as_f64).expect("201 body has an id") as u64
}

/// Poll `GET /jobs/<id>` until the job reaches `state` (or panic after
/// ten seconds).
fn await_state(addr: SocketAddr, id: u64, state: &str) -> Value {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, _, body) = get(addr, &format!("/jobs/{id}"));
        assert_eq!(status, 200, "{body}");
        let doc = json::parse(&body).expect("status is JSON");
        if doc.get("state").and_then(Value::as_str) == Some(state) {
            return doc;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} never reached '{state}'; last: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A synthetic workload: `validate` demands a `tag`, `run` emits
/// `events` marks named after the tag. With `"rendezvous": true` the run
/// meets the test thread on `gate` once before emitting and once after,
/// which both proves two jobs are inside `run` simultaneously and lets
/// the test inspect a still-running job deterministically.
struct TagHandler {
    gate: Arc<Barrier>,
}

impl JobHandler for TagHandler {
    fn validate(&self, spec: &Value) -> Result<Value, String> {
        spec.get("tag")
            .and_then(Value::as_str)
            .ok_or("'tag' (string) is required")?;
        Ok(spec.clone())
    }

    fn run(&self, spec: &Value) -> Result<Value, String> {
        let tag = spec
            .get("tag")
            .and_then(Value::as_str)
            .ok_or("validated spec lost its tag")?
            .to_string();
        let events = spec.get("events").and_then(Value::as_f64).unwrap_or(8.0) as usize;
        let rendezvous = matches!(spec.get("rendezvous"), Some(Value::Bool(true)));
        if rendezvous {
            self.gate.wait();
        }
        for _ in 0..events {
            match tag.as_str() {
                "alpha" => trace::mark("job.alpha"),
                "beta" => trace::mark("job.beta"),
                _ => trace::mark("job.cursor"),
            }
        }
        if rendezvous {
            self.gate.wait();
        }
        Ok(Value::Obj(vec![
            ("tag".to_string(), Value::Str(tag)),
            ("events".to_string(), Value::Num(events as f64)),
        ]))
    }
}

/// Count live threads whose comm is `vpp-serve` (acceptor, workers and
/// job runners all set it), polling briefly since joined tasks can
/// linger in procfs for a moment.
fn serve_threads_settled() -> usize {
    let count = || {
        std::fs::read_dir("/proc/self/task")
            .expect("linux procfs")
            .filter_map(Result::ok)
            .filter_map(|e| std::fs::read_to_string(e.path().join("comm")).ok())
            .filter(|c| c.trim() == "vpp-serve")
            .count()
    };
    let mut remaining = count();
    for _ in 0..200 {
        if remaining == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
        remaining = count();
    }
    remaining
}

/// Parse a jsonl trace body into `(seq, name)` pairs.
fn trace_lines(body: &str) -> Vec<(u64, String)> {
    body.lines()
        .map(|line| {
            let ev = json::parse(line).unwrap_or_else(|e| panic!("bad jsonl line '{line}': {e}"));
            (
                ev.get("seq").and_then(Value::as_f64).expect("event has a seq") as u64,
                ev.get("name")
                    .and_then(Value::as_str)
                    .expect("event has a name")
                    .to_string(),
            )
        })
        .collect()
}

#[test]
fn concurrent_jobs_run_simultaneously_with_disjoint_traces() {
    let _guard = locked();
    let gate = Arc::new(Barrier::new(3)); // two jobs + this test
    let h = serve_with(
        ServeConfig::new(0)
            .max_sessions(2)
            .handler(Arc::new(TagHandler { gate: gate.clone() })),
    )
    .expect("bind ephemeral");
    let addr = h.addr();

    let a = submit(addr, r#"{"tag": "alpha", "events": 40, "rendezvous": true}"#);
    let b = submit(addr, r#"{"tag": "beta", "events": 40, "rendezvous": true}"#);
    assert_ne!(a, b);

    // Both runs are inside `run` once the first rendezvous completes, and
    // neither can finish before the second — so this snapshot must show
    // two simultaneously running sessions.
    gate.wait();
    let (_, _, listing) = get(addr, "/jobs");
    gate.wait();

    let doc = json::parse(&listing).expect("listing is JSON");
    assert_eq!(doc.get("running").and_then(Value::as_f64), Some(2.0), "{listing}");
    let Some(Value::Arr(jobs)) = doc.get("jobs") else {
        panic!("listing has a jobs array: {listing}");
    };
    for job in jobs {
        assert_eq!(job.get("state").and_then(Value::as_str), Some("running"), "{listing}");
    }

    let done_a = await_state(addr, a, "done");
    let done_b = await_state(addr, b, "done");
    assert_eq!(
        done_a.get("result").and_then(|r| r.get("tag")).and_then(Value::as_str),
        Some("alpha")
    );
    assert_eq!(
        done_b.get("result").and_then(|r| r.get("tag")).and_then(Value::as_str),
        Some("beta")
    );

    // Each session's trace holds its own 40 marks and nothing of the
    // neighbour's, even though both ran at the same time.
    for (id, own, other) in [(a, "job.alpha", "job.beta"), (b, "job.beta", "job.alpha")] {
        let (status, _, body) = get(addr, &format!("/jobs/{id}/trace?limit=4096"));
        assert_eq!(status, 200);
        let lines = trace_lines(&body);
        assert_eq!(lines.len(), 40, "job {id} trace:\n{body}");
        assert!(lines.iter().all(|(_, name)| name == own), "{body}");
        assert!(lines.iter().all(|(_, name)| name != other), "{body}");
    }

    h.shutdown();
    assert_eq!(serve_threads_settled(), 0, "job runner threads survived shutdown");
}

#[test]
fn trace_cursor_delivers_each_event_exactly_once_across_chunks() {
    let _guard = locked();
    const EVENTS: usize = 1500; // several times the default chunk size
    let gate = Arc::new(Barrier::new(2)); // the job + this test
    let h = serve_with(
        ServeConfig::new(0)
            .max_sessions(1)
            .handler(Arc::new(TagHandler { gate: gate.clone() })),
    )
    .expect("bind ephemeral");
    let addr = h.addr();

    let id = submit(
        addr,
        &format!(r#"{{"tag": "cursor", "events": {EVENTS}, "rendezvous": true}}"#),
    );
    gate.wait(); // job starts emitting; it parks on the gate again when done

    // Page through the live trace with an odd chunk size. Every chunk
    // advertises the next cursor; the union of chunks must be exactly
    // seqs 0..EVENTS with no duplicates and no holes.
    let mut after = 0u64;
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut saw_more = false;
    let deadline = Instant::now() + Duration::from_secs(10);
    while seen.len() < EVENTS && Instant::now() < deadline {
        let (status, head, body) = get(addr, &format!("/jobs/{id}/trace?after={after}&limit=257"));
        assert_eq!(status, 200, "{body}");
        for (seq, name) in trace_lines(&body) {
            assert_eq!(name, "job.cursor");
            assert!(seen.insert(seq), "seq {seq} delivered twice");
        }
        saw_more |= header(&head, "X-Vpp-More") == Some("true");
        let next: u64 = header(&head, "X-Vpp-Next-Cursor")
            .expect("chunk advertises a cursor")
            .parse()
            .expect("cursor is an integer");
        assert!(next >= after, "cursor went backwards: {next} < {after}");
        after = next;
        if body.is_empty() {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    gate.wait(); // release the job before asserting, so failures cannot deadlock shutdown

    assert_eq!(seen.len(), EVENTS, "missing events");
    assert_eq!(seen.iter().copied().collect::<Vec<_>>(), (0..EVENTS as u64).collect::<Vec<_>>());
    assert!(saw_more, "a 257-event chunk over 1500 events must set X-Vpp-More");

    let done = await_state(addr, id, "done");
    assert_eq!(
        done.get("trace").and_then(|t| t.get("admitted")).and_then(Value::as_f64),
        Some(EVENTS as f64)
    );

    // Caught up: an empty chunk that keeps the cursor and reports the
    // terminal state.
    let (status, head, body) = get(addr, &format!("/jobs/{id}/trace?after={after}"));
    assert_eq!(status, 200);
    assert!(body.is_empty(), "{body}");
    assert_eq!(header(&head, "X-Vpp-More"), Some("false"));
    assert_eq!(header(&head, "X-Vpp-Job-State"), Some("done"));

    // Strict query parsing guards the cursor protocol: unknown keys and
    // malformed cursors are client errors, not shrugs.
    let (status, _, body) = get(addr, &format!("/jobs/{id}/trace?cursor=5"));
    assert_eq!(status, 400, "{body}");
    let (status, _, body) = get(addr, &format!("/jobs/{id}/trace?after=x"));
    assert_eq!(status, 400, "{body}");

    h.shutdown();
}

#[test]
fn queued_jobs_wait_for_a_session_and_then_run() {
    let _guard = locked();
    let gate = Arc::new(Barrier::new(2)); // the first job + this test
    let h = serve_with(
        ServeConfig::new(0)
            .max_sessions(1)
            .handler(Arc::new(TagHandler { gate: gate.clone() })),
    )
    .expect("bind ephemeral");
    let addr = h.addr();

    let first = submit(addr, r#"{"tag": "alpha", "events": 4, "rendezvous": true}"#);
    let second = submit(addr, r#"{"tag": "beta", "events": 4}"#);

    // One session: while the first job holds it at the rendezvous, the
    // second must be queued, not running.
    gate.wait();
    let (_, _, listing) = get(addr, "/jobs");
    let (_, _, queued_status) = get(addr, &format!("/jobs/{second}"));
    gate.wait();

    let doc = json::parse(&listing).expect("listing is JSON");
    assert_eq!(doc.get("running").and_then(Value::as_f64), Some(1.0), "{listing}");
    assert_eq!(doc.get("queued").and_then(Value::as_f64), Some(1.0), "{listing}");
    let queued = json::parse(&queued_status).expect("status is JSON");
    assert_eq!(queued.get("state").and_then(Value::as_str), Some("queued"));

    await_state(addr, first, "done");
    await_state(addr, second, "done");

    // Invalid submissions are rejected up front and never enter the queue.
    let (status, _, body) = request(addr, "POST", "/jobs", r#"{"no_tag": 1}"#);
    assert_eq!(status, 400, "{body}");
    let (status, _, body) = request(addr, "POST", "/jobs", "not json");
    assert_eq!(status, 400, "{body}");
    let (_, _, listing) = get(addr, "/jobs");
    let doc = json::parse(&listing).expect("listing is JSON");
    let Some(Value::Arr(jobs)) = doc.get("jobs") else {
        panic!("listing has a jobs array: {listing}");
    };
    assert_eq!(jobs.len(), 2, "rejected specs must not be registered: {listing}");

    h.shutdown();
    assert_eq!(serve_threads_settled(), 0, "job runner threads survived shutdown");
}

#[test]
fn federated_metrics_carry_both_peers_series() {
    let _guard = locked();
    let peer1 = serve(0).expect("bind peer 1");
    let peer2 = serve(0).expect("bind peer 2");
    let fed = serve_with(
        ServeConfig::new(0).federate(vec![peer1.addr().to_string(), peer2.addr().to_string()]),
    )
    .expect("bind federated instance");

    let (status, _, body) = get(fed.addr(), "/metrics");
    assert_eq!(status, 200);

    // Strict pass over the merged exposition: every sample parses and
    // follows its family's # TYPE declaration exactly once.
    let mut typed: Vec<String> = Vec::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let name = rest.split_whitespace().next().expect("type line names a metric");
            assert!(
                !typed.iter().any(|t| t == name),
                "family declared twice in the merge: {line}"
            );
            typed.push(name.to_string());
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (name_and_labels, value) = line.rsplit_once(' ').expect("sample line");
        let name = name_and_labels.split('{').next().expect("metric name");
        assert!(value.parse::<f64>().is_ok(), "sample value is not a float: {line}");
        assert!(
            typed.iter().any(|t| name == t || name.starts_with(t.as_str())),
            "sample before its # TYPE declaration: {line}"
        );
    }

    // Both peers were scraped and their series are distinguishable by the
    // peer label; the federating instance's own series stay unlabelled.
    for peer in [&peer1, &peer2] {
        let label = format!("peer=\"{}\"", peer.addr());
        assert!(
            body.contains(&format!("vpp_federate_peer_up{{{label}}} 1")),
            "missing peer-up for {label}:\n{body}"
        );
        assert!(
            body.contains(&format!("vpp_up{{{label}}} 1")),
            "missing relabelled vpp_up for {label}:\n{body}"
        );
    }
    assert!(body.contains("\nvpp_up 1\n"), "own unlabelled vpp_up survives the merge");

    // An unreachable peer degrades to peer_up 0 instead of failing the
    // whole exposition.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve a port");
        l.local_addr().expect("local addr")
    };
    let fed2 = serve_with(ServeConfig::new(0).federate(vec![dead.to_string()]))
        .expect("bind second federated instance");
    let (status, _, body) = get(fed2.addr(), "/metrics");
    assert_eq!(status, 200);
    assert!(
        body.contains(&format!("vpp_federate_peer_up{{peer=\"{dead}\"}} 0")),
        "{body}"
    );

    fed2.shutdown();
    fed.shutdown();
    peer2.shutdown();
    peer1.shutdown();
}
