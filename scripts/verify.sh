#!/usr/bin/env sh
# Hermetic verification: offline release build, full test suite, and a
# smoke-mode bench run that refreshes BENCH_results.json at the repo root.
#
# No network, no external crates — the workspace is std-only.
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$ROOT"

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets --offline --workspace -- -D warnings

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> fault-injection smoke (examples/dirty_telemetry)"
cargo run -q --release --offline --example dirty_telemetry

echo "==> trace smoke (vpp trace B.hR105_hse --quick)"
cargo run -q --release --offline --bin vpp -- trace B.hR105_hse --quick

echo "==> JSON round-trip property (256 cases)"
VPP_PROP_CASES=256 cargo test -q --offline -p vpp-substrate --test json_roundtrip

echo "==> smoke bench (VPP_BENCH_SMOKE=1) -> BENCH_results.json"
VPP_BENCH_SMOKE=1 VPP_BENCH_OUT="$ROOT/BENCH_results.json" \
    cargo bench -q --offline -p vpp-bench

echo "==> BENCH_results.json comparisons:"
grep -A4 -E '"name": "(.*_before_after|des_.*)"' "$ROOT/BENCH_results.json" \
    | grep -E '"name"|"speedup"|"drift"' || true

echo "==> Harness::compare drift bound (worse first/second-half shift of either leg)"
MAX_DRIFT=$(sed -n 's/.*"drift": \([0-9.eE+-]*\).*/\1/p' "$ROOT/BENCH_results.json" \
    | sort -g | tail -n 1)
if [ -n "$MAX_DRIFT" ]; then
    awk -v d="$MAX_DRIFT" 'BEGIN {
        printf "    max drift across comparisons: +/-%.1f%%\n", d * 100
        printf "    (speedups above are only as trustworthy as this is small)\n"
    }'
    awk -v d="$MAX_DRIFT" 'BEGIN { exit !(d <= 0.25) }' || \
        echo "    WARNING: host drifted more than +/-25% mid-bench; re-run on a quieter machine before trusting speedups"
else
    echo "verify: FAIL — no comparison in BENCH_results.json carries a drift bound" >&2
    exit 1
fi

echo "==> DES acceptance: calendar queue >= 3x heap at 1e6 pending (measured ~8x; floor guards regressions through CI noise)"
DES_SPEEDUP=$(grep -A4 '"name": "des_throughput_1e6"' "$ROOT/BENCH_results.json" \
    | sed -n 's/.*"speedup": \([0-9.eE+-]*\).*/\1/p' | head -n 1)
[ -n "$DES_SPEEDUP" ] || {
    echo "verify: FAIL — des_throughput_1e6 comparison missing from BENCH_results.json" >&2
    exit 1
}
awk -v s="$DES_SPEEDUP" 'BEGIN { exit !(s >= 3.0) }' || {
    echo "verify: FAIL — des_throughput_1e6 speedup $DES_SPEEDUP below the 3x floor" >&2
    exit 1
}
echo "    des_throughput_1e6 speedup: ${DES_SPEEDUP}x"

echo "==> campaign smoke (vpp campaign --jobs 2000 --seed 7; must finish inside 60 s)"
CAMPAIGN_T0=$(date +%s)
cargo run -q --release --offline --bin vpp -- campaign --jobs 2000 --seed 7 \
    > /tmp/vpp_campaign.out
CAMPAIGN_T1=$(date +%s)
grep -q '^sweet_spot' /tmp/vpp_campaign.out || {
    echo "verify: FAIL — campaign table is missing the sweet_spot policy row" >&2
    exit 1
}
[ $((CAMPAIGN_T1 - CAMPAIGN_T0)) -le 60 ] || {
    echo "verify: FAIL — 2000-job campaign took $((CAMPAIGN_T1 - CAMPAIGN_T0)) s (> 60 s budget)" >&2
    exit 1
}

echo "==> site-budget smoke (vpp campaign --site-budget at 60% of the summed envelope)"
# 4 partitions x 40 kW = 160 kW summed; 96 kW forces contention and
# global backfill. The summary line proves no policy's peak ever
# exceeded the envelope (the ledger asserts this structurally too).
cargo run -q --release --offline --bin vpp -- campaign \
    --jobs 600 --seed 7 --partitions 4 --site-budget 96000 --policy tco \
    > /tmp/vpp_campaign_site.out
grep -q '^within budget : yes' /tmp/vpp_campaign_site.out || {
    echo "verify: FAIL — site-budget campaign peaked above its envelope" >&2
    exit 1
}
grep -q '^tco_aware' /tmp/vpp_campaign_site.out || {
    echo "verify: FAIL — --policy tco did not add the tco_aware row" >&2
    exit 1
}

echo "==> trace diff smoke: campaign re-run must match its blessed baseline"
VPP_BENCH_OUT="$ROOT/BENCH_results.json" \
    cargo run -q --release --offline --bin vpp -- trace diff campaign

echo "==> trace diff smoke: unperturbed re-run must match its baseline"
VPP_BENCH_OUT="$ROOT/BENCH_results.json" \
    cargo run -q --release --offline --bin vpp -- trace diff Si256_hse

echo "==> trace diff smoke: fabricated regression must be caught (exit 1)"
if VPP_BENCH_OUT="$ROOT/BENCH_results.json" \
    cargo run -q --release --offline --bin vpp -- \
    trace diff Si256_hse --perturb scf_iter:1.6 > /tmp/vpp_diff_perturbed.out
then
    echo "verify: FAIL — perturbed trace diff did not exit 1" >&2
    exit 1
fi
grep -q "REGRESSION — phase.scf_iter" /tmp/vpp_diff_perturbed.out || {
    echo "verify: FAIL — diff did not name phase.scf_iter as the culprit" >&2
    exit 1
}

echo "==> serve smoke: live /metrics must expose protocol.coverage"
# One worker session and a one-deep queue so the backpressure smoke
# below can force a deterministic 429 with three POSTs.
cargo run -q --release --offline --bin vpp -- \
    serve B.hR105_hse --quick --metrics-port 0 --max-sessions 1 --max-queue 1 \
    > /tmp/vpp_serve.out 2>&1 &
SERVE_PID=$!
ADDR=
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's|^serving on http://||p' /tmp/vpp_serve.out | head -n 1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || {
    echo "verify: FAIL — vpp serve never printed its address" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
}
SCRAPED=
for _ in $(seq 1 100); do
    # All scrapes ride one keep-alive connection: scrape_metrics fetches
    # every extra path over the socket of the first. The power histogram
    # fills as the executor runs, so it gates the retry loop too.
    if cargo run -q --release --offline --example scrape_metrics -- \
        "http://$ADDR/metrics" /metrics /healthz > /tmp/vpp_scrape.out 2>/dev/null \
        && grep -q '^vpp_protocol_coverage' /tmp/vpp_scrape.out \
        && grep -q '^vpp_power_watts_bucket' /tmp/vpp_scrape.out; then
        SCRAPED=1
        break
    fi
    sleep 0.2
done
[ -n "$SCRAPED" ] || {
    echo "verify: FAIL — /metrics never exposed vpp_protocol_coverage + vpp_power_watts_bucket" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
}
grep -q '^vpp_up 1' /tmp/vpp_scrape.out || {
    echo "verify: FAIL — /metrics lost the vpp_up self-series" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
}
grep -q '^vpp_serve_jobs_evicted_total' /tmp/vpp_scrape.out || {
    echo "verify: FAIL — /metrics lost the vpp_serve_jobs_evicted_total counter" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
}
grep -q '"jobs_queued"' /tmp/vpp_scrape.out || {
    echo "verify: FAIL — the keep-alive /healthz scrape went missing" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
}
grep -q '^job service : POST /jobs' /tmp/vpp_serve.out || {
    echo "verify: FAIL — serve did not announce the POST /jobs service" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
}

echo "==> backpressure smoke: a forced 429 leaves a structured warn in /logs"
# Three POSTs against one session + one queue slot: the first runs, the
# second queues, the third is refused. POSTs, the /logs fetch, and the
# metrics re-read all ride one keep-alive connection.
cargo run -q --release --offline --example scrape_metrics -- \
    "http://$ADDR/metrics" \
    'POST /jobs {"workload": "B.hR105_hse", "repeats": 16}' \
    'POST /jobs {"workload": "B.hR105_hse", "repeats": 16}' \
    'POST /jobs {"workload": "B.hR105_hse", "repeats": 16}' \
    '/logs?after=0&level=warn&limit=4096' > /tmp/vpp_429.out 2>/dev/null || {
    echo "verify: FAIL — backpressure scrape did not complete" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
}
grep -q 'HTTP 429' /tmp/vpp_429.out || {
    echo "verify: FAIL — three POSTs against a full queue produced no 429" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
}
grep -q 'queue full' /tmp/vpp_429.out || {
    echo "verify: FAIL — /logs?level=warn carries no queue-full warn record" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
}

echo "==> vpp logs smoke: the CLI cursor client sees the same warn"
cargo run -q --release --offline --bin vpp -- logs "$ADDR" --level warn \
    > /tmp/vpp_logs_cli.out 2>/dev/null || {
    echo "verify: FAIL — vpp logs against the live service failed" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
}
grep -q 'queue full' /tmp/vpp_logs_cli.out || {
    echo "verify: FAIL — vpp logs did not surface the queue-full warn" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
}

kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true

echo "verify: OK"
