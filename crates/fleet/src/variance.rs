//! Variance decomposition of the system power signal.
//!
//! The paper motivates itself (§I) with the finding — from the companion
//! NERSC study (its ref [14]) — that *"65 % of the variation in the system
//! power consumption was due to temporal variation in the power used by
//! individual jobs"*. Given a fleet outcome, this module performs that
//! decomposition: compare the true system power signal against a
//! counterfactual in which every job draws its own **mean** power for its
//! whole duration. The counterfactual retains all job-mix/scheduling
//! variation; whatever variance it lacks is, by construction, within-job
//! temporal variation.

use crate::sim::FleetOutcome;
use vpp_sim::PowerTrace;

/// The decomposition result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VarianceDecomposition {
    /// Variance of the true system power over the interval, W².
    pub total_variance_w2: f64,
    /// Variance of the job-mix counterfactual (each job at its mean), W².
    pub mix_variance_w2: f64,
    /// Fraction of total variance attributable to within-job temporal
    /// variation (`1 - mix/total`, clamped to `[0, 1]`).
    pub temporal_fraction: f64,
}

fn trace_variance(trace: &PowerTrace, dt: f64) -> f64 {
    let n = (trace.duration() / dt).floor() as usize;
    if n < 2 {
        return 0.0;
    }
    let samples: Vec<f64> = (0..n)
        .map(|i| {
            let t0 = trace.start() + i as f64 * dt;
            trace.mean_power(t0, t0 + dt)
        })
        .collect();
    let mean = samples.iter().sum::<f64>() / n as f64;
    samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64
}

/// Decompose an outcome's system-power variance, sampling at `dt` seconds.
///
/// # Panics
/// If `dt` is not positive.
#[must_use]
pub fn decompose(outcome: &FleetOutcome, idle_node_w: f64, nodes: usize, dt: f64) -> VarianceDecomposition {
    assert!(dt > 0.0, "bad sampling step {dt}");
    let total_variance_w2 = trace_variance(&outcome.system_trace, dt);

    // Counterfactual: each job contributes a flat segment at its mean node
    // power × nodes over [start, end); unallocated nodes stay at idle.
    let mut parts: Vec<PowerTrace> = Vec::with_capacity(outcome.jobs.len());
    let mut busy_changes: Vec<(f64, i64)> = Vec::new();
    for j in &outcome.jobs {
        parts.push(PowerTrace::from_segments(
            j.start_s,
            [(j.end_s - j.start_s, j.mean_node_power_w * j.nodes as f64)],
        ));
        busy_changes.push((j.start_s, j.nodes as i64));
        busy_changes.push((j.end_s, -(j.nodes as i64)));
    }
    busy_changes.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut idle = PowerTrace::new(outcome.system_trace.start());
    let mut busy = 0i64;
    let mut cursor = outcome.system_trace.start();
    for (at, delta) in busy_changes {
        if at > cursor {
            idle.push(at - cursor, (nodes as i64 - busy).max(0) as f64 * idle_node_w);
            cursor = at;
        }
        busy += delta;
    }
    if outcome.system_trace.end() > cursor {
        idle.push(
            outcome.system_trace.end() - cursor,
            (nodes as i64 - busy).max(0) as f64 * idle_node_w,
        );
    }
    let mut refs: Vec<&PowerTrace> = parts.iter().collect();
    refs.push(&idle);
    let mix = PowerTrace::sum(&refs);
    let mix_variance_w2 = trace_variance(&mix, dt);

    let temporal_fraction = if total_variance_w2 > 0.0 {
        (1.0 - mix_variance_w2 / total_variance_w2).clamp(0.0, 1.0)
    } else {
        0.0
    };
    VarianceDecomposition {
        total_variance_w2,
        mix_variance_w2,
        temporal_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate, FleetSpec, JobRequest};
    use vpp_cluster::NetworkModel;
    use vpp_dft::{build_plan, CostModel, Incar, ParallelLayout, Supercell, SystemParams, Xc};

    fn plan(xc: Xc, nelm: usize) -> vpp_dft::ScfPlan {
        let mut deck = Incar::default_deck();
        deck.nelm = nelm;
        deck.xc = xc;
        if xc == Xc::Rpa {
            deck.nbandsexact = Some(8_000);
        }
        let p = SystemParams::derive(&Supercell::silicon(128), &deck);
        build_plan(&p, &ParallelLayout::nodes(1), &CostModel::calibrated())
    }

    #[test]
    fn rpa_jobs_make_variation_mostly_temporal() {
        // ACFDT/RPA alternates a low-power CPU stage with near-TDP χ₀
        // bursts: with identical jobs back to back, the *mix* is flat and
        // nearly all variance is within-job.
        let spec = FleetSpec::new(2);
        let reqs: Vec<JobRequest> = (0..2)
            .map(|id| JobRequest {
                id,
                name: "rpa".into(),
                plan: plan(Xc::Rpa, 6),
                nodes: 1,
                arrival_s: 0.0,
                cap_w: None,
                est_node_power_w: 1500.0,
            })
            .collect();
        let out = simulate(&spec, &reqs, &NetworkModel::perlmutter());
        let d = decompose(&out, spec.idle_node_w, spec.nodes, 2.0);
        assert!(d.total_variance_w2 > 0.0);
        assert!(
            d.temporal_fraction > 0.5,
            "RPA variation is mostly within-job: {d:?}"
        );
    }

    #[test]
    fn steady_jobs_make_variation_mostly_mix() {
        // Flat-profile DFT jobs arriving at staggered times: the system
        // signal varies mostly because jobs start and stop (mix), not
        // because any job's own power moves.
        let spec = FleetSpec::new(2);
        let reqs: Vec<JobRequest> = (0..3)
            .map(|id| JobRequest {
                id,
                name: "dft".into(),
                plan: plan(Xc::Gga, 12),
                nodes: 2,
                arrival_s: id as f64 * 40.0,
                cap_w: None,
                est_node_power_w: 1100.0,
            })
            .collect();
        let out = simulate(&spec, &reqs, &NetworkModel::perlmutter());
        let d = decompose(&out, spec.idle_node_w, spec.nodes, 2.0);
        assert!(
            d.temporal_fraction < 0.6,
            "steady serialised jobs are mix-dominated: {d:?}"
        );
        assert!(d.mix_variance_w2 > 0.0);
    }

    #[test]
    fn decomposition_fractions_are_bounded() {
        let spec = FleetSpec::new(2);
        let reqs = vec![JobRequest {
            id: 0,
            name: "one".into(),
            plan: plan(Xc::Gga, 8),
            nodes: 1,
            arrival_s: 0.0,
            cap_w: None,
            est_node_power_w: 1100.0,
        }];
        let out = simulate(&spec, &reqs, &NetworkModel::perlmutter());
        let d = decompose(&out, spec.idle_node_w, spec.nodes, 1.0);
        assert!((0.0..=1.0).contains(&d.temporal_fraction));
        assert!(d.mix_variance_w2 >= 0.0);
    }
}
