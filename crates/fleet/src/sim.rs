//! The fleet simulator.

use vpp_cluster::{execute, JobSpec, NetworkModel};
use vpp_dft::ScfPlan;
use vpp_sim::PowerTrace;

/// One queued job: a pre-lowered plan plus scheduling metadata.
#[derive(Debug, Clone)]
pub struct JobRequest {
    pub id: u64,
    pub name: String,
    /// Plan lowered for exactly `nodes` nodes.
    pub plan: ScfPlan,
    pub nodes: usize,
    /// Submission time, seconds.
    pub arrival_s: f64,
    /// GPU cap the policy assigned (None = default limit).
    pub cap_w: Option<f64>,
    /// Estimated per-node power for admission control, watts.
    pub est_node_power_w: f64,
}

/// Fleet configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSpec {
    /// Nodes in the managed partition.
    pub nodes: usize,
    /// Optional facility power budget over the partition, watts
    /// (admission-time check against `est_node_power_w`).
    pub power_budget_w: Option<f64>,
    /// Fleet seed (which physical nodes each job lands on).
    pub seed: u64,
    /// Mean idle power assumed for unallocated nodes, watts.
    pub idle_node_w: f64,
    /// Facility power-usage effectiveness: total facility power =
    /// IT power × PUE (Perlmutter's liquid-cooled hall runs ≈ 1.08).
    pub pue: f64,
}

impl FleetSpec {
    /// A partition of `nodes` Perlmutter-like nodes, no budget.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0);
        Self {
            nodes,
            power_budget_w: None,
            seed: 0xF1EE_7001,
            idle_node_w: 445.0,
            pue: 1.08,
        }
    }
}

/// One completed job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    pub id: u64,
    pub name: String,
    pub nodes: usize,
    pub arrival_s: f64,
    pub start_s: f64,
    pub end_s: f64,
    /// Energy over the job's nodes, joules.
    pub energy_j: f64,
    /// Mean node power while running, watts.
    pub mean_node_power_w: f64,
}

impl JobRecord {
    /// Queue wait before the job started, seconds.
    #[must_use]
    pub fn wait_s(&self) -> f64 {
        self.start_s - self.arrival_s
    }
}

/// The simulated machine interval.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Aggregate IT power of the whole partition (running jobs + idle
    /// nodes); multiply by [`FleetSpec::pue`] for facility power.
    pub system_trace: PowerTrace,
    pub jobs: Vec<JobRecord>,
    /// Time the last job finished, seconds.
    pub makespan_s: f64,
    /// Node-seconds busy / (nodes × makespan).
    pub utilisation: f64,
    /// The PUE the spec declared (carried for facility conversions).
    pub pue: f64,
}

impl FleetOutcome {
    /// Mean system power over the interval, watts.
    #[must_use]
    pub fn mean_system_power_w(&self) -> f64 {
        if self.system_trace.duration() <= 0.0 {
            return 0.0;
        }
        self.system_trace.energy() / self.system_trace.duration()
    }

    /// Peak system power, watts.
    #[must_use]
    pub fn peak_system_power_w(&self) -> f64 {
        self.system_trace.max_power().unwrap_or(0.0)
    }

    /// Facility energy including cooling/distribution overhead, joules.
    #[must_use]
    pub fn facility_energy_j(&self) -> f64 {
        self.system_trace.energy() * self.pue
    }

    /// Mean queue wait, seconds.
    #[must_use]
    pub fn mean_wait_s(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs.iter().map(JobRecord::wait_s).sum::<f64>() / self.jobs.len() as f64
    }
}

/// Run the fleet: FIFO admission with backfill over free nodes (and the
/// optional power budget), each admitted job executed through the cluster
/// simulator at its start time.
///
/// # Panics
/// If a job wants more nodes than the partition has, or its estimated
/// power alone exceeds the budget.
#[must_use]
pub fn simulate(spec: &FleetSpec, requests: &[JobRequest], network: &NetworkModel) -> FleetOutcome {
    for r in requests {
        assert!(
            r.nodes <= spec.nodes,
            "job {} wants {} of {} nodes",
            r.id,
            r.nodes,
            spec.nodes
        );
        if let Some(budget) = spec.power_budget_w {
            assert!(
                r.est_node_power_w * r.nodes as f64 <= budget,
                "job {} alone exceeds the fleet budget",
                r.id
            );
        }
    }

    #[derive(Debug)]
    struct Running {
        end_s: f64,
        nodes: usize,
        est_power_w: f64,
    }

    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by(|&a, &b| {
        requests[a]
            .arrival_s
            .total_cmp(&requests[b].arrival_s)
            .then(requests[a].id.cmp(&requests[b].id))
    });

    let mut pending: Vec<usize> = order;
    let mut running: Vec<Running> = Vec::new();
    let mut records: Vec<JobRecord> = Vec::new();
    let mut node_traces: Vec<PowerTrace> = Vec::new();
    let mut busy_changes: Vec<(f64, i64)> = Vec::new(); // (time, ±nodes)
    let mut t = pending
        .first()
        .map_or(0.0, |&i| requests[i].arrival_s);

    while !pending.is_empty() || !running.is_empty() {
        running.retain(|r| r.end_s > t + 1e-9);

        let mut used_nodes: usize = running.iter().map(|r| r.nodes).sum();
        let mut used_power: f64 = running.iter().map(|r| r.est_power_w).sum();
        let mut admitted_any = true;
        while admitted_any {
            admitted_any = false;
            let mut i = 0;
            while i < pending.len() {
                let req = &requests[pending[i]];
                let power = req.est_node_power_w * req.nodes as f64;
                let fits_budget = spec
                    .power_budget_w
                    .is_none_or(|b| used_power + power <= b + 1e-9);
                if req.arrival_s <= t + 1e-9
                    && used_nodes + req.nodes <= spec.nodes
                    && fits_budget
                {
                    // Execute the job for real, starting now.
                    let job_spec = JobSpec {
                        nodes: req.nodes,
                        gpu_power_cap_w: req.cap_w,
                        seed: spec.seed ^ (req.id.wrapping_mul(0x9E37_79B9)),
                        start_s: t,
                        init_host_s: 6.0,
                        straggler: None,
                        os_jitter: 0.0,
                        phase_slowdown: None,
                        collective_slowdown: None,
                    };
                    let result = execute(&req.plan, &job_spec, network);
                    let end_s = t + result.runtime_s;
                    let energy_j = result.energy_j();
                    records.push(JobRecord {
                        id: req.id,
                        name: req.name.clone(),
                        nodes: req.nodes,
                        arrival_s: req.arrival_s,
                        start_s: t,
                        end_s,
                        energy_j,
                        mean_node_power_w: energy_j
                            / result.runtime_s.max(f64::MIN_POSITIVE)
                            / req.nodes as f64,
                    });
                    for c in result.node_traces {
                        node_traces.push(c.node);
                    }
                    busy_changes.push((t, req.nodes as i64));
                    busy_changes.push((end_s, -(req.nodes as i64)));
                    running.push(Running {
                        end_s,
                        nodes: req.nodes,
                        est_power_w: power,
                    });
                    used_nodes += req.nodes;
                    used_power += power;
                    pending.remove(i);
                    admitted_any = true;
                } else {
                    i += 1;
                }
            }
        }

        if pending.is_empty() && running.is_empty() {
            break;
        }
        // Advance to the next event: a finish or an arrival.
        let next_finish = running.iter().map(|r| r.end_s).fold(f64::INFINITY, f64::min);
        let next_arrival = pending
            .iter()
            .map(|&i| requests[i].arrival_s)
            .filter(|&a| a > t + 1e-9)
            .fold(f64::INFINITY, f64::min);
        let next = next_finish.min(next_arrival);
        assert!(next.is_finite(), "fleet stalled at t = {t}");
        t = next;
    }

    let makespan_s = records.iter().map(|r| r.end_s).fold(0.0, f64::max);

    // Idle-node power: nodes not allocated draw the idle floor.
    busy_changes.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut idle_trace = PowerTrace::new(0.0);
    let mut busy: i64 = 0;
    let mut cursor = 0.0;
    for (at, delta) in busy_changes {
        if at > cursor {
            let idle_nodes = spec.nodes as i64 - busy;
            idle_trace.push(at - cursor, idle_nodes.max(0) as f64 * spec.idle_node_w);
            cursor = at;
        }
        busy += delta;
    }
    if makespan_s > cursor {
        let idle_nodes = spec.nodes as i64 - busy;
        idle_trace.push(makespan_s - cursor, idle_nodes.max(0) as f64 * spec.idle_node_w);
    }

    let mut parts: Vec<&PowerTrace> = node_traces.iter().collect();
    parts.push(&idle_trace);
    let system_trace = PowerTrace::sum(&parts);

    let busy_node_seconds: f64 = records
        .iter()
        .map(|r| (r.end_s - r.start_s) * r.nodes as f64)
        .sum();
    let utilisation = if makespan_s > 0.0 {
        busy_node_seconds / (spec.nodes as f64 * makespan_s)
    } else {
        0.0
    };

    FleetOutcome {
        system_trace,
        jobs: records,
        makespan_s,
        utilisation,
        pue: spec.pue,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpp_dft::{build_plan, CostModel, Incar, ParallelLayout, Supercell, SystemParams};

    fn si_plan(atoms: usize, nelm: usize, nodes: usize) -> ScfPlan {
        let mut deck = Incar::default_deck();
        deck.nelm = nelm;
        let p = SystemParams::derive(&Supercell::silicon(atoms), &deck);
        build_plan(&p, &ParallelLayout::nodes(nodes), &CostModel::calibrated())
    }

    fn request(id: u64, nodes: usize, arrival_s: f64) -> JobRequest {
        JobRequest {
            id,
            name: format!("si256-job{id}"),
            plan: si_plan(256, 10, nodes),
            nodes,
            arrival_s,
            cap_w: None,
            est_node_power_w: 1300.0,
        }
    }

    #[test]
    fn single_job_fleet() {
        let spec = FleetSpec::new(4);
        let out = simulate(&spec, &[request(1, 2, 0.0)], &NetworkModel::perlmutter());
        assert_eq!(out.jobs.len(), 1);
        assert!(out.makespan_s > 10.0);
        assert!(out.utilisation > 0.0 && out.utilisation <= 0.51);
        // System power = job nodes + 2 idle nodes.
        let mid = out.makespan_s / 2.0;
        let p = out.system_trace.power_at(mid);
        assert!(p > 2.0 * 445.0 + 1000.0, "system power {p}");
    }

    #[test]
    fn node_capacity_serialises_jobs() {
        let spec = FleetSpec::new(2);
        let reqs = vec![request(1, 2, 0.0), request(2, 2, 0.0)];
        let out = simulate(&spec, &reqs, &NetworkModel::perlmutter());
        assert_eq!(out.jobs.len(), 2);
        let (a, b) = (&out.jobs[0], &out.jobs[1]);
        assert!(b.start_s >= a.end_s - 1e-6, "jobs must not overlap");
        assert!(b.wait_s() > 0.0);
    }

    #[test]
    fn power_budget_gates_admission() {
        // Two 1-node jobs at ~1300 W estimated; budget fits only one.
        let mut spec = FleetSpec::new(4);
        spec.power_budget_w = Some(2000.0);
        let reqs = vec![request(1, 1, 0.0), request(2, 1, 0.0)];
        let out = simulate(&spec, &reqs, &NetworkModel::perlmutter());
        let (a, b) = (&out.jobs[0], &out.jobs[1]);
        assert!(
            b.start_s >= a.end_s - 1e-6,
            "budget must serialise: {} vs {}",
            b.start_s,
            a.end_s
        );
    }

    #[test]
    fn arrivals_are_respected_and_waits_accounted() {
        let spec = FleetSpec::new(8);
        let reqs = vec![request(1, 2, 0.0), request(2, 2, 50.0)];
        let out = simulate(&spec, &reqs, &NetworkModel::perlmutter());
        let b = out.jobs.iter().find(|j| j.id == 2).unwrap();
        assert!(b.start_s >= 50.0 - 1e-9);
        assert!(out.mean_wait_s() < 5.0, "plenty of room: no real waiting");
    }

    #[test]
    fn system_energy_equals_jobs_plus_idle() {
        let spec = FleetSpec::new(3);
        let out = simulate(&spec, &[request(1, 1, 0.0)], &NetworkModel::perlmutter());
        let job_e: f64 = out.jobs.iter().map(|j| j.energy_j).sum();
        let idle_e = 2.0 * spec.idle_node_w * out.makespan_s;
        let total = out.system_trace.energy();
        assert!(
            (total - job_e - idle_e).abs() / total < 0.01,
            "total {total} vs job {job_e} + idle {idle_e}"
        );
    }

    #[test]
    fn capped_fleet_draws_less_peak_power() {
        let spec = FleetSpec::new(2);
        let base = simulate(&spec, &[request(1, 2, 0.0)], &NetworkModel::perlmutter());
        let mut capped_req = request(1, 2, 0.0);
        capped_req.cap_w = Some(200.0);
        let capped = simulate(&spec, &[capped_req], &NetworkModel::perlmutter());
        assert!(capped.peak_system_power_w() < base.peak_system_power_w() - 300.0);
    }

    #[test]
    #[should_panic(expected = "exceeds the fleet budget")]
    fn impossible_budget_panics() {
        let mut spec = FleetSpec::new(4);
        spec.power_budget_w = Some(500.0);
        let _ = simulate(&spec, &[request(1, 1, 0.0)], &NetworkModel::perlmutter());
    }

    #[test]
    fn facility_energy_includes_pue() {
        let spec = FleetSpec::new(2);
        let out = simulate(&spec, &[request(1, 1, 0.0)], &NetworkModel::perlmutter());
        let it = out.system_trace.energy();
        assert!((out.facility_energy_j() - it * 1.08).abs() < 1e-6);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let spec = FleetSpec::new(4);
        let reqs = vec![request(1, 2, 0.0), request(2, 1, 30.0)];
        let a = simulate(&spec, &reqs, &NetworkModel::perlmutter());
        let b = simulate(&spec, &reqs, &NetworkModel::perlmutter());
        assert_eq!(a.makespan_s.to_bits(), b.makespan_s.to_bits());
        assert_eq!(a.system_trace, b.system_trace);
    }
}
