//! System-level fleet simulation.
//!
//! The paper's context (§I): 65 % of the variation in Perlmutter's system
//! power is temporal variation within individual jobs, and §VI's vision is
//! a batch system that regulates that variation through per-workload power
//! caps. This crate closes the loop at machine scale: a partition of GPU
//! nodes, a queue of jobs with arrival times, FIFO-with-backfill placement
//! under optional node-power budgets, and — because every placed job is
//! *actually executed* through the cluster simulator — a faithful aggregate
//! system power timeline, not a static estimate.

pub mod sim;
pub mod variance;

pub use sim::{simulate, FleetOutcome, FleetSpec, JobRecord, JobRequest};
pub use variance::{decompose, VarianceDecomposition};
