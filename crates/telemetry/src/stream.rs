//! Live metric streaming — the distributed shape of LDMS.
//!
//! The real LDMS is a network of per-node sampler daemons pushing metric
//! sets to aggregators (paper §II-B, ref [19]). This module reproduces that
//! topology in-process: node producers send [`Sample`]s over a bounded
//! `std::sync::mpsc::sync_channel` to one aggregator thread that folds
//! them into per-channel series and exposes them on completion.
//! Back-pressure from the bounded channel (`send` blocks when the buffer
//! is full) models the aggregate-rate limits that force the production
//! system to drop samples.

use crate::quality::{quarantine, CleanSeries, QualityConfig, RawSeries};
use crate::series::TimeSeries;
use crate::store::Channel;
use std::collections::BTreeMap;
use std::sync::mpsc::{sync_channel, SyncSender};
use std::thread::JoinHandle;

/// Points accumulated per (node, channel), in arrival order.
type RawAcc = BTreeMap<(usize, Channel), Vec<(f64, f64)>>;

enum Msg {
    Sample(Sample),
    Shutdown,
}

/// One streamed measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    pub node: usize,
    pub channel: Channel,
    /// Timestamp, seconds.
    pub t: f64,
    /// Power, watts.
    pub watts: f64,
}

/// Handle held by a producer (one per node daemon).
#[derive(Clone)]
pub struct Producer {
    tx: SyncSender<Msg>,
}

impl Producer {
    /// Push one sample; blocks when the aggregator is saturated
    /// (back-pressure). Returns `false` if the aggregator has shut down.
    pub fn push(&self, sample: Sample) -> bool {
        self.tx.send(Msg::Sample(sample)).is_ok()
    }
}

/// The in-process aggregator.
pub struct LiveCollector {
    tx: Option<SyncSender<Msg>>,
    worker: Option<JoinHandle<RawAcc>>,
}

impl LiveCollector {
    /// Start an aggregator with the given channel capacity (samples in
    /// flight before producers block).
    #[must_use]
    pub fn start(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let (tx, rx) = sync_channel::<Msg>(capacity);
        let worker = std::thread::spawn(move || {
            let mut acc = RawAcc::new();
            // Exit on the shutdown sentinel (or all senders dropping), so
            // `finish` works even while producer handles are still alive.
            while let Ok(msg) = rx.recv() {
                match msg {
                    Msg::Sample(s) => acc
                        .entry((s.node, s.channel))
                        .or_default()
                        .push((s.t, s.watts)),
                    Msg::Shutdown => break,
                }
            }
            acc
        });
        Self {
            tx: Some(tx),
            worker: Some(worker),
        }
    }

    /// A new producer handle (clone per node daemon).
    ///
    /// # Panics
    /// If the collector has already been finished.
    #[must_use]
    pub fn producer(&self) -> Producer {
        Producer {
            tx: self.tx.as_ref().expect("collector already finished").clone(),
        }
    }

    /// Close the intake and return the per-channel streams exactly as they
    /// arrived — unordered, possibly duplicated, possibly non-finite.
    ///
    /// # Panics
    /// If the aggregator thread panicked.
    #[must_use]
    pub fn finish_raw(mut self) -> BTreeMap<(usize, Channel), RawSeries> {
        if let Some(tx) = self.tx.take() {
            // Queued samples ahead of the sentinel are still processed.
            let _ = tx.send(Msg::Shutdown);
        }
        let acc = self
            .worker
            .take()
            .expect("finish called twice")
            .join()
            .expect("aggregator panicked");
        acc.into_iter()
            .map(|(key, points)| (key, RawSeries::from_points(points)))
            .collect()
    }

    /// Close the intake and collect the per-channel series. Out-of-order
    /// arrivals (producers race) are sorted by timestamp; duplicate
    /// timestamps keep the last arrival. Trusts the producers: dirty
    /// values (NaN readings etc.) panic downstream in
    /// [`TimeSeries::new`] — use [`finish_quarantined`](Self::finish_quarantined)
    /// when the input may be dirty.
    ///
    /// # Panics
    /// If the aggregator thread panicked.
    #[must_use]
    pub fn finish(self) -> BTreeMap<(usize, Channel), TimeSeries> {
        self.finish_raw()
            .into_iter()
            .map(|(key, raw)| {
                let mut points = raw.points().to_vec();
                // Stable sort: equal timestamps keep arrival order, so the
                // last arrival is the last of each equal-timestamp group.
                points.sort_by(|a, b| a.0.total_cmp(&b.0));
                let mut kept: Vec<(f64, f64)> = Vec::with_capacity(points.len());
                for p in points {
                    match kept.last_mut() {
                        Some(last) if last.0 == p.0 => *last = p,
                        _ => kept.push(p),
                    }
                }
                let (times, values): (Vec<f64>, Vec<f64>) = kept.into_iter().unzip();
                (key, TimeSeries::new(times, values))
            })
            .collect()
    }

    /// Close the intake and run every per-channel stream through the
    /// quarantine screen: dirty data (non-finite readings, implausible
    /// values, stuck runs, duplicates, reordering) is cleaned and
    /// accounted for in each [`CleanSeries::quality`] report instead of
    /// panicking downstream.
    ///
    /// # Panics
    /// If the aggregator thread panicked.
    #[must_use]
    pub fn finish_quarantined(
        self,
        cfg: &QualityConfig,
    ) -> BTreeMap<(usize, Channel), CleanSeries> {
        self.finish_raw()
            .into_iter()
            .map(|(key, raw)| (key, quarantine(&raw, cfg)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_from_many_threads_are_aggregated() {
        let collector = LiveCollector::start(64);
        let handles: Vec<_> = (0..4)
            .map(|node| {
                let p = collector.producer();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        assert!(p.push(Sample {
                            node,
                            channel: Channel::Node,
                            t: i as f64,
                            watts: 1000.0 + node as f64,
                        }));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let series = collector.finish();
        assert_eq!(series.len(), 4);
        for node in 0..4 {
            let s = &series[&(node, Channel::Node)];
            assert_eq!(s.len(), 50);
            assert!((s.mean() - (1000.0 + node as f64)).abs() < 1e-9);
        }
    }

    #[test]
    fn out_of_order_arrivals_are_sorted() {
        let collector = LiveCollector::start(16);
        let p = collector.producer();
        for &t in &[3.0, 1.0, 2.0, 5.0, 4.0] {
            p.push(Sample {
                node: 0,
                channel: Channel::Cpu,
                t,
                watts: t * 10.0,
            });
        }
        let series = collector.finish();
        let s = &series[&(0, Channel::Cpu)];
        assert_eq!(s.times(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.values(), &[10.0, 20.0, 30.0, 40.0, 50.0]);
    }

    #[test]
    fn multiple_channels_per_node_stay_separate() {
        let collector = LiveCollector::start(16);
        let p = collector.producer();
        for (chan, w) in [(Channel::Node, 1800.0), (Channel::Gpu(0), 350.0)] {
            p.push(Sample {
                node: 7,
                channel: chan,
                t: 1.0,
                watts: w,
            });
        }
        let series = collector.finish();
        assert_eq!(series[&(7, Channel::Node)].values(), &[1800.0]);
        assert_eq!(series[&(7, Channel::Gpu(0))].values(), &[350.0]);
    }

    #[test]
    fn bounded_channel_applies_back_pressure_not_loss() {
        // A tiny buffer with a slow consumer: every sample still arrives.
        let collector = LiveCollector::start(2);
        let p = collector.producer();
        let producer = std::thread::spawn(move || {
            for i in 0..500 {
                assert!(p.push(Sample {
                    node: 0,
                    channel: Channel::Mem,
                    t: i as f64,
                    watts: 30.0,
                }));
            }
        });
        producer.join().unwrap();
        let series = collector.finish();
        assert_eq!(series[&(0, Channel::Mem)].len(), 500);
    }

    #[test]
    fn push_after_finish_reports_shutdown() {
        let collector = LiveCollector::start(4);
        let p = collector.producer();
        let _ = collector.finish();
        assert!(!p.push(Sample {
            node: 0,
            channel: Channel::Node,
            t: 0.0,
            watts: 1.0,
        }));
    }

    #[test]
    fn empty_collector_finishes_empty() {
        let collector = LiveCollector::start(4);
        assert!(collector.finish().is_empty());
    }

    #[test]
    fn duplicate_timestamps_keep_the_last_arrival() {
        // Regression: `dedup_by` after a stable sort kept the *first*
        // arrival, contradicting the documented keep-last contract.
        // Two producers race on the same timestamp; arrival order is
        // serialised by joining producer A before producer B sends.
        let collector = LiveCollector::start(16);
        let a = collector.producer();
        let b = collector.producer();
        std::thread::spawn(move || {
            a.push(Sample {
                node: 0,
                channel: Channel::Node,
                t: 1.0,
                watts: 100.0,
            });
        })
        .join()
        .unwrap();
        std::thread::spawn(move || {
            b.push(Sample {
                node: 0,
                channel: Channel::Node,
                t: 1.0,
                watts: 200.0,
            });
        })
        .join()
        .unwrap();
        let series = collector.finish();
        assert_eq!(
            series[&(0, Channel::Node)].values(),
            &[200.0],
            "the later arrival must win"
        );
    }

    #[test]
    fn keep_last_holds_among_earlier_and_later_neighbours() {
        let collector = LiveCollector::start(16);
        let p = collector.producer();
        for (t, w) in [(1.0, 10.0), (2.0, 20.0), (2.0, 21.0), (2.0, 22.0), (3.0, 30.0)] {
            p.push(Sample {
                node: 0,
                channel: Channel::Cpu,
                t,
                watts: w,
            });
        }
        let series = collector.finish();
        let s = &series[&(0, Channel::Cpu)];
        assert_eq!(s.times(), &[1.0, 2.0, 3.0]);
        assert_eq!(s.values(), &[10.0, 22.0, 30.0]);
    }

    #[test]
    fn finish_raw_preserves_arrival_order() {
        let collector = LiveCollector::start(16);
        let p = collector.producer();
        for &t in &[3.0, 1.0, 2.0] {
            p.push(Sample {
                node: 0,
                channel: Channel::Node,
                t,
                watts: t,
            });
        }
        let raw = collector.finish_raw();
        assert_eq!(
            raw[&(0, Channel::Node)].points(),
            &[(3.0, 3.0), (1.0, 1.0), (2.0, 2.0)]
        );
    }

    #[test]
    fn finish_quarantined_survives_dirty_producers() {
        // A NaN reading would panic `finish` downstream; the quarantined
        // path cleans and accounts for it.
        let collector = LiveCollector::start(16);
        let p = collector.producer();
        for (t, w) in [(1.0, 500.0), (2.0, f64::NAN), (3.0, 510.0), (3.0, 512.0)] {
            p.push(Sample {
                node: 4,
                channel: Channel::Node,
                t,
                watts: w,
            });
        }
        let clean = collector.finish_quarantined(&QualityConfig::new(1.0));
        let c = &clean[&(4, Channel::Node)];
        assert_eq!(c.series.values(), &[500.0, 512.0]);
        assert_eq!(c.quality.non_finite_removed, 1);
        assert_eq!(c.quality.duplicates_resolved, 1);
    }
}
