//! The LDMS-like collector: window-averaged sampling with drops.

use crate::series::TimeSeries;
use vpp_sim::{PowerTrace, Rng};

/// Sampling configuration.
///
/// ```
/// use vpp_sim::PowerTrace;
/// use vpp_telemetry::Sampler;
///
/// let trace = PowerTrace::from_segments(0.0, [(30.0, 250.0)]);
/// let series = Sampler::ideal(2.0).sample(&trace);
/// assert_eq!(series.len(), 15);
/// assert!((series.mean() - 250.0).abs() < 1e-9);
/// ```
///
/// Cray PM counters report the *average* power over the sampling window —
/// not an instantaneous reading — which is why coarse sampling merges power
/// modes instead of aliasing them (paper Fig. 2). Drops model the LDMS
/// pipeline losing samples under aggregate load (nominal 1 s → effective
/// 2 s in the study).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sampler {
    /// Nominal sampling interval, seconds.
    pub interval_s: f64,
    /// Probability that any individual sample is dropped.
    pub drop_prob: f64,
    /// RNG seed for the drop/jitter process.
    pub seed: u64,
}

impl Sampler {
    /// Validated constructor. `drop_prob == 1.0` is legal and yields an
    /// empty series (every sample dropped).
    ///
    /// # Panics
    /// If `interval_s` is not positive and finite, or `drop_prob` is
    /// outside `[0, 1]`.
    #[must_use]
    pub fn new(interval_s: f64, drop_prob: f64, seed: u64) -> Self {
        assert!(
            interval_s > 0.0 && interval_s.is_finite(),
            "bad interval {interval_s}"
        );
        assert!(
            (0.0..=1.0).contains(&drop_prob),
            "bad drop_prob {drop_prob}"
        );
        Self {
            interval_s,
            drop_prob,
            seed,
        }
    }

    /// Ideal sampler: fixed interval, no drops.
    #[must_use]
    pub fn ideal(interval_s: f64) -> Self {
        Self::new(interval_s, 0.0, 0)
    }

    /// The production configuration of the study: 1 s nominal with 50 %
    /// drops → ≈2 s effective cadence.
    #[must_use]
    pub fn ldms_production() -> Self {
        Self {
            interval_s: 1.0,
            drop_prob: 0.5,
            seed: 0x4c44_4d53, // "LDMS"
        }
    }

    /// High-rate capture used for the Fig. 2 methodology study (0.1 s).
    #[must_use]
    pub fn high_rate() -> Self {
        Self::ideal(0.1)
    }

    /// Sample a power trace into a time series. Each kept sample at time
    /// `t` carries the trace's mean power over `[t - interval, t)`.
    ///
    /// All window means come from one forward sweep over the trace
    /// ([`PowerTrace::window_means`], O(segments + windows)) instead of an
    /// independent windowed query per sample. Sample times are computed
    /// multiplicatively (`start + i·interval`), so an hour-long trace at a
    /// sub-second cadence no longer accumulates the float drift of the old
    /// `t += interval` loop.
    #[must_use]
    pub fn sample(&self, trace: &PowerTrace) -> TimeSeries {
        // Constructors validate; this backstop catches direct field edits
        // (the fields are public). The boundary 1.0 is legal: all drops.
        assert!((0.0..=1.0).contains(&self.drop_prob), "bad drop_prob");
        let mut rng = Rng::new(self.seed);
        let start = trace.start();
        let n = ((trace.duration() + 1e-12) / self.interval_s).floor() as usize;
        let means = if n > 0 {
            trace.window_means(start, self.interval_s, n)
        } else {
            Vec::new()
        };
        let mut times = Vec::with_capacity(n);
        let mut values = Vec::with_capacity(n);
        let tracing = vpp_substrate::trace::enabled();
        for (i, &mean) in means.iter().enumerate() {
            if !rng.bool(self.drop_prob) {
                times.push(start + (i + 1) as f64 * self.interval_s);
                values.push(mean);
                if tracing {
                    // The *sensor's* view of the power distribution —
                    // window-averaged and drop-thinned — kept as a
                    // separate histogram from the executor's ground-truth
                    // `power_watts` so a scrape can compare the two
                    // (Fig. 2: coarse windows merge the power modes).
                    vpp_substrate::trace::histogram("power_watts_sampled", mean);
                }
            }
        }
        TimeSeries::new(times, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_wave(n_cycles: usize, half_s: f64, lo: f64, hi: f64) -> PowerTrace {
        let mut t = PowerTrace::new(0.0);
        for _ in 0..n_cycles {
            t.push(half_s, lo);
            t.push(half_s, hi);
        }
        t
    }

    #[test]
    fn ideal_sampling_counts() {
        let trace = square_wave(10, 1.0, 100.0, 300.0); // 20 s
        let s = Sampler::ideal(2.0).sample(&trace);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn constant_trace_samples_constant() {
        let trace = PowerTrace::from_segments(0.0, [(10.0, 250.0)]);
        let s = Sampler::ideal(1.0).sample(&trace);
        assert!(s.values().iter().all(|&v| (v - 250.0).abs() < 1e-9));
    }

    #[test]
    fn window_averaging_merges_fast_structure() {
        // 0.2 s square wave between 100 and 300 W: a 2 s window sees 200 W.
        let trace = square_wave(100, 0.1, 100.0, 300.0);
        let s = Sampler::ideal(2.0).sample(&trace);
        assert!(s.values().iter().all(|&v| (v - 200.0).abs() < 1e-6));
        // A 0.1 s sampler resolves both levels.
        let fast = Sampler::high_rate().sample(&trace);
        let lo = fast.values().iter().filter(|&&v| v < 150.0).count();
        let hi = fast.values().iter().filter(|&&v| v > 250.0).count();
        assert!(lo > 40 && hi > 40, "lo={lo} hi={hi}");
    }

    #[test]
    fn sampling_preserves_mean_power() {
        let trace = square_wave(50, 0.7, 120.0, 310.0);
        let s = Sampler::ideal(1.0).sample(&trace);
        let true_mean = trace.energy() / trace.duration();
        assert!((s.mean() - true_mean).abs() < 5.0, "mean drifted: {}", s.mean());
    }

    #[test]
    fn drops_stretch_effective_cadence() {
        let trace = PowerTrace::from_segments(0.0, [(4000.0, 200.0)]);
        let s = Sampler::ldms_production().sample(&trace);
        let med = s.mean_interval_s().unwrap();
        assert!((1.5..3.0).contains(&med), "mean interval = {med}");
        assert!(s.max_gap_s().unwrap() <= 16.0, "pathological gap");
    }

    #[test]
    fn drop_process_is_deterministic() {
        let trace = PowerTrace::from_segments(0.0, [(100.0, 200.0)]);
        let a = Sampler::ldms_production().sample(&trace);
        let b = Sampler::ldms_production().sample(&trace);
        assert_eq!(a, b);
    }

    #[test]
    fn hour_long_trace_has_drift_free_sample_times() {
        // 1 h at 0.1 s cadence: 36 000 samples. The old `t += dt`
        // accumulator drifted by thousands of ULPs by the end; the
        // multiplicative formula pins every timestamp.
        let trace = PowerTrace::from_segments(0.0, [(3600.0, 200.0)]);
        let s = Sampler::ideal(0.1).sample(&trace);
        assert_eq!(s.len(), 36_000);
        let times = s.times();
        let last = times[times.len() - 1];
        assert_eq!(last, 36_000.0 * 0.1, "exact, not approximately equal");
        let mid = times[17_999];
        assert_eq!(mid, 18_000.0 * 0.1);
    }

    #[test]
    fn empty_trace_yields_empty_series() {
        let s = Sampler::ideal(1.0).sample(&PowerTrace::new(0.0));
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "bad drop_prob")]
    fn invalid_drop_prob_panics() {
        let mut s = Sampler::ideal(1.0);
        s.drop_prob = 1.5;
        let _ = s.sample(&PowerTrace::from_segments(0.0, [(1.0, 1.0)]));
    }

    #[test]
    #[should_panic(expected = "bad drop_prob")]
    fn constructor_rejects_out_of_range_drop_prob() {
        let _ = Sampler::new(1.0, 1.5, 0);
    }

    #[test]
    #[should_panic(expected = "bad interval")]
    fn constructor_rejects_bad_interval() {
        let _ = Sampler::new(0.0, 0.5, 0);
    }

    #[test]
    fn all_drops_boundary_yields_empty_series() {
        // Regression: `drop_prob == 1.0` is a legal boundary (everything
        // dropped) and used to be rejected at `sample()` time.
        let trace = PowerTrace::from_segments(0.0, [(100.0, 200.0)]);
        let s = Sampler::new(1.0, 1.0, 7).sample(&trace);
        assert!(s.is_empty());
    }

    #[test]
    fn zero_drop_boundary_keeps_everything() {
        let trace = PowerTrace::from_segments(0.0, [(100.0, 200.0)]);
        let s = Sampler::new(1.0, 0.0, 7).sample(&trace);
        assert_eq!(s.len(), 100);
    }
}
