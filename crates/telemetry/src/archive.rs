//! On-disk archive format for the store.
//!
//! A directory of CSV series plus a plain-text manifest — the simplest
//! format downstream plotting tools (pandas, gnuplot) consume directly:
//!
//! ```text
//! archive/
//!   MANIFEST          # one line per series: job,node,channel,filename
//!   job1_n0_node.csv
//!   job1_n0_gpu0.csv
//!   ...
//! ```

use crate::query::{from_csv, to_csv};
use crate::store::{Channel, Store};
use std::path::Path;

fn channel_slug(c: Channel) -> String {
    match c {
        Channel::Node => "node".into(),
        Channel::Cpu => "cpu".into(),
        Channel::Mem => "mem".into(),
        Channel::Gpu(i) => format!("gpu{i}"),
    }
}

fn channel_from_slug(s: &str) -> Result<Channel, String> {
    match s {
        "node" => Ok(Channel::Node),
        "cpu" => Ok(Channel::Cpu),
        "mem" => Ok(Channel::Mem),
        other => {
            let idx = other
                .strip_prefix("gpu")
                .and_then(|n| n.parse::<u8>().ok())
                .ok_or_else(|| format!("unknown channel '{other}'"))?;
            Ok(Channel::Gpu(idx))
        }
    }
}

/// Sanitise a job id into a filename fragment.
fn slugify(job: &str) -> String {
    job.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

/// Write every series in `store` under `dir` (created if missing).
/// Returns the number of series written.
///
/// # Errors
/// I/O failures, with the offending path in the message.
pub fn export_dir(store: &Store, dir: &Path) -> Result<usize, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    let mut manifest = String::new();
    let mut written = 0;
    for job in store.jobs() {
        for node in store.nodes_of(&job) {
            for channel in Channel::all() {
                let Some(series) = store.query(&job, node, channel) else {
                    continue;
                };
                let fname = format!("{}_n{}_{}.csv", slugify(&job), node, channel_slug(channel));
                let path = dir.join(&fname);
                std::fs::write(&path, to_csv(&series))
                    .map_err(|e| format!("write {}: {e}", path.display()))?;
                manifest.push_str(&format!("{job},{node},{},{fname}\n", channel_slug(channel)));
                written += 1;
            }
        }
    }
    let mpath = dir.join("MANIFEST");
    std::fs::write(&mpath, manifest).map_err(|e| format!("write {}: {e}", mpath.display()))?;
    Ok(written)
}

/// Load an archive directory back into a fresh store.
///
/// # Errors
/// Missing/garbled manifest or series files.
pub fn import_dir(dir: &Path) -> Result<Store, String> {
    let mpath = dir.join("MANIFEST");
    let manifest =
        std::fs::read_to_string(&mpath).map_err(|e| format!("read {}: {e}", mpath.display()))?;
    let store = Store::new();
    for (i, line) in manifest.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 4 {
            return Err(format!("MANIFEST line {}: expected 4 fields", i + 1));
        }
        let job = parts[0];
        let node: usize = parts[1]
            .parse()
            .map_err(|_| format!("MANIFEST line {}: bad node '{}'", i + 1, parts[1]))?;
        let channel = channel_from_slug(parts[2])
            .map_err(|e| format!("MANIFEST line {}: {e}", i + 1))?;
        let path = dir.join(parts[3]);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let series = from_csv(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        store.insert(job, node, channel, series);
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::Sampler;
    use vpp_node::ComponentTraces;
    use vpp_sim::PowerTrace;

    fn populated_store() -> Store {
        let store = Store::new();
        let seg = |w: f64| PowerTrace::from_segments(0.0, [(20.0, w)]);
        let traces = ComponentTraces::assemble(
            seg(110.0),
            seg(30.0),
            vec![seg(300.0), seg(305.0), seg(295.0), seg(290.0)],
            seg(140.0),
        );
        store.ingest_job("Si256_hse/run 1", &[traces], &Sampler::ideal(1.0));
        store
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("vpp_archive_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn export_import_round_trips() {
        let store = populated_store();
        let dir = tmpdir("roundtrip");
        let written = export_dir(&store, &dir).unwrap();
        assert_eq!(written, 7);

        let back = import_dir(&dir).unwrap();
        assert_eq!(back.len(), 7);
        let orig = store.query("Si256_hse/run 1", 0, Channel::Gpu(2)).unwrap();
        let got = back.query("Si256_hse/run 1", 0, Channel::Gpu(2)).unwrap();
        assert_eq!(got.len(), orig.len());
        assert!((got.mean() - orig.mean()).abs() < 1e-3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn job_ids_are_slugified_for_filenames() {
        let store = populated_store();
        let dir = tmpdir("slug");
        export_dir(&store, &dir).unwrap();
        assert!(dir.join("Si256-hse-run-1_n0_node.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_is_an_error() {
        let dir = tmpdir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        let err = import_dir(&dir).unwrap_err();
        assert!(err.contains("MANIFEST"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbled_manifest_reports_the_line() {
        let dir = tmpdir("garbled");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("MANIFEST"), "only,three,fields\n").unwrap();
        let err = import_dir(&dir).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn channel_slugs_round_trip() {
        for c in Channel::all() {
            assert_eq!(channel_from_slug(&channel_slug(c)).unwrap(), c);
        }
        assert!(channel_from_slug("gpu99x").is_err());
    }
}
