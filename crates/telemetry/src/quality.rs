//! Quarantine-and-quality ingest: dirty telemetry in, accounted-for
//! series out.
//!
//! The production measurement chain (Cray PM → LDMS → OMNI, paper §II-B)
//! delivers imperfect data: samples drop under aggregate load, sensors
//! stick, readings glitch to NaN or implausible spikes, node clocks skew,
//! counters reset, and racing per-node daemons deliver points out of order
//! or twice. Downstream code wants the [`TimeSeries`] invariants (strictly
//! increasing timestamps, finite values) — previously the only options
//! were "panic" or "silently trust".
//!
//! This module adds the third option: a [`RawSeries`] accumulates points
//! exactly as they arrived, and [`quarantine`] screens them into a valid
//! [`TimeSeries`] plus a [`DataQuality`] report that accounts for every
//! point removed or repaired, so consumers can gate on coverage the way
//! the paper's protocol re-runs variant nodes (§III-B.1).

use crate::series::TimeSeries;

/// Possibly-dirty samples in arrival order. Duplicate timestamps,
/// out-of-order delivery and non-finite values are all representable —
/// none of the [`TimeSeries`] invariants are enforced here.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RawSeries {
    points: Vec<(f64, f64)>,
}

impl RawSeries {
    /// Empty raw accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap `(t, watts)` points already in arrival order.
    #[must_use]
    pub fn from_points(points: Vec<(f64, f64)>) -> Self {
        Self { points }
    }

    /// Re-open a clean series as raw input (e.g. to inject faults into it).
    #[must_use]
    pub fn from_series(series: &TimeSeries) -> Self {
        Self {
            points: series
                .times()
                .iter()
                .copied()
                .zip(series.values().iter().copied())
                .collect(),
        }
    }

    /// Append one arrival.
    pub fn push(&mut self, t: f64, watts: f64) {
        self.points.push((t, watts));
    }

    /// Arrival-ordered points.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of raw points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing has arrived.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Screening thresholds for [`quarantine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityConfig {
    /// Nominal cadence the producer was configured for, seconds. Anchors
    /// the coverage fraction and the gap histogram.
    pub nominal_interval_s: f64,
    /// Readings below this are counter-reset artefacts (a powered node
    /// never reports ~0 W mid-run).
    pub min_plausible_w: f64,
    /// Readings above this are transient spikes (no Perlmutter node
    /// channel reaches tens of kW).
    pub max_plausible_w: f64,
    /// Runs of at least this many bitwise-identical consecutive values
    /// are a stuck sensor; `usize::MAX` disables the check (legitimate
    /// for simulated traces with exactly constant phases).
    pub stuck_run_min: usize,
    /// Gaps longer than this multiple of the nominal interval count as
    /// dropout gaps.
    pub gap_factor: f64,
}

impl QualityConfig {
    /// Default screen for a channel sampled at `nominal_interval_s`.
    ///
    /// # Panics
    /// If the interval is not positive and finite.
    #[must_use]
    pub fn new(nominal_interval_s: f64) -> Self {
        assert!(
            nominal_interval_s > 0.0 && nominal_interval_s.is_finite(),
            "bad nominal interval {nominal_interval_s}"
        );
        Self {
            nominal_interval_s,
            min_plausible_w: 1.0,
            max_plausible_w: 50_000.0,
            stuck_run_min: 4,
            gap_factor: 1.5,
        }
    }

    /// Same screen with stuck-sensor detection disabled — for simulated
    /// traces whose constant phases are real, not sensor faults.
    #[must_use]
    pub fn without_stuck_detection(mut self) -> Self {
        self.stuck_run_min = usize::MAX;
        self
    }

    /// Override the plausible-value band.
    #[must_use]
    pub fn with_plausible_band(mut self, min_w: f64, max_w: f64) -> Self {
        self.min_plausible_w = min_w;
        self.max_plausible_w = max_w;
        self
    }
}

/// What the quarantine did to one raw series: every removed or repaired
/// point is counted in exactly one bucket, so
/// `n_raw == n_kept + non_finite_removed + spikes_removed +
/// resets_removed + duplicates_resolved + stuck_removed`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DataQuality {
    /// Points that arrived.
    pub n_raw: usize,
    /// Points surviving every screen.
    pub n_kept: usize,
    /// NaN/infinite readings removed.
    pub non_finite_removed: usize,
    /// Readings above the plausible band removed.
    pub spikes_removed: usize,
    /// Readings below the plausible band (counter resets) removed.
    pub resets_removed: usize,
    /// Duplicate timestamps resolved keep-last.
    pub duplicates_resolved: usize,
    /// Adjacent arrival pairs whose timestamps were inverted (repaired by
    /// the stable sort).
    pub order_violations: usize,
    /// Maximal stuck-sensor runs detected.
    pub stuck_runs: usize,
    /// Stuck samples removed (every sample of a run after its first).
    pub stuck_removed: usize,
    /// Inter-sample gaps exceeding `gap_factor ×` nominal.
    pub dropout_gaps: usize,
    /// Longest inter-sample gap, seconds (0 with fewer than 2 samples).
    pub longest_gap_s: f64,
    /// Kept samples over the count a gap-free nominal cadence would have
    /// produced across the observed span, in `[0, 1]`.
    pub coverage: f64,
    /// Gap histogram as multiples of the nominal interval:
    /// `[0, 1.5)`, `[1.5, 4)`, `[4, 16)`, `[16, ∞)`.
    pub gap_hist: [usize; 4],
}

impl DataQuality {
    /// Total points removed by any screen.
    #[must_use]
    pub fn removed(&self) -> usize {
        self.non_finite_removed
            + self.spikes_removed
            + self.resets_removed
            + self.duplicates_resolved
            + self.stuck_removed
    }

    /// True when nothing had to be removed or repaired and no dropout
    /// gap was seen.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.removed() == 0 && self.order_violations == 0 && self.dropout_gaps == 0
    }
}

impl std::fmt::Display for DataQuality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "kept {}/{} (coverage {:.0}%): {} non-finite, {} spikes, {} resets, \
             {} dups, {} stuck ({} runs), {} reorders, {} dropout gaps (longest {:.1}s)",
            self.n_kept,
            self.n_raw,
            self.coverage * 100.0,
            self.non_finite_removed,
            self.spikes_removed,
            self.resets_removed,
            self.duplicates_resolved,
            self.stuck_removed,
            self.stuck_runs,
            self.order_violations,
            self.dropout_gaps,
            self.longest_gap_s
        )
    }
}

/// A quarantined series: the surviving samples plus the account of what
/// was screened out.
#[derive(Debug, Clone, PartialEq)]
pub struct CleanSeries {
    pub series: TimeSeries,
    pub quality: DataQuality,
}

/// Screen a raw series into a valid [`TimeSeries`] and its quality report.
///
/// The screens run in a fixed order so each removed point lands in exactly
/// one bucket:
///
/// 1. non-finite values out;
/// 2. implausible values out (spikes above, counter resets below the band);
/// 3. arrival-order inversions counted, then a stable timestamp sort;
/// 4. duplicate timestamps resolved keep-last (matching
///    [`LiveCollector::finish`](crate::LiveCollector::finish));
/// 5. stuck-sensor runs collapsed to their first sample;
/// 6. gap/coverage statistics on what remains.
///
/// Never panics: any input, including an empty or fully-rejected one,
/// yields a (possibly empty) series with the rejection fully accounted.
#[must_use]
pub fn quarantine(raw: &RawSeries, cfg: &QualityConfig) -> CleanSeries {
    let mut q = DataQuality {
        n_raw: raw.len(),
        ..DataQuality::default()
    };

    // 1–2. Value screens, preserving arrival order.
    let mut pts: Vec<(f64, f64)> = Vec::with_capacity(raw.len());
    for &(t, v) in raw.points() {
        if !t.is_finite() || !v.is_finite() {
            q.non_finite_removed += 1;
        } else if v > cfg.max_plausible_w {
            q.spikes_removed += 1;
        } else if v < cfg.min_plausible_w {
            q.resets_removed += 1;
        } else {
            pts.push((t, v));
        }
    }

    // 3. Order repair: count strict inversions between adjacent arrivals,
    // then stable-sort so equal timestamps keep arrival order.
    q.order_violations = pts.windows(2).filter(|w| w[1].0 < w[0].0).count();
    pts.sort_by(|a, b| a.0.total_cmp(&b.0));

    // 4. Keep-last dedup: the later arrival supersedes earlier ones.
    let mut deduped: Vec<(f64, f64)> = Vec::with_capacity(pts.len());
    for p in pts {
        match deduped.last_mut() {
            Some(last) if last.0 == p.0 => {
                *last = p;
                q.duplicates_resolved += 1;
            }
            _ => deduped.push(p),
        }
    }

    // 5. Stuck-sensor collapse: a run of >= stuck_run_min bitwise-equal
    // values carries one real reading; the held repeats are dropped.
    let kept = if cfg.stuck_run_min == usize::MAX {
        deduped
    } else {
        let mut kept: Vec<(f64, f64)> = Vec::with_capacity(deduped.len());
        let mut i = 0;
        while i < deduped.len() {
            let mut j = i + 1;
            while j < deduped.len() && deduped[j].1 == deduped[i].1 {
                j += 1;
            }
            let run = j - i;
            if run >= cfg.stuck_run_min {
                kept.push(deduped[i]);
                q.stuck_runs += 1;
                q.stuck_removed += run - 1;
            } else {
                kept.extend_from_slice(&deduped[i..j]);
            }
            i = j;
        }
        kept
    };

    // 6. Gap & coverage statistics.
    q.n_kept = kept.len();
    let nominal = cfg.nominal_interval_s;
    for w in kept.windows(2) {
        let gap = w[1].0 - w[0].0;
        q.longest_gap_s = q.longest_gap_s.max(gap);
        let ratio = gap / nominal;
        let bucket = if ratio < 1.5 {
            0
        } else if ratio < 4.0 {
            1
        } else if ratio < 16.0 {
            2
        } else {
            3
        };
        q.gap_hist[bucket] += 1;
        if ratio > cfg.gap_factor {
            q.dropout_gaps += 1;
        }
    }
    q.coverage = match kept.len() {
        0 => 0.0,
        1 => 1.0,
        n => {
            let span = kept[n - 1].0 - kept[0].0;
            let expected = (span / nominal).round() as usize + 1;
            (n as f64 / expected.max(n) as f64).min(1.0)
        }
    };

    vpp_substrate::trace::counter("telemetry.ingest.raw", q.n_raw as u64);
    vpp_substrate::trace::counter("telemetry.ingest.kept", q.n_kept as u64);
    vpp_substrate::trace::counter("telemetry.ingest.quarantined", q.removed() as u64);

    let (times, values): (Vec<f64>, Vec<f64>) = kept.into_iter().unzip();
    CleanSeries {
        series: TimeSeries::new(times, values),
        quality: q,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> QualityConfig {
        QualityConfig::new(1.0)
    }

    fn ramp(n: usize) -> RawSeries {
        RawSeries::from_points((0..n).map(|i| (i as f64, 100.0 + i as f64)).collect())
    }

    #[test]
    fn clean_input_passes_untouched() {
        let raw = ramp(20);
        let c = quarantine(&raw, &cfg());
        assert_eq!(c.series.len(), 20);
        assert!(c.quality.is_clean(), "{:?}", c.quality);
        assert_eq!(c.quality.coverage, 1.0);
        assert_eq!(c.quality.gap_hist, [19, 0, 0, 0]);
    }

    #[test]
    fn non_finite_values_are_screened_and_counted() {
        let mut raw = ramp(10);
        raw.push(3.5, f64::NAN);
        raw.push(4.5, f64::INFINITY);
        let c = quarantine(&raw, &cfg());
        assert_eq!(c.quality.non_finite_removed, 2);
        assert_eq!(c.series.len(), 10);
        assert!(c.series.values().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn spikes_and_resets_use_separate_buckets() {
        let mut raw = ramp(10);
        raw.push(3.5, 2e5); // spike
        raw.push(4.5, 0.0); // counter reset
        let c = quarantine(&raw, &cfg());
        assert_eq!(c.quality.spikes_removed, 1);
        assert_eq!(c.quality.resets_removed, 1);
        assert_eq!(c.series.len(), 10);
    }

    #[test]
    fn duplicates_keep_the_last_arrival() {
        let raw = RawSeries::from_points(vec![(0.0, 10.0), (1.0, 20.0), (1.0, 99.0), (2.0, 30.0)]);
        let c = quarantine(&raw, &cfg());
        assert_eq!(c.quality.duplicates_resolved, 1);
        assert_eq!(c.series.values(), &[10.0, 99.0, 30.0]);
    }

    #[test]
    fn out_of_order_arrivals_are_counted_and_sorted() {
        let raw = RawSeries::from_points(vec![(0.0, 10.0), (2.0, 30.0), (1.0, 20.0), (3.0, 40.0)]);
        let c = quarantine(&raw, &cfg());
        assert_eq!(c.quality.order_violations, 1);
        assert_eq!(c.series.times(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn stuck_runs_collapse_to_first_sample() {
        let mut pts: Vec<(f64, f64)> = (0..6).map(|i| (i as f64, 100.0 + i as f64)).collect();
        pts.extend((6..11).map(|i| (i as f64, 200.0))); // 5 held readings
        pts.extend((11..14).map(|i| (i as f64, 100.0 + i as f64)));
        let c = quarantine(&RawSeries::from_points(pts), &cfg());
        assert_eq!(c.quality.stuck_runs, 1);
        assert_eq!(c.quality.stuck_removed, 4);
        assert_eq!(c.series.len(), 14 - 4);
    }

    #[test]
    fn stuck_detection_can_be_disabled() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 200.0)).collect();
        let c = quarantine(
            &RawSeries::from_points(pts),
            &cfg().without_stuck_detection(),
        );
        assert_eq!(c.quality.stuck_runs, 0);
        assert_eq!(c.series.len(), 10);
    }

    #[test]
    fn dropout_gaps_reduce_coverage() {
        // 0..10 with 11..=14 missing, then 15..20: one 5 s gap.
        let pts: Vec<(f64, f64)> = (0..=10)
            .chain(15..=20)
            .map(|i| (i as f64, 150.0 + (i % 3) as f64))
            .collect();
        let c = quarantine(&RawSeries::from_points(pts), &cfg());
        assert_eq!(c.quality.dropout_gaps, 1);
        assert_eq!(c.quality.longest_gap_s, 5.0);
        assert_eq!(c.quality.gap_hist, [15, 0, 1, 0]);
        // 17 kept of 21 expected over the 20 s span.
        assert!((c.quality.coverage - 17.0 / 21.0).abs() < 1e-12);
    }

    #[test]
    fn removal_buckets_account_for_every_point() {
        let mut raw = ramp(30);
        raw.push(2.5, f64::NAN);
        raw.push(3.5, 1e6);
        raw.push(4.5, -5.0);
        raw.push(7.0, 123.0); // duplicate of t=7
        let q = quarantine(&raw, &cfg()).quality;
        assert_eq!(
            q.n_raw,
            q.n_kept
                + q.non_finite_removed
                + q.spikes_removed
                + q.resets_removed
                + q.duplicates_resolved
                + q.stuck_removed
        );
    }

    #[test]
    fn empty_and_fully_rejected_inputs_are_safe() {
        let c = quarantine(&RawSeries::new(), &cfg());
        assert!(c.series.is_empty());
        assert_eq!(c.quality.coverage, 0.0);

        let raw = RawSeries::from_points(vec![(0.0, f64::NAN), (1.0, f64::NAN)]);
        let c = quarantine(&raw, &cfg());
        assert!(c.series.is_empty());
        assert_eq!(c.quality.non_finite_removed, 2);
    }

    #[test]
    fn single_survivor_has_full_coverage_by_convention() {
        let c = quarantine(&RawSeries::from_points(vec![(5.0, 100.0)]), &cfg());
        assert_eq!(c.quality.coverage, 1.0);
        assert_eq!(c.quality.longest_gap_s, 0.0);
    }

    #[test]
    fn display_is_single_line() {
        let q = quarantine(&ramp(5), &cfg()).quality;
        let text = q.to_string();
        assert!(text.contains("coverage"));
        assert!(!text.contains('\n'));
    }
}
