//! Deterministic fault injection for telemetry series.
//!
//! Real GPU power telemetry is not merely lossy: sensors stick, readings
//! glitch to NaN or implausible spikes, node clocks skew and jitter,
//! energy counters reset, and racing collection daemons deliver samples
//! out of order or twice ("Part-time Power Measurements", Yang et al.
//! 2023). A [`FaultPlan`] corrupts a clean [`TimeSeries`] with a seeded,
//! reproducible mix of those pathology classes and returns the exact
//! [`FaultLog`] of what it did, so the quarantine layer
//! ([`crate::quality`]) can be tested against ground truth: every count
//! in the resulting [`DataQuality`](crate::DataQuality) report must match
//! the log.

use crate::quality::RawSeries;
use crate::series::TimeSeries;
use vpp_sim::Rng;

/// Exact counts of the faults actually injected. Fields mirror the
/// [`DataQuality`](crate::DataQuality) buckets they should surface in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultLog {
    /// Dropout bursts removed (each produces one detectable gap).
    pub dropout_bursts: usize,
    /// Samples removed by all bursts together.
    pub dropped_samples: usize,
    /// Stuck-sensor runs written.
    pub stuck_runs: usize,
    /// Samples overwritten with the held value (run length − 1 each).
    pub stuck_extra: usize,
    /// Readings replaced with NaN.
    pub nan_glitches: usize,
    /// Readings replaced with an implausible spike.
    pub spike_glitches: usize,
    /// Readings zeroed by a counter reset.
    pub counter_resets: usize,
    /// Samples whose timestamps were jittered.
    pub jittered: usize,
    /// Samples whose timestamps were skewed/drifted.
    pub skewed: usize,
    /// Adjacent-pair swaps applied (each is one arrival-order inversion).
    pub swaps: usize,
    /// Duplicate-timestamp arrivals appended.
    pub duplicates: usize,
}

/// A seeded recipe of telemetry pathologies. Build with [`FaultPlan::none`]
/// plus the `with_*` setters, or start from [`FaultPlan::chaos`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for every stochastic placement decision.
    pub seed: u64,
    /// Number of contiguous dropout bursts to remove.
    pub dropout_bursts: usize,
    /// Samples per dropout burst.
    pub dropout_burst_len: usize,
    /// Number of stuck-sensor runs to write.
    pub stuck_runs: usize,
    /// Samples per stuck run (the first keeps its true value; the rest
    /// repeat it).
    pub stuck_run_len: usize,
    /// Isolated NaN glitches.
    pub nan_glitches: usize,
    /// Isolated spike glitches.
    pub spike_glitches: usize,
    /// Spike amplitude, watts (must exceed the quarantine's plausible
    /// band to be detectable).
    pub spike_w: f64,
    /// Isolated counter-reset readings (value forced to 0).
    pub counter_resets: usize,
    /// Timestamp jitter amplitude as a fraction of the smallest
    /// inter-sample gap; capped at 0.49 so sample order is preserved.
    pub clock_jitter_frac: f64,
    /// Constant clock offset added to every timestamp, seconds.
    pub clock_skew_s: f64,
    /// Linear clock drift: each timestamp `t` becomes
    /// `skew + t·(1 + drift)`.
    pub clock_drift_per_s: f64,
    /// Adjacent-pair delivery swaps (out-of-order arrivals).
    pub swaps: usize,
    /// Duplicate-timestamp deliveries (the racing-producer case; the
    /// duplicate arrives later with a perturbed value).
    pub duplicates: usize,
}

impl FaultPlan {
    /// The identity plan: inject nothing.
    #[must_use]
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            dropout_bursts: 0,
            dropout_burst_len: 0,
            stuck_runs: 0,
            stuck_run_len: 0,
            nan_glitches: 0,
            spike_glitches: 0,
            spike_w: 1e5,
            counter_resets: 0,
            clock_jitter_frac: 0.0,
            clock_skew_s: 0.0,
            clock_drift_per_s: 0.0,
            swaps: 0,
            duplicates: 0,
        }
    }

    /// Every pathology class at once — the worst realistic day on the
    /// cluster, for chaos tests and examples.
    #[must_use]
    pub fn chaos(seed: u64) -> Self {
        Self::none(seed)
            .with_dropouts(3, 4)
            .with_stuck(2, 5)
            .with_nans(4)
            .with_spikes(3)
            .with_resets(2)
            .with_jitter(0.2)
            .with_skew(0.5, 1e-4)
            .with_swaps(3)
            .with_duplicates(3)
    }

    /// `bursts` dropout bursts of `len` consecutive samples each.
    #[must_use]
    pub fn with_dropouts(mut self, bursts: usize, len: usize) -> Self {
        self.dropout_bursts = bursts;
        self.dropout_burst_len = len;
        self
    }

    /// `runs` stuck-sensor runs of `len` samples each.
    #[must_use]
    pub fn with_stuck(mut self, runs: usize, len: usize) -> Self {
        self.stuck_runs = runs;
        self.stuck_run_len = len;
        self
    }

    /// `n` isolated NaN readings.
    #[must_use]
    pub fn with_nans(mut self, n: usize) -> Self {
        self.nan_glitches = n;
        self
    }

    /// `n` isolated spike readings.
    #[must_use]
    pub fn with_spikes(mut self, n: usize) -> Self {
        self.spike_glitches = n;
        self
    }

    /// `n` isolated counter-reset (zero) readings.
    #[must_use]
    pub fn with_resets(mut self, n: usize) -> Self {
        self.counter_resets = n;
        self
    }

    /// Timestamp jitter of `frac` × the smallest inter-sample gap.
    #[must_use]
    pub fn with_jitter(mut self, frac: f64) -> Self {
        self.clock_jitter_frac = frac;
        self
    }

    /// Clock skew (constant offset) and linear drift.
    #[must_use]
    pub fn with_skew(mut self, offset_s: f64, drift_per_s: f64) -> Self {
        self.clock_skew_s = offset_s;
        self.clock_drift_per_s = drift_per_s;
        self
    }

    /// `n` adjacent-pair delivery swaps.
    #[must_use]
    pub fn with_swaps(mut self, n: usize) -> Self {
        self.swaps = n;
        self
    }

    /// `n` duplicate-timestamp deliveries.
    #[must_use]
    pub fn with_duplicates(mut self, n: usize) -> Self {
        self.duplicates = n;
        self
    }

    /// Corrupt `series` according to the plan. Returns the raw (dirty)
    /// arrival stream and the exact log of what was injected.
    ///
    /// Placement is rejection-sampled into disjoint, non-adjacent slots,
    /// so fault classes never overlap and each injected fault is
    /// independently detectable. On a series too short to host the full
    /// plan, fewer faults are injected — the log always records what
    /// actually happened.
    #[must_use]
    pub fn inject(&self, series: &TimeSeries) -> (RawSeries, FaultLog) {
        let mut rng = Rng::new(self.seed);
        let mut log = FaultLog::default();
        let mut pts: Vec<(f64, f64)> = series
            .times()
            .iter()
            .copied()
            .zip(series.values().iter().copied())
            .collect();
        let n = pts.len();
        // One shared occupancy mask keeps every fault site (and a 1-slot
        // separation buffer) disjoint from every other.
        let mut used = vec![false; n];

        // -- Value faults ------------------------------------------------
        for _ in 0..self.stuck_runs {
            if self.stuck_run_len < 2 {
                break;
            }
            if let Some(s) = pick_run(&mut rng, &mut used, self.stuck_run_len, 1) {
                let held = pts[s].1;
                for p in &mut pts[s + 1..s + self.stuck_run_len] {
                    p.1 = held;
                }
                log.stuck_runs += 1;
                log.stuck_extra += self.stuck_run_len - 1;
            }
        }
        let singles = [
            (self.nan_glitches, f64::NAN),
            (self.spike_glitches, self.spike_w),
            (self.counter_resets, 0.0),
        ];
        let mut injected = [0usize; 3];
        for (class, &(count, value)) in singles.iter().enumerate() {
            for _ in 0..count {
                if let Some(s) = pick_run(&mut rng, &mut used, 1, 1) {
                    pts[s].1 = value;
                    injected[class] += 1;
                }
            }
        }
        log.nan_glitches = injected[0];
        log.spike_glitches = injected[1];
        log.counter_resets = injected[2];

        // -- Clock faults ------------------------------------------------
        if self.clock_jitter_frac > 0.0 && n >= 2 {
            let min_gap = pts
                .windows(2)
                .map(|w| w[1].0 - w[0].0)
                .fold(f64::INFINITY, f64::min);
            let amp = self.clock_jitter_frac.min(0.49) * min_gap;
            for p in &mut pts {
                p.0 += rng.uniform(-amp, amp);
                log.jittered += 1;
            }
        }
        if self.clock_skew_s != 0.0 || self.clock_drift_per_s != 0.0 {
            for p in &mut pts {
                p.0 = self.clock_skew_s + p.0 * (1.0 + self.clock_drift_per_s);
                log.skewed += 1;
            }
        }

        // -- Structural faults -------------------------------------------
        // Dropout bursts: interior ranges only (margin 1), so every burst
        // leaves a detectable gap between surviving neighbours.
        let mut burst_starts = Vec::new();
        for _ in 0..self.dropout_bursts {
            if self.dropout_burst_len == 0 {
                break;
            }
            if let Some(s) = pick_run_interior(&mut rng, &mut used, self.dropout_burst_len, 1) {
                burst_starts.push(s);
                log.dropout_bursts += 1;
                log.dropped_samples += self.dropout_burst_len;
            }
        }
        if !burst_starts.is_empty() {
            let drop = |i: usize| {
                burst_starts
                    .iter()
                    .any(|&s| i >= s && i < s + self.dropout_burst_len)
            };
            let mut kept = Vec::with_capacity(pts.len() - log.dropped_samples);
            let mut kept_used = Vec::with_capacity(used.len());
            for (i, p) in pts.into_iter().enumerate() {
                if !drop(i) {
                    kept.push(p);
                    kept_used.push(used[i]);
                }
            }
            pts = kept;
            used = kept_used;
        }

        // Out-of-order delivery: swap adjacent pairs at disjoint sites.
        for _ in 0..self.swaps {
            if let Some(s) = pick_run(&mut rng, &mut used, 2, 1) {
                pts.swap(s, s + 1);
                log.swaps += 1;
            }
        }

        // Duplicate delivery: a racing producer re-sends timestamp `t`
        // with a slightly different reading; the re-send arrives later.
        let mut dup_sites = Vec::new();
        for _ in 0..self.duplicates {
            if let Some(s) = pick_run(&mut rng, &mut used, 1, 1) {
                dup_sites.push(s);
            }
        }
        dup_sites.sort_unstable_by(|a, b| b.cmp(a));
        for s in dup_sites {
            let (t, v) = pts[s];
            pts.insert(s + 1, (t, v + rng.uniform(0.5, 3.0)));
            log.duplicates += 1;
        }

        (RawSeries::from_points(pts), log)
    }
}

/// Draw a run of `len` unused indices with `sep` untouched slots on each
/// side, anywhere in the series. Marks the run (and its buffer) used.
fn pick_run(rng: &mut Rng, used: &mut [bool], len: usize, sep: usize) -> Option<usize> {
    pick_run_margin(rng, used, len, sep, 0)
}

/// As [`pick_run`], but excludes the first and last `margin` indices so
/// the run is strictly interior.
fn pick_run_interior(rng: &mut Rng, used: &mut [bool], len: usize, margin: usize) -> Option<usize> {
    pick_run_margin(rng, used, len, 1, margin)
}

fn pick_run_margin(
    rng: &mut Rng,
    used: &mut [bool],
    len: usize,
    sep: usize,
    margin: usize,
) -> Option<usize> {
    let n = used.len();
    if n < len + 2 * margin || len == 0 {
        return None;
    }
    let lo = margin;
    let hi = n - margin - len; // inclusive upper bound for the start
    for _ in 0..128 {
        let s = lo + rng.index(hi - lo + 1);
        let guard_lo = s.saturating_sub(sep);
        let guard_hi = (s + len + sep).min(n);
        if used[guard_lo..guard_hi].iter().any(|&u| u) {
            continue;
        }
        for u in &mut used[guard_lo..guard_hi] {
            *u = true;
        }
        return Some(s);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(n: usize) -> TimeSeries {
        let times: Vec<f64> = (0..n).map(|i| i as f64).collect();
        // Strictly varying values: no accidental stuck runs.
        let values: Vec<f64> = (0..n).map(|i| 1500.0 + (i % 17) as f64 * 3.0).collect();
        TimeSeries::new(times, values)
    }

    #[test]
    fn none_plan_is_identity() {
        let s = base(50);
        let (raw, log) = FaultPlan::none(1).inject(&s);
        assert_eq!(log, FaultLog::default());
        assert_eq!(raw.points().len(), 50);
        assert_eq!(raw, crate::quality::RawSeries::from_series(&s));
    }

    /// Bitwise point equality — `PartialEq` is useless once NaN glitches
    /// are in the stream.
    fn bits_eq(a: &crate::quality::RawSeries, b: &crate::quality::RawSeries) -> bool {
        a.len() == b.len()
            && a.points().iter().zip(b.points()).all(|(x, y)| {
                x.0.to_bits() == y.0.to_bits() && x.1.to_bits() == y.1.to_bits()
            })
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let s = base(200);
        let plan = FaultPlan::chaos(42);
        let (a, la) = plan.inject(&s);
        let (b, lb) = plan.inject(&s);
        assert_eq!(la, lb);
        assert!(bits_eq(&a, &b), "same seed must corrupt identically");
        let (c, _) = FaultPlan::chaos(43).inject(&s);
        assert!(!bits_eq(&a, &c), "distinct seeds must corrupt differently");
    }

    #[test]
    fn log_counts_match_observable_corruption() {
        let s = base(300);
        let plan = FaultPlan::none(7).with_nans(5).with_spikes(4).with_resets(3);
        let (raw, log) = plan.inject(&s);
        assert_eq!(log.nan_glitches, 5);
        assert_eq!(log.spike_glitches, 4);
        assert_eq!(log.counter_resets, 3);
        let nans = raw.points().iter().filter(|p| p.1.is_nan()).count();
        let spikes = raw.points().iter().filter(|p| p.1 >= 1e5).count();
        let zeros = raw.points().iter().filter(|p| p.1 == 0.0).count();
        assert_eq!((nans, spikes, zeros), (5, 4, 3));
    }

    #[test]
    fn short_series_injects_what_fits_and_logs_it() {
        let s = base(4);
        let (raw, log) = FaultPlan::none(3).with_dropouts(10, 3).inject(&s);
        assert!(log.dropout_bursts <= 1, "log: {log:?}");
        assert_eq!(raw.len(), 4 - log.dropped_samples);
    }

    #[test]
    fn jitter_preserves_sample_order() {
        let s = base(100);
        let (raw, log) = FaultPlan::none(9).with_jitter(0.4).inject(&s);
        assert_eq!(log.jittered, 100);
        assert!(raw.points().windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn swaps_create_exactly_one_inversion_each() {
        let s = base(120);
        let (raw, log) = FaultPlan::none(11).with_swaps(6).inject(&s);
        assert_eq!(log.swaps, 6);
        let inversions = raw.points().windows(2).filter(|w| w[1].0 < w[0].0).count();
        assert_eq!(inversions, 6);
    }
}
