//! Automated node screening.
//!
//! The paper's protocol runs DGEMM/STREAM before VASP and re-runs each
//! benchmark five times "to exclude the runs manifesting relatively larger
//! manufactural differences in hardware devices" (§III-B.1) — a manual
//! screen. This module automates it: given the per-node series of one job
//! (identical work per node), flag nodes whose power deviates from the
//! fleet by more than a robust z-score threshold.

use crate::quality::CleanSeries;
use crate::series::TimeSeries;

/// Verdict for one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeVerdict {
    pub node: usize,
    /// Mean power over the compared window, watts.
    pub mean_w: f64,
    /// Robust z-score against the fleet median.
    pub z_score: f64,
    /// Flagged as an outlier?
    pub outlier: bool,
    /// Flagged because its telemetry coverage was too low to trust
    /// (only set by [`Screener::screen_quarantined`]).
    pub low_coverage: bool,
}

/// Screening configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Screener {
    /// |z| above which a node is flagged.
    pub z_threshold: f64,
}

impl Screener {
    /// The default threshold (|z| ≥ 3.5, the standard MAD-based cut).
    #[must_use]
    pub fn default_threshold() -> Self {
        Self { z_threshold: 3.5 }
    }

    /// Screen per-node series of one load-balanced job.
    ///
    /// Uses the median/MAD robust z-score so a single bad node cannot mask
    /// itself by inflating the spread estimate.
    ///
    /// # Panics
    /// If fewer than three nodes are provided (no basis for comparison).
    #[must_use]
    pub fn screen(&self, per_node: &[TimeSeries]) -> Vec<NodeVerdict> {
        assert!(
            per_node.len() >= 3,
            "screening needs at least 3 nodes, got {}",
            per_node.len()
        );
        let means: Vec<f64> = per_node.iter().map(TimeSeries::mean).collect();
        let mut sorted = means.clone();
        sorted.sort_by(f64::total_cmp);
        let median = median_of_sorted(&sorted);
        let mut devs: Vec<f64> = means.iter().map(|m| (m - median).abs()).collect();
        devs.sort_by(f64::total_cmp);
        let mad = median_of_sorted(&devs).max(1e-9);
        // 1.4826 · MAD ≈ σ for normal data.
        let sigma = 1.4826 * mad;
        let verdicts: Vec<NodeVerdict> = means
            .iter()
            .enumerate()
            .map(|(node, &mean_w)| {
                let z_score = (mean_w - median) / sigma;
                NodeVerdict {
                    node,
                    mean_w,
                    z_score,
                    outlier: z_score.abs() >= self.z_threshold,
                    low_coverage: false,
                }
            })
            .collect();
        vpp_substrate::trace::counter("screening.nodes", verdicts.len() as u64);
        for v in verdicts.iter().filter(|v| v.outlier) {
            vpp_substrate::trace::counter("screening.outliers", 1);
            vpp_substrate::trace::mark_with("screening.outlier", || {
                vec![
                    ("node", v.node.into()),
                    ("mean_w", v.mean_w.into()),
                    ("z_score", v.z_score.into()),
                ]
            });
        }
        verdicts
    }

    /// Screen quarantined per-node series, additionally flagging nodes
    /// whose telemetry [`coverage`](crate::DataQuality::coverage) fell
    /// below `min_coverage`: their means cannot be trusted, so they are
    /// marked outliers with `low_coverage` set — the automated version of
    /// the paper's "re-run the variant node" rule (§III-B.1).
    ///
    /// # Panics
    /// If fewer than three nodes are provided.
    #[must_use]
    pub fn screen_quarantined(
        &self,
        per_node: &[CleanSeries],
        min_coverage: f64,
    ) -> Vec<NodeVerdict> {
        let series: Vec<TimeSeries> = per_node.iter().map(|c| c.series.clone()).collect();
        let mut verdicts = self.screen(&series);
        for (v, c) in verdicts.iter_mut().zip(per_node) {
            if c.quality.coverage < min_coverage {
                v.low_coverage = true;
                v.outlier = true;
                vpp_substrate::trace::counter("screening.low_coverage", 1);
            }
        }
        verdicts
    }

    /// Indices of flagged nodes.
    #[must_use]
    pub fn outliers(&self, per_node: &[TimeSeries]) -> Vec<usize> {
        self.screen(per_node)
            .into_iter()
            .filter(|v| v.outlier)
            .map(|v| v.node)
            .collect()
    }
}

impl Default for Screener {
    fn default() -> Self {
        Self::default_threshold()
    }
}

/// Median of an already-sorted slice: the average of the two middles for
/// an even count (the upper middle alone biases every even-fleet z-score).
fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n.is_multiple_of(2) {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    } else {
        sorted[n / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(mean: f64, n: usize) -> TimeSeries {
        let times: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let values: Vec<f64> = (0..n).map(|i| mean + ((i * 13) % 7) as f64 - 3.0).collect();
        TimeSeries::new(times, values)
    }

    #[test]
    fn healthy_fleet_has_no_outliers() {
        let nodes: Vec<TimeSeries> = [1800.0, 1812.0, 1795.0, 1805.0, 1808.0]
            .iter()
            .map(|&m| series(m, 50))
            .collect();
        assert!(Screener::default().outliers(&nodes).is_empty());
    }

    #[test]
    fn hot_node_is_flagged() {
        let nodes: Vec<TimeSeries> = [1800.0, 1804.0, 1797.0, 1960.0, 1801.0]
            .iter()
            .map(|&m| series(m, 50))
            .collect();
        let out = Screener::default().outliers(&nodes);
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn cold_node_is_flagged_too() {
        // A throttling/underperforming node draws *less* power.
        let nodes: Vec<TimeSeries> = [1800.0, 1804.0, 1620.0, 1797.0, 1801.0]
            .iter()
            .map(|&m| series(m, 50))
            .collect();
        let out = Screener::default().outliers(&nodes);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn one_outlier_cannot_mask_itself() {
        // With a classical (mean/std) z-score a single extreme node can
        // inflate σ enough to pass; MAD resists that.
        let nodes: Vec<TimeSeries> = [1800.0, 1801.0, 1799.0, 1800.5, 2500.0]
            .iter()
            .map(|&m| series(m, 50))
            .collect();
        let out = Screener::default().outliers(&nodes);
        assert_eq!(out, vec![4]);
    }

    #[test]
    fn verdicts_report_all_nodes() {
        let nodes: Vec<TimeSeries> =
            [1.0, 2.0, 3.0].iter().map(|&m| series(1000.0 + m, 20)).collect();
        let verdicts = Screener::default().screen(&nodes);
        assert_eq!(verdicts.len(), 3);
        assert!(verdicts.iter().all(|v| v.mean_w > 990.0));
    }

    #[test]
    #[should_panic(expected = "at least 3 nodes")]
    fn too_few_nodes_panics() {
        let nodes = vec![series(1.0, 10), series(2.0, 10)];
        let _ = Screener::default().screen(&nodes);
    }

    #[test]
    fn even_fleet_median_is_unbiased() {
        // Regression: `sorted[len/2]` took the upper middle for even
        // fleets, so a symmetric fleet produced asymmetric z-scores.
        let nodes: Vec<TimeSeries> = [1000.0, 1002.0, 1004.0, 1006.0]
            .iter()
            .map(|&m| {
                TimeSeries::new(vec![0.0, 1.0], vec![m, m])
            })
            .collect();
        let v = Screener::default().screen(&nodes);
        assert!(
            (v[0].z_score + v[3].z_score).abs() < 1e-9,
            "extremes must be symmetric about the median: {v:?}"
        );
        assert!(
            (v[1].z_score + v[2].z_score).abs() < 1e-9,
            "inner pair must be symmetric: {v:?}"
        );
        // Median = 1003, MAD = (1+3)/2 = 2 → z = ±3/(1.4826·2), ±1/(1.4826·2).
        assert!((v[3].z_score - 3.0 / (1.4826 * 2.0)).abs() < 1e-9, "{v:?}");
    }

    #[test]
    fn even_fleet_hot_node_is_still_flagged() {
        let nodes: Vec<TimeSeries> = [1800.0, 1804.0, 1797.0, 1801.0, 1960.0, 1799.0]
            .iter()
            .map(|&m| series(m, 50))
            .collect();
        assert_eq!(Screener::default().outliers(&nodes), vec![4]);
    }

    #[test]
    fn low_coverage_node_is_quarantine_flagged() {
        use crate::quality::{quarantine, QualityConfig, RawSeries};
        let cfg = QualityConfig::new(1.0);
        let full: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, 1800.0 + (i % 5) as f64)).collect();
        // Node 2 lost most of its samples: same span, huge gaps.
        let sparse: Vec<(f64, f64)> =
            (0..50).step_by(10).map(|i| (i as f64, 1801.0 + (i % 7) as f64)).collect();
        let per_node = vec![
            quarantine(&RawSeries::from_points(full.clone()), &cfg),
            quarantine(&RawSeries::from_points(full), &cfg),
            quarantine(&RawSeries::from_points(sparse), &cfg),
        ];
        let v = Screener::default().screen_quarantined(&per_node, 0.5);
        assert!(!v[0].low_coverage && !v[1].low_coverage);
        assert!(v[2].low_coverage && v[2].outlier, "{v:?}");
    }
}
