//! Automated node screening.
//!
//! The paper's protocol runs DGEMM/STREAM before VASP and re-runs each
//! benchmark five times "to exclude the runs manifesting relatively larger
//! manufactural differences in hardware devices" (§III-B.1) — a manual
//! screen. This module automates it: given the per-node series of one job
//! (identical work per node), flag nodes whose power deviates from the
//! fleet by more than a robust z-score threshold.

use crate::series::TimeSeries;

/// Verdict for one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeVerdict {
    pub node: usize,
    /// Mean power over the compared window, watts.
    pub mean_w: f64,
    /// Robust z-score against the fleet median.
    pub z_score: f64,
    /// Flagged as an outlier?
    pub outlier: bool,
}

/// Screening configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Screener {
    /// |z| above which a node is flagged.
    pub z_threshold: f64,
}

impl Screener {
    /// The default threshold (|z| ≥ 3.5, the standard MAD-based cut).
    #[must_use]
    pub fn default_threshold() -> Self {
        Self { z_threshold: 3.5 }
    }

    /// Screen per-node series of one load-balanced job.
    ///
    /// Uses the median/MAD robust z-score so a single bad node cannot mask
    /// itself by inflating the spread estimate.
    ///
    /// # Panics
    /// If fewer than three nodes are provided (no basis for comparison).
    #[must_use]
    pub fn screen(&self, per_node: &[TimeSeries]) -> Vec<NodeVerdict> {
        assert!(
            per_node.len() >= 3,
            "screening needs at least 3 nodes, got {}",
            per_node.len()
        );
        let means: Vec<f64> = per_node.iter().map(TimeSeries::mean).collect();
        let mut sorted = means.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        let mut devs: Vec<f64> = means.iter().map(|m| (m - median).abs()).collect();
        devs.sort_by(f64::total_cmp);
        let mad = devs[devs.len() / 2].max(1e-9);
        // 1.4826 · MAD ≈ σ for normal data.
        let sigma = 1.4826 * mad;
        means
            .iter()
            .enumerate()
            .map(|(node, &mean_w)| {
                let z_score = (mean_w - median) / sigma;
                NodeVerdict {
                    node,
                    mean_w,
                    z_score,
                    outlier: z_score.abs() >= self.z_threshold,
                }
            })
            .collect()
    }

    /// Indices of flagged nodes.
    #[must_use]
    pub fn outliers(&self, per_node: &[TimeSeries]) -> Vec<usize> {
        self.screen(per_node)
            .into_iter()
            .filter(|v| v.outlier)
            .map(|v| v.node)
            .collect()
    }
}

impl Default for Screener {
    fn default() -> Self {
        Self::default_threshold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(mean: f64, n: usize) -> TimeSeries {
        let times: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let values: Vec<f64> = (0..n).map(|i| mean + ((i * 13) % 7) as f64 - 3.0).collect();
        TimeSeries::new(times, values)
    }

    #[test]
    fn healthy_fleet_has_no_outliers() {
        let nodes: Vec<TimeSeries> = [1800.0, 1812.0, 1795.0, 1805.0, 1808.0]
            .iter()
            .map(|&m| series(m, 50))
            .collect();
        assert!(Screener::default().outliers(&nodes).is_empty());
    }

    #[test]
    fn hot_node_is_flagged() {
        let nodes: Vec<TimeSeries> = [1800.0, 1804.0, 1797.0, 1960.0, 1801.0]
            .iter()
            .map(|&m| series(m, 50))
            .collect();
        let out = Screener::default().outliers(&nodes);
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn cold_node_is_flagged_too() {
        // A throttling/underperforming node draws *less* power.
        let nodes: Vec<TimeSeries> = [1800.0, 1804.0, 1620.0, 1797.0, 1801.0]
            .iter()
            .map(|&m| series(m, 50))
            .collect();
        let out = Screener::default().outliers(&nodes);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn one_outlier_cannot_mask_itself() {
        // With a classical (mean/std) z-score a single extreme node can
        // inflate σ enough to pass; MAD resists that.
        let nodes: Vec<TimeSeries> = [1800.0, 1801.0, 1799.0, 1800.5, 2500.0]
            .iter()
            .map(|&m| series(m, 50))
            .collect();
        let out = Screener::default().outliers(&nodes);
        assert_eq!(out, vec![4]);
    }

    #[test]
    fn verdicts_report_all_nodes() {
        let nodes: Vec<TimeSeries> =
            [1.0, 2.0, 3.0].iter().map(|&m| series(1000.0 + m, 20)).collect();
        let verdicts = Screener::default().screen(&nodes);
        assert_eq!(verdicts.len(), 3);
        assert!(verdicts.iter().all(|v| v.mean_w > 990.0));
    }

    #[test]
    #[should_panic(expected = "at least 3 nodes")]
    fn too_few_nodes_panics() {
        let nodes = vec![series(1.0, 10), series(2.0, 10)];
        let _ = Screener::default().screen(&nodes);
    }
}
