//! Analysis queries over the archive — the role of NERSC's OMNI querying
//! scripts ([20] in the paper): per-job energy integration, fleet
//! aggregation across nodes, job-total power series, and CSV export.

use crate::series::TimeSeries;
use crate::store::{Channel, Store};

/// Aggregate statistics of one channel across all nodes of a job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetStats {
    pub nodes: usize,
    /// Mean of the per-node mean powers, watts.
    pub mean_w: f64,
    /// Lowest per-node mean, watts.
    pub min_node_mean_w: f64,
    /// Highest per-node mean, watts.
    pub max_node_mean_w: f64,
    /// Spread (max − min) of per-node means — Fig. 1's variability, watts.
    pub spread_w: f64,
}

/// Query interface layered over a [`Store`].
#[derive(Debug)]
pub struct Query<'a> {
    store: &'a Store,
}

impl<'a> Query<'a> {
    /// Wrap an archive.
    #[must_use]
    pub fn new(store: &'a Store) -> Self {
        Self { store }
    }

    /// Energy of one channel over a whole job (all nodes), joules.
    /// Returns `None` when the job is unknown.
    #[must_use]
    pub fn job_energy_j(&self, job: &str, channel: Channel) -> Option<f64> {
        let nodes = self.store.nodes_of(job);
        if nodes.is_empty() {
            return None;
        }
        Some(
            nodes
                .iter()
                .filter_map(|&n| self.store.query(job, n, channel))
                .map(|s| s.energy_estimate_j())
                .sum(),
        )
    }

    /// Per-node variability of one channel (Fig. 1-style comparison).
    #[must_use]
    pub fn fleet_stats(&self, job: &str, channel: Channel) -> Option<FleetStats> {
        let nodes = self.store.nodes_of(job);
        let means: Vec<f64> = nodes
            .iter()
            .filter_map(|&n| self.store.query(job, n, channel))
            .map(|s| s.mean())
            .collect();
        if means.is_empty() {
            return None;
        }
        let min = means.iter().copied().fold(f64::INFINITY, f64::min);
        let max = means.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(FleetStats {
            nodes: means.len(),
            mean_w: means.iter().sum::<f64>() / means.len() as f64,
            min_node_mean_w: min,
            max_node_mean_w: max,
            spread_w: max - min,
        })
    }

    /// Job-total power series: per-node series of one channel summed on
    /// their common timestamps (samples that any node dropped are skipped,
    /// as a production join would).
    #[must_use]
    pub fn job_total_series(&self, job: &str, channel: Channel) -> Option<TimeSeries> {
        let nodes = self.store.nodes_of(job);
        if nodes.is_empty() {
            return None;
        }
        let series: Vec<TimeSeries> = nodes
            .iter()
            .filter_map(|&n| self.store.query(job, n, channel))
            .collect();
        if series.len() != nodes.len() {
            return None;
        }
        // Intersect timestamps (bitwise-identical sampling grids).
        let mut common: Vec<f64> = series[0].times().to_vec();
        for s in &series[1..] {
            let set: std::collections::BTreeSet<u64> =
                s.times().iter().map(|t| t.to_bits()).collect();
            common.retain(|t| set.contains(&t.to_bits()));
        }
        let mut values = vec![0.0f64; common.len()];
        for s in &series {
            let lookup: std::collections::BTreeMap<u64, f64> = s
                .times()
                .iter()
                .zip(s.values())
                .map(|(t, v)| (t.to_bits(), *v))
                .collect();
            for (i, t) in common.iter().enumerate() {
                values[i] += lookup[&t.to_bits()];
            }
        }
        Some(TimeSeries::new(common, values))
    }

    /// Share of a job's node energy attributable to its GPUs — the
    /// paper's ">70 % for hot workloads" metric (Fig. 3).
    #[must_use]
    pub fn gpu_energy_share(&self, job: &str) -> Option<f64> {
        let node = self.job_energy_j(job, Channel::Node)?;
        if node <= 0.0 {
            return None;
        }
        let gpus: f64 = (0..4)
            .map(|g| self.job_energy_j(job, Channel::Gpu(g)).unwrap_or(0.0))
            .sum();
        Some(gpus / node)
    }
}

/// Render a series as CSV (`time_s,watts` with a header).
#[must_use]
pub fn to_csv(series: &TimeSeries) -> String {
    let mut out = String::with_capacity(series.len() * 24 + 16);
    out.push_str("time_s,watts\n");
    for (t, v) in series.times().iter().zip(series.values()) {
        out.push_str(&format!("{t:.3},{v:.3}\n"));
    }
    out
}

/// Parse CSV produced by [`to_csv`] back into a series.
///
/// # Errors
/// Returns a message naming the offending line.
pub fn from_csv(text: &str) -> Result<TimeSeries, String> {
    let mut times = Vec::new();
    let mut values = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if i == 0 {
            if line.trim() != "time_s,watts" {
                return Err(format!("line 1: bad header '{line}'"));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let (t, v) = line
            .split_once(',')
            .ok_or_else(|| format!("line {}: missing comma", i + 1))?;
        times.push(
            t.trim()
                .parse()
                .map_err(|_| format!("line {}: bad time '{t}'", i + 1))?,
        );
        values.push(
            v.trim()
                .parse()
                .map_err(|_| format!("line {}: bad value '{v}'", i + 1))?,
        );
    }
    if !times.windows(2).all(|w| w[0] < w[1]) {
        return Err("timestamps not strictly increasing".into());
    }
    Ok(TimeSeries::new(times, values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::Sampler;
    use vpp_node::ComponentTraces;
    use vpp_sim::PowerTrace;

    fn archive() -> Store {
        let store = Store::new();
        let mk = |w: f64| {
            ComponentTraces::assemble(
                PowerTrace::from_segments(0.0, [(100.0, 100.0)]),
                PowerTrace::from_segments(0.0, [(100.0, 30.0)]),
                (0..4)
                    .map(|i| PowerTrace::from_segments(0.0, [(100.0, w + i as f64)]))
                    .collect(),
                PowerTrace::from_segments(0.0, [(100.0, 150.0)]),
            )
        };
        store.ingest_job("j", &[mk(300.0), mk(310.0)], &Sampler::ideal(1.0));
        store
    }

    #[test]
    fn job_energy_sums_nodes() {
        let store = archive();
        let q = Query::new(&store);
        let cpu = q.job_energy_j("j", Channel::Cpu).unwrap();
        // 2 nodes × 100 W × ~100 s (rectangle estimate).
        assert!((cpu - 20_000.0).abs() < 500.0, "cpu energy {cpu}");
        assert!(q.job_energy_j("nope", Channel::Cpu).is_none());
    }

    #[test]
    fn fleet_stats_capture_node_spread() {
        let store = archive();
        let q = Query::new(&store);
        let s = q.fleet_stats("j", Channel::Gpu(0)).unwrap();
        assert_eq!(s.nodes, 2);
        assert!((s.min_node_mean_w - 300.0).abs() < 1e-6);
        assert!((s.max_node_mean_w - 310.0).abs() < 1e-6);
        assert!((s.spread_w - 10.0).abs() < 1e-6);
    }

    #[test]
    fn job_total_series_sums_common_samples() {
        let store = archive();
        let q = Query::new(&store);
        let total = q.job_total_series("j", Channel::Node).unwrap();
        assert!(!total.is_empty());
        // node totals: (100+30+4·301.5+150) + (... +311.5 ...) per sample.
        let expect = (100.0 + 30.0 + 4.0 * 301.5 + 150.0)
            + (100.0 + 30.0 + 4.0 * 311.5 + 150.0);
        assert!((total.values()[0] - expect).abs() < 1e-6);
    }

    #[test]
    fn gpu_share_is_most_of_a_hot_job() {
        let store = archive();
        let q = Query::new(&store);
        let share = q.gpu_energy_share("j").unwrap();
        assert!(share > 0.70 && share < 0.85, "share {share}");
    }

    #[test]
    fn csv_round_trips() {
        let s = TimeSeries::new(vec![1.0, 2.0, 3.5], vec![100.0, 200.5, 50.25]);
        let csv = to_csv(&s);
        let back = from_csv(&csv).unwrap();
        assert_eq!(back.len(), 3);
        assert!((back.values()[1] - 200.5).abs() < 1e-9);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(from_csv("nope\n1,2\n").is_err());
        assert!(from_csv("time_s,watts\n1;2\n").is_err());
        assert!(from_csv("time_s,watts\n1,abc\n").is_err());
        assert!(from_csv("time_s,watts\n2,1\n1,1\n").is_err());
    }
}
