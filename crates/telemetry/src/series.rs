//! Sampled time series.

/// A sampled power series: strictly increasing timestamps with one value
/// (watts) each. Samples may be irregular when the collector dropped data.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeSeries {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Build from parallel vectors.
    ///
    /// # Panics
    /// If lengths differ or timestamps are not strictly increasing.
    #[must_use]
    pub fn new(times: Vec<f64>, values: Vec<f64>) -> Self {
        assert_eq!(times.len(), values.len(), "length mismatch");
        assert!(
            times.windows(2).all(|w| w[0] < w[1]),
            "timestamps must be strictly increasing"
        );
        Self { times, values }
    }

    /// Empty series.
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when no samples are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Timestamps, seconds.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sampled values, watts.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Arithmetic mean of the values.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Largest sample.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Smallest sample.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Largest interval between consecutive samples, seconds. The paper
    /// notes their effective cadence never exceeded 5 s despite drops.
    #[must_use]
    pub fn max_gap_s(&self) -> Option<f64> {
        self.times
            .windows(2)
            .map(|w| w[1] - w[0])
            .reduce(f64::max)
    }

    /// Mean interval between consecutive samples, seconds — the "effective
    /// sampling interval" in the paper's sense (nominal 1 s with 50 % drops
    /// gives ≈2 s here).
    #[must_use]
    pub fn mean_interval_s(&self) -> Option<f64> {
        if self.times.len() < 2 {
            return None;
        }
        let span = self.times[self.times.len() - 1] - self.times[0];
        Some(span / (self.times.len() - 1) as f64)
    }

    /// Median interval between consecutive samples, seconds.
    #[must_use]
    pub fn median_interval_s(&self) -> Option<f64> {
        if self.times.len() < 2 {
            return None;
        }
        let mut gaps: Vec<f64> = self.times.windows(2).map(|w| w[1] - w[0]).collect();
        gaps.sort_by(f64::total_cmp);
        Some(gaps[gaps.len() / 2])
    }

    /// Down-sample by averaging non-overlapping groups of `factor`
    /// consecutive samples (how the paper derives coarser rates from the
    /// 0.1 s capture in Fig. 2). The group timestamp is the group mean.
    ///
    /// When `len % factor != 0` the final partial group (fewer than
    /// `factor` samples) is averaged and emitted as the last sample rather
    /// than silently discarded; in the degenerate `factor > len` case the
    /// result is that single partial group — the mean of the whole series.
    ///
    /// # Panics
    /// If `factor == 0`.
    #[must_use]
    pub fn downsample(&self, factor: usize) -> TimeSeries {
        assert!(factor > 0, "factor must be positive");
        if factor == 1 {
            return self.clone();
        }
        let n = self.times.len().div_ceil(factor);
        let mut times = Vec::with_capacity(n);
        let mut values = Vec::with_capacity(n);
        let mut lo = 0;
        while lo < self.times.len() {
            let hi = (lo + factor).min(self.times.len());
            let size = (hi - lo) as f64;
            times.push(self.times[lo..hi].iter().sum::<f64>() / size);
            values.push(self.values[lo..hi].iter().sum::<f64>() / size);
            lo = hi;
        }
        TimeSeries::new(times, values)
    }

    /// Restrict to samples with `t0 <= t < t1`.
    #[must_use]
    pub fn window(&self, t0: f64, t1: f64) -> TimeSeries {
        let mut times = Vec::new();
        let mut values = Vec::new();
        for (&t, &v) in self.times.iter().zip(&self.values) {
            if t >= t0 && t < t1 {
                times.push(t);
                values.push(v);
            }
        }
        TimeSeries::new(times, values)
    }

    /// Rectangle-rule energy estimate, joules: each sample extends to the
    /// next timestamp (the last sample gets the median interval).
    #[must_use]
    pub fn energy_estimate_j(&self) -> f64 {
        if self.len() < 2 {
            return 0.0;
        }
        let mut e = 0.0;
        for i in 0..self.len() - 1 {
            e += self.values[i] * (self.times[i + 1] - self.times[i]);
        }
        e + self.values[self.len() - 1] * self.median_interval_s().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        TimeSeries::new(vec![0.0, 1.0, 2.0, 3.0], vec![10.0, 20.0, 30.0, 40.0])
    }

    #[test]
    fn basic_stats() {
        let s = series();
        assert_eq!(s.len(), 4);
        assert_eq!(s.mean(), 25.0);
        assert_eq!(s.max(), Some(40.0));
        assert_eq!(s.min(), Some(10.0));
    }

    #[test]
    fn empty_series_is_safe() {
        let s = TimeSeries::empty();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), None);
        assert_eq!(s.max_gap_s(), None);
        assert_eq!(s.energy_estimate_j(), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_times_panic() {
        let _ = TimeSeries::new(vec![0.0, 0.0], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = TimeSeries::new(vec![0.0], vec![1.0, 2.0]);
    }

    #[test]
    fn gaps() {
        let s = TimeSeries::new(vec![0.0, 1.0, 4.0, 5.0], vec![0.0; 4]);
        assert_eq!(s.max_gap_s(), Some(3.0));
        assert_eq!(s.median_interval_s(), Some(1.0));
    }

    #[test]
    fn downsample_averages_groups() {
        let s = series().downsample(2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.values(), &[15.0, 35.0]);
        assert_eq!(s.times(), &[0.5, 2.5]);
    }

    #[test]
    fn downsample_by_one_is_identity() {
        assert_eq!(series().downsample(1), series());
    }

    #[test]
    fn downsample_preserves_mean_of_covered_samples() {
        let s = series();
        let d = s.downsample(2);
        assert!((d.mean() - s.mean()).abs() < 1e-12);
    }

    #[test]
    fn downsample_emits_the_partial_tail_group() {
        // Regression: 5 samples at factor 2 used to drop the 5th sample;
        // it must surface as a final 1-sample group.
        let s = TimeSeries::new(
            vec![0.0, 1.0, 2.0, 3.0, 4.0],
            vec![10.0, 20.0, 30.0, 40.0, 50.0],
        );
        let d = s.downsample(2);
        assert_eq!(d.len(), 3);
        assert_eq!(d.values(), &[15.0, 35.0, 50.0]);
        assert_eq!(d.times(), &[0.5, 2.5, 4.0]);
    }

    #[test]
    fn downsample_partial_tail_is_averaged_not_copied() {
        // 8 samples at factor 3: two full groups + a 2-sample tail whose
        // emitted value must be the tail mean.
        let s = TimeSeries::new(
            (0..8).map(f64::from).collect(),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 10.0, 20.0],
        );
        let d = s.downsample(3);
        assert_eq!(d.len(), 3);
        assert_eq!(d.values(), &[2.0, 5.0, 15.0]);
        assert_eq!(d.times(), &[1.0, 4.0, 6.5]);
    }

    #[test]
    fn downsample_factor_beyond_len_collapses_to_one_mean_sample() {
        let s = series();
        let d = s.downsample(100);
        assert_eq!(d.len(), 1);
        assert_eq!(d.values(), &[s.mean()]);
        assert_eq!(d.times(), &[1.5]);
    }

    #[test]
    fn window_selects_half_open_range() {
        let w = series().window(1.0, 3.0);
        assert_eq!(w.values(), &[20.0, 30.0]);
    }

    #[test]
    fn energy_estimate_matches_rectangles() {
        let s = series();
        // 10·1 + 20·1 + 30·1 + 40·1(median gap) = 100
        assert!((s.energy_estimate_j() - 100.0).abs() < 1e-9);
    }
}
