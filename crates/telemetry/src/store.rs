//! The OMNI-like archive: per-job, per-node, per-channel series.

use crate::sampler::Sampler;
use crate::series::TimeSeries;
use std::sync::RwLock;
use std::collections::BTreeMap;
use vpp_node::ComponentTraces;

/// Power channels the Cray PM interface exposes per node (§II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Channel {
    /// Total node power (includes peripherals).
    Node,
    /// CPU package power.
    Cpu,
    /// DDR memory power.
    Mem,
    /// One GPU board (0–3).
    Gpu(u8),
}

impl Channel {
    /// All channels of a 4-GPU node, in display order.
    #[must_use]
    pub fn all() -> [Channel; 7] {
        [
            Channel::Node,
            Channel::Cpu,
            Channel::Mem,
            Channel::Gpu(0),
            Channel::Gpu(1),
            Channel::Gpu(2),
            Channel::Gpu(3),
        ]
    }
}

type Key = (String, usize, Channel);

/// Thread-safe archive of sampled series, keyed by
/// `(job id, node index, channel)`.
#[derive(Debug, Default)]
pub struct Store {
    data: RwLock<BTreeMap<Key, TimeSeries>>,
}

impl Store {
    /// An empty archive.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sample every channel of every node of a finished job and archive
    /// the results. Returns the number of series stored.
    pub fn ingest_job(
        &self,
        job_id: &str,
        nodes: &[ComponentTraces],
        sampler: &Sampler,
    ) -> usize {
        let mut stored = 0;
        let mut map = self.data.write().unwrap();
        for (idx, c) in nodes.iter().enumerate() {
            let mut put = |chan: Channel, series: TimeSeries| {
                map.insert((job_id.to_string(), idx, chan), series);
                stored += 1;
            };
            put(Channel::Node, sampler.sample(&c.node));
            put(Channel::Cpu, sampler.sample(&c.cpu));
            put(Channel::Mem, sampler.sample(&c.mem));
            for (g, gt) in c.gpus.iter().enumerate() {
                put(Channel::Gpu(g as u8), sampler.sample(gt));
            }
        }
        stored
    }

    /// Insert (or replace) one series directly — the archive import path.
    pub fn insert(&self, job_id: &str, node: usize, channel: Channel, series: TimeSeries) {
        self.data
            .write()
            .unwrap()
            .insert((job_id.to_string(), node, channel), series);
    }

    /// Retrieve one series.
    #[must_use]
    pub fn query(&self, job_id: &str, node: usize, channel: Channel) -> Option<TimeSeries> {
        self.data
            .read()
            .unwrap()
            .get(&(job_id.to_string(), node, channel))
            .cloned()
    }

    /// Node indices recorded for a job.
    #[must_use]
    pub fn nodes_of(&self, job_id: &str) -> Vec<usize> {
        let map = self.data.read().unwrap();
        let mut nodes: Vec<usize> = map
            .keys()
            .filter(|(j, _, _)| j == job_id)
            .map(|&(_, n, _)| n)
            .collect();
        nodes.dedup();
        nodes
    }

    /// All job ids in the archive.
    #[must_use]
    pub fn jobs(&self) -> Vec<String> {
        let map = self.data.read().unwrap();
        let mut jobs: Vec<String> = map.keys().map(|(j, _, _)| j.clone()).collect();
        jobs.dedup();
        jobs
    }

    /// Number of stored series.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.read().unwrap().len()
    }

    /// True when nothing has been ingested.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpp_sim::PowerTrace;

    fn fake_node_traces() -> ComponentTraces {
        let seg = |w: f64| PowerTrace::from_segments(0.0, [(10.0, w)]);
        ComponentTraces::assemble(
            seg(100.0),
            seg(30.0),
            vec![seg(200.0), seg(210.0), seg(190.0), seg(205.0)],
            seg(130.0),
        )
    }

    #[test]
    fn ingest_stores_seven_channels_per_node() {
        let store = Store::new();
        let n = store.ingest_job("job1", &[fake_node_traces()], &Sampler::ideal(1.0));
        assert_eq!(n, 7);
        assert_eq!(store.len(), 7);
    }

    #[test]
    fn query_round_trips() {
        let store = Store::new();
        store.ingest_job("job1", &[fake_node_traces()], &Sampler::ideal(1.0));
        let node = store.query("job1", 0, Channel::Node).unwrap();
        assert!((node.mean() - 1065.0).abs() < 1e-9, "{}", node.mean());
        let g2 = store.query("job1", 0, Channel::Gpu(2)).unwrap();
        assert!((g2.mean() - 190.0).abs() < 1e-9);
    }

    #[test]
    fn missing_series_is_none() {
        let store = Store::new();
        assert!(store.query("nope", 0, Channel::Node).is_none());
    }

    #[test]
    fn job_and_node_listings() {
        let store = Store::new();
        store.ingest_job(
            "a",
            &[fake_node_traces(), fake_node_traces()],
            &Sampler::ideal(1.0),
        );
        store.ingest_job("b", &[fake_node_traces()], &Sampler::ideal(1.0));
        assert_eq!(store.jobs(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(store.nodes_of("a"), vec![0, 1]);
    }

    #[test]
    fn channel_all_lists_seven() {
        assert_eq!(Channel::all().len(), 7);
    }

    #[test]
    fn concurrent_reads_are_safe() {
        let store = std::sync::Arc::new(Store::new());
        store.ingest_job("j", &[fake_node_traces()], &Sampler::ideal(1.0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = store.clone();
                std::thread::spawn(move || s.query("j", 0, Channel::Node).unwrap().mean())
            })
            .collect();
        for h in handles {
            assert!((h.join().unwrap() - 1065.0).abs() < 1e-9);
        }
    }
}
