//! Power telemetry: the LDMS / OMNI analogue (§II-B).
//!
//! NERSC's monitoring stack samples Cray PM counters at a nominal 1-second
//! interval, but aggregate data rates force drops, yielding an effective
//! 2-second cadence; the counters themselves report window-averaged power.
//! This crate reproduces that pipeline:
//!
//! * [`Sampler`] — window-averaged sampling of a [`vpp_sim::PowerTrace`] at
//!   a configurable interval, with stochastic sample drops and jitter;
//! * [`TimeSeries`] — the sampled series, with the down-sampling used in the
//!   paper's Fig. 2 sampling-rate study and gap statistics;
//! * [`Store`] — a queryable, thread-safe archive of per-node, per-channel
//!   series, standing in for the OMNI data warehouse;
//! * [`quality`] — the quarantine-and-quality ingest that screens dirty
//!   raw streams into valid series plus a [`DataQuality`] account;
//! * [`faults`] — the seeded [`FaultPlan`] injector reproducing realistic
//!   telemetry pathologies (dropout bursts, stuck sensors, NaN/spike
//!   glitches, clock skew, counter resets, reordering, duplicates).

pub mod archive;
pub mod faults;
pub mod quality;
pub mod query;
pub mod sampler;
pub mod screening;
pub mod series;
pub mod store;
pub mod stream;

pub use archive::{export_dir, import_dir};
pub use faults::{FaultLog, FaultPlan};
pub use quality::{quarantine, CleanSeries, DataQuality, QualityConfig, RawSeries};
pub use query::{from_csv, to_csv, FleetStats, Query};
pub use sampler::Sampler;
pub use screening::{NodeVerdict, Screener};
pub use series::TimeSeries;
pub use store::{Channel, Store};
pub use stream::{LiveCollector, Producer, Sample};
