//! End-to-end fault-injection suite: for every pathology class in
//! [`FaultPlan`], drive the full pipeline — sampler → live collector →
//! quarantine → stats summary — and check that (a) nothing panics and
//! (b) the [`DataQuality`] report's counts match the injected [`FaultLog`]
//! exactly. The injector is the ground truth the quarantine is audited
//! against.

use vpp_sim::PowerTrace;
use vpp_stats::PowerSummary;
use vpp_telemetry::{
    quarantine, Channel, CleanSeries, FaultLog, FaultPlan, LiveCollector, QualityConfig,
    RawSeries, Sample, Sampler,
};

const INTERVAL_S: f64 = 1.0;
const N: usize = 400;

/// A trace whose 1-s window means are all distinct (power varies every
/// segment), so no accidental stuck runs or duplicate values exist before
/// injection.
fn varied_trace() -> PowerTrace {
    let segs: Vec<(f64, f64)> = (0..N).map(|i| (1.0, 1000.0 + (i % 97) as f64 * 3.0)).collect();
    PowerTrace::from_segments(0.0, segs)
}

fn cfg() -> QualityConfig {
    QualityConfig::new(INTERVAL_S)
}

/// Run the whole pipeline: sample the trace, corrupt the series with
/// `plan`, deliver the dirty stream through the live collector, and
/// quarantine what arrives. Returns the clean series + the injection log.
fn pipeline(plan: &FaultPlan) -> (CleanSeries, FaultLog) {
    let series = Sampler::ideal(INTERVAL_S).sample(&varied_trace());
    assert_eq!(series.len(), N);
    let (raw, log) = plan.inject(&series);

    let collector = LiveCollector::start(64);
    let producer = collector.producer();
    let feeder = std::thread::spawn(move || {
        for &(t, watts) in raw.points() {
            assert!(producer.push(Sample {
                node: 0,
                channel: Channel::Node,
                t,
                watts,
            }));
        }
        raw
    });
    let raw_back = feeder.join().unwrap();
    let clean = collector
        .finish_quarantined(&cfg())
        .remove(&(0, Channel::Node))
        .unwrap_or_else(|| quarantine(&RawSeries::new(), &cfg()));

    // The collector path must agree with quarantining the raw stream
    // directly — the channel adds no reordering for one producer.
    let direct = quarantine(&raw_back, &cfg());
    assert_eq!(clean.quality, direct.quality, "collector must be transparent");
    assert_eq!(clean.series, direct.series);
    (clean, log)
}

/// The summary stage must accept whatever survived quarantine.
fn summarise(clean: &CleanSeries) {
    if let Some(s) = PowerSummary::from_screened(clean.series.values()) {
        assert!(s.summary.high_mode_w.is_finite());
        assert_eq!(s.n_rejected, 0, "quarantine already removed non-finite");
    } else {
        assert!(clean.series.is_empty());
    }
}

#[test]
fn dropout_bursts_surface_as_gaps_with_exact_counts() {
    let (clean, log) = pipeline(&FaultPlan::none(0xD0).with_dropouts(3, 4));
    let q = clean.quality;
    assert_eq!(log.dropout_bursts, 3);
    assert_eq!(log.dropped_samples, 12);
    assert_eq!(q.dropout_gaps, log.dropout_bursts);
    assert_eq!(q.n_kept, N - log.dropped_samples);
    let expected_coverage = (N - log.dropped_samples) as f64 / N as f64;
    assert!((q.coverage - expected_coverage).abs() < 1e-12, "{q:?}");
    summarise(&clean);
}

#[test]
fn stuck_sensor_runs_are_detected_with_exact_counts() {
    let (clean, log) = pipeline(&FaultPlan::none(0x57).with_stuck(2, 5));
    let q = clean.quality;
    assert_eq!(log.stuck_runs, 2);
    assert_eq!(log.stuck_extra, 8);
    assert_eq!(q.stuck_runs, log.stuck_runs);
    assert_eq!(q.stuck_removed, log.stuck_extra);
    assert_eq!(q.n_kept, N - log.stuck_extra);
    summarise(&clean);
}

#[test]
fn nan_glitches_are_screened_with_exact_counts() {
    let (clean, log) = pipeline(&FaultPlan::none(0x4E).with_nans(5));
    let q = clean.quality;
    assert_eq!(log.nan_glitches, 5);
    assert_eq!(q.non_finite_removed, log.nan_glitches);
    assert_eq!(q.n_kept, N - 5);
    assert!(clean.series.values().iter().all(|v| v.is_finite()));
    summarise(&clean);
}

#[test]
fn spike_glitches_are_screened_with_exact_counts() {
    let (clean, log) = pipeline(&FaultPlan::none(0x5F).with_spikes(4));
    let q = clean.quality;
    assert_eq!(log.spike_glitches, 4);
    assert_eq!(q.spikes_removed, log.spike_glitches);
    assert_eq!(q.n_kept, N - 4);
    assert!(clean.series.max().unwrap() < 2000.0, "spikes must be gone");
    summarise(&clean);
}

#[test]
fn counter_resets_are_screened_with_exact_counts() {
    let (clean, log) = pipeline(&FaultPlan::none(0xC0).with_resets(3));
    let q = clean.quality;
    assert_eq!(log.counter_resets, 3);
    assert_eq!(q.resets_removed, log.counter_resets);
    assert_eq!(q.n_kept, N - 3);
    assert!(clean.series.min().unwrap() >= 1000.0, "zeros must be gone");
    summarise(&clean);
}

#[test]
fn clock_jitter_below_half_gap_needs_no_repairs() {
    let (clean, log) = pipeline(&FaultPlan::none(0x11).with_jitter(0.2));
    let q = clean.quality;
    assert_eq!(log.jittered, N);
    assert_eq!(q.n_kept, N);
    assert_eq!(q.removed(), 0);
    assert_eq!(q.order_violations, 0, "jitter < gap/2 preserves order");
    assert_eq!(q.dropout_gaps, 0, "jittered gaps stay below the threshold");
    summarise(&clean);
}

#[test]
fn clock_skew_and_drift_pass_through_accounted() {
    let (clean, log) = pipeline(&FaultPlan::none(0x22).with_skew(2.5, 1e-4));
    let q = clean.quality;
    assert_eq!(log.skewed, N);
    assert_eq!(q.n_kept, N);
    assert!(q.is_clean(), "{q:?}");
    // The whole series is offset: skew is invisible without a reference
    // clock, but nothing is lost.
    assert!((clean.series.times()[0] - 3.5001).abs() < 1e-9);
    summarise(&clean);
}

#[test]
fn out_of_order_delivery_is_repaired_with_exact_counts() {
    let (clean, log) = pipeline(&FaultPlan::none(0x33).with_swaps(6));
    let q = clean.quality;
    assert_eq!(log.swaps, 6);
    assert_eq!(q.order_violations, log.swaps);
    assert_eq!(q.n_kept, N);
    assert!(clean.series.times().windows(2).all(|w| w[0] < w[1]));
    summarise(&clean);
}

#[test]
fn duplicate_timestamps_are_resolved_with_exact_counts() {
    let (clean, log) = pipeline(&FaultPlan::none(0x44).with_duplicates(5));
    let q = clean.quality;
    assert_eq!(log.duplicates, 5);
    assert_eq!(q.duplicates_resolved, log.duplicates);
    assert_eq!(q.n_kept, N, "one survivor per duplicated timestamp");
    summarise(&clean);
}

#[test]
fn chaos_plan_completes_with_full_accounting() {
    let (clean, log) = pipeline(&FaultPlan::chaos(0xFF));
    let q = clean.quality;
    // Every class actually landed on a 400-sample series.
    assert!(log.dropout_bursts > 0 && log.stuck_runs > 0, "{log:?}");
    assert!(log.nan_glitches > 0 && log.spike_glitches > 0, "{log:?}");
    assert!(log.counter_resets > 0 && log.swaps > 0 && log.duplicates > 0, "{log:?}");
    // Exact per-class accounting even under the combined plan — classes
    // are injected at disjoint sites.
    assert_eq!(q.non_finite_removed, log.nan_glitches);
    assert_eq!(q.spikes_removed, log.spike_glitches);
    assert_eq!(q.resets_removed, log.counter_resets);
    assert_eq!(q.duplicates_resolved, log.duplicates);
    assert_eq!(q.stuck_runs, log.stuck_runs);
    assert_eq!(q.stuck_removed, log.stuck_extra);
    assert_eq!(q.order_violations, log.swaps);
    // Every *removed* sample leaves a gap too: each screened single (NaN,
    // spike, reset) and each collapsed stuck run widens one inter-sample
    // gap past the threshold, on top of the true dropout bursts. Sites
    // are disjoint, so the counts add exactly.
    assert_eq!(
        q.dropout_gaps,
        log.dropout_bursts
            + log.nan_glitches
            + log.spike_glitches
            + log.counter_resets
            + log.stuck_runs
    );
    // Total accounting identity.
    assert_eq!(
        q.n_raw,
        q.n_kept
            + q.non_finite_removed
            + q.spikes_removed
            + q.resets_removed
            + q.duplicates_resolved
            + q.stuck_removed
    );
    assert_eq!(q.n_raw, N - log.dropped_samples + log.duplicates);
    assert!(q.coverage > 0.8 && q.coverage < 1.0, "{q:?}");
    summarise(&clean);
}

#[test]
fn chaos_is_deterministic_end_to_end() {
    let (a, la) = pipeline(&FaultPlan::chaos(0xAB));
    let (b, lb) = pipeline(&FaultPlan::chaos(0xAB));
    assert_eq!(la, lb);
    assert_eq!(a.quality, b.quality);
    assert_eq!(a.series, b.series);
}

// Panic-edge property coverage: the hardened paths must never panic on
// inputs that would kill `Kde::fit` or `TimeSeries::new`.
vpp_substrate::properties! {
    fn quarantine_never_panics_on_arbitrary_raw_streams(rng) {
        use vpp_substrate::prop::usize_in;
        let n = usize_in(rng, 0, 120);
        let mut raw = RawSeries::new();
        for _ in 0..n {
            // Hostile mix: duplicate and out-of-order timestamps,
            // NaN/inf/negative/spike values.
            let t = match rng.index(6) {
                0 => rng.uniform(0.0, 10.0).floor(), // forced duplicates
                1 => -rng.uniform(0.0, 100.0),       // out of order
                2 => f64::NAN,                       // broken clock
                _ => rng.uniform(0.0, 1000.0),
            };
            let v = match rng.index(8) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => -rng.uniform(0.0, 1e6),
                4 => rng.uniform(1e5, 1e12),
                _ => rng.uniform(0.0, 3000.0),
            };
            raw.push(t, v);
        }
        let clean = quarantine(&raw, &QualityConfig::new(1.0));
        let q = clean.quality;
        // TimeSeries invariants hold on whatever survives.
        assert!(clean.series.times().windows(2).all(|w| w[0] < w[1]));
        assert!(clean.series.values().iter().all(|v| v.is_finite()));
        // Every raw point is accounted for exactly once.
        assert_eq!(
            q.n_raw,
            q.n_kept + q.non_finite_removed + q.spikes_removed + q.resets_removed
                + q.duplicates_resolved + q.stuck_removed
        );
        assert!((0.0..=1.0).contains(&q.coverage));
    }

    fn injected_faults_always_quarantine_cleanly(rng) {
        use vpp_substrate::prop::usize_in;
        let n = usize_in(rng, 16, 200);
        let segs: Vec<(f64, f64)> = (0..n).map(|i| (1.0, 900.0 + (i % 31) as f64 * 7.0)).collect();
        let series = Sampler::ideal(1.0).sample(&PowerTrace::from_segments(0.0, segs));
        let plan = FaultPlan::none(rng.next_u64())
            .with_dropouts(rng.index(4), 1 + rng.index(4))
            .with_stuck(rng.index(3), 2 + rng.index(5))
            .with_nans(rng.index(5))
            .with_spikes(rng.index(4))
            .with_resets(rng.index(3))
            .with_jitter(rng.uniform(0.0, 0.45))
            .with_swaps(rng.index(5))
            .with_duplicates(rng.index(5));
        let (raw, _log) = plan.inject(&series);
        let clean = quarantine(&raw, &QualityConfig::new(1.0));
        assert!(clean.series.times().windows(2).all(|w| w[0] < w[1]));
        assert!(clean.series.values().iter().all(|v| v.is_finite()));
    }
}
