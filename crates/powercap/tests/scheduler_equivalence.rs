//! Differential equivalence: the event-driven scheduler versus the
//! retained polling reference on random queues.
//!
//! The event-driven rewrite claims *observational identity*, not mere
//! approximation: admission stays quantised to cycle boundaries and the
//! power sums reuse the polling loop's left-to-right arithmetic, so the
//! whole `ScheduleOutcome` — admission order, spans, peak power and the
//! power-time integral — must compare equal with `==`.

use vpp_powercap::scheduler::reference::run_polling;
use vpp_powercap::{BatchJob, CapResponse, Policy, Scheduler, WorkloadClass};
use vpp_substrate::prop::usize_in;
use vpp_substrate::properties;
use vpp_substrate::Rng;

/// A random but well-formed cap response: strictly increasing caps,
/// monotone-ish perf, rising node power.
fn random_response(rng: &mut Rng) -> CapResponse {
    let n = usize_in(rng, 1, 6);
    let mut cap = rng.uniform(80.0, 150.0);
    let mut perf = rng.uniform(0.3, 0.7);
    let mut power = rng.uniform(400.0, 900.0);
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        points.push((cap, perf.min(1.0), power));
        cap += rng.uniform(20.0, 120.0);
        perf += rng.uniform(0.0, 0.4);
        power += rng.uniform(10.0, 400.0);
    }
    CapResponse::new(points)
}

fn random_queue(rng: &mut Rng, total_nodes: usize) -> Vec<BatchJob> {
    let n = usize_in(rng, 0, 25);
    let classes = [
        WorkloadClass::PowerHungry,
        WorkloadClass::Moderate,
        WorkloadClass::Light,
        WorkloadClass::Unknown,
    ];
    (0..n as u64)
        .map(|id| {
            // A burst of identical arrivals every few jobs exercises the
            // FIFO tie-break inside one admission pass.
            let arrival = if rng.bool(0.3) {
                (id / 3) as f64 * rng.uniform(0.0, 200.0)
            } else {
                rng.uniform(0.0, 600.0)
            };
            BatchJob {
                id,
                name: format!("j{id}"),
                class: classes[rng.index(classes.len())],
                nodes: usize_in(rng, 1, total_nodes + 1),
                base_runtime_s: rng.uniform(5.0, 900.0),
                response: random_response(rng),
                arrival_s: arrival,
            }
        })
        .collect()
}

properties! {
    fn event_driven_run_equals_polling_reference(rng) {
        let total_nodes = usize_in(rng, 1, 13);
        let queue = random_queue(rng, total_nodes);
        // Budget at least the hungriest single job, so every job can run.
        let max_single = queue
            .iter()
            .map(|j| j.response.uncapped().1 * j.nodes as f64)
            .fold(0.0f64, f64::max)
            .max(1.0);
        let mut sched = Scheduler::new(total_nodes, max_single * rng.uniform(1.0, 3.0));
        sched.cycle_s = rng.uniform(5.0, 60.0);
        let policy = match rng.index(4) {
            0 => Policy::Uncapped,
            1 => Policy::FixedCap(rng.uniform(90.0, 400.0)),
            2 => Policy::ClassAware,
            _ => Policy::SweetSpot,
        };
        let fast = sched.run(&queue, policy);
        let slow = run_polling(&sched, &queue, policy);
        assert_eq!(fast, slow, "{policy:?} diverged on {} jobs", queue.len());
        assert_eq!(fast.job_spans.len(), queue.len(), "every job must finish");
    }
}
