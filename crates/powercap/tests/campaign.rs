//! Campaign determinism: the shard count is a wall-clock knob, never a
//! semantic one. The same seed must produce byte-identical merged
//! outcomes whether the partitions run serially (1 shard) or fanned out
//! over the pool (N shards), and across repeated runs — with and without
//! a site budget (independent partitions vs the coupled global-backfill
//! engine).

use vpp_powercap::policy::{ClassAware, FixedCap, SweetSpot, TcoAware, Uncapped};
use vpp_powercap::{campaign, CampaignSpec, CapPolicy};

fn trio_plus() -> [(&'static str, &'static dyn CapPolicy); 5] {
    [
        ("uncapped", &Uncapped),
        ("fixed_200w", &FixedCap(200.0)),
        ("class_aware", &ClassAware),
        ("sweet_spot", &SweetSpot),
        ("tco_aware", &TcoAware::DEFAULT),
    ]
}

#[test]
fn shard_count_never_changes_the_merged_outcome() {
    let spec = CampaignSpec {
        partitions: 6,
        ..CampaignSpec::new(240, 7)
    };
    for (name, policy) in trio_plus() {
        let serial = campaign::run(&spec, policy, 1);
        for shards in [2, 3, 6, 16] {
            let sharded = campaign::run(&spec, policy, shards);
            assert_eq!(serial, sharded, "{name} diverged at {shards} shards");
        }
    }
}

#[test]
fn shard_count_never_changes_the_site_budget_outcome() {
    // The coupled engine: 60 % of the summed envelope forces contention
    // and backfill, and the outcome must still be byte-identical across
    // every shard count (the engine is a pure function of spec+policy).
    let spec = CampaignSpec {
        partitions: 6,
        site_budget_w: Some(0.6 * 6.0 * 40_000.0),
        ..CampaignSpec::new(240, 7)
    };
    for (name, policy) in trio_plus() {
        let serial = campaign::run(&spec, policy, 1);
        assert!(
            serial.merged.peak_power_w <= spec.site_budget_w.unwrap() + 1e-6,
            "{name}: peak above the site budget"
        );
        for shards in [2, 3, 6, 16] {
            let sharded = campaign::run(&spec, policy, shards);
            assert_eq!(serial, sharded, "{name} diverged at {shards} shards");
            assert_eq!(
                format!("{serial:?}"),
                format!("{sharded:?}"),
                "{name}: byte-identity, literally"
            );
        }
    }
}

#[test]
fn repeated_runs_are_bitwise_reproducible() {
    let spec = campaign::baseline_spec();
    let a = campaign::run(&spec, &ClassAware, spec.partitions);
    let b = campaign::run(&spec, &ClassAware, spec.partitions);
    assert_eq!(a, b);
    // The byte-identity claim, literally: identical debug serialisations.
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn different_seeds_produce_different_campaigns() {
    let spec = CampaignSpec::new(100, 1);
    let other = CampaignSpec::new(100, 2);
    let a = campaign::run(&spec, &Uncapped, 2);
    let b = campaign::run(&other, &Uncapped, 2);
    assert_ne!(a, b);
}
