//! Campaign determinism: the shard count is a wall-clock knob, never a
//! semantic one. The same seed must produce byte-identical merged
//! outcomes whether the partitions run serially (1 shard) or fanned out
//! over the pool (N shards), and across repeated runs.

use vpp_powercap::{campaign, CampaignSpec, Policy};

#[test]
fn shard_count_never_changes_the_merged_outcome() {
    let spec = CampaignSpec {
        partitions: 6,
        ..CampaignSpec::new(240, 7)
    };
    for policy in [
        Policy::Uncapped,
        Policy::FixedCap(200.0),
        Policy::ClassAware,
        Policy::SweetSpot,
    ] {
        let serial = campaign::run(&spec, policy, 1);
        for shards in [2, 3, 6, 16] {
            let sharded = campaign::run(&spec, policy, shards);
            assert_eq!(serial, sharded, "{policy:?} diverged at {shards} shards");
        }
    }
}

#[test]
fn repeated_runs_are_bitwise_reproducible() {
    let spec = campaign::baseline_spec();
    let a = campaign::run(&spec, Policy::ClassAware, spec.partitions);
    let b = campaign::run(&spec, Policy::ClassAware, spec.partitions);
    assert_eq!(a, b);
    // The byte-identity claim, literally: identical debug serialisations.
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn different_seeds_produce_different_campaigns() {
    let spec = CampaignSpec::new(100, 1);
    let other = CampaignSpec::new(100, 2);
    let a = campaign::run(&spec, Policy::Uncapped, 2);
    let b = campaign::run(&other, Policy::Uncapped, 2);
    assert_ne!(a, b);
}
