//! Golden violin: the slowdown distribution of one pinned contended
//! campaign, quartiles and density outline frozen to the digit. The
//! campaign engine is a pure function of (spec, policy), so these values
//! must never drift without a deliberate re-bless — any change here means
//! the DES, the policy arithmetic, or the KDE changed semantics.

use vpp_powercap::policy::SweetSpot;
use vpp_powercap::{campaign, CampaignSpec};

fn golden_spec() -> CampaignSpec {
    CampaignSpec {
        partitions: 4,
        site_budget_w: Some(0.6 * 4.0 * 40_000.0),
        ..CampaignSpec::new(400, 11)
    }
}

#[track_caller]
fn pin(got: f64, want: f64, what: &str) {
    assert!(
        (got - want).abs() <= 1e-9,
        "{what}: got {got:.12}, golden {want:.12}"
    );
}

#[test]
fn seeded_campaign_violin_is_pinned() {
    let out = campaign::run(&golden_spec(), &SweetSpot, 1);
    let v = out.slowdown_violin(32);
    assert_eq!(v.outline.len(), 32);
    pin(v.min, 0.977639709788, "min");
    pin(v.q1, 1.036338701263, "q1");
    pin(v.median, 1.068837600977, "median");
    pin(v.q3, 1.095517399312, "q3");
    pin(v.max, 1.470524421272, "max");
    assert_eq!(v.outline_mode_count(), 2, "density mode count");
    // Three sentinel grid points — first, middle, last — pin the KDE
    // outline (grid placement AND density) without listing all 32.
    pin(v.outline[0].0, 0.941663751266, "outline[0].x");
    pin(v.outline[0].1, 0.002782502280, "outline[0].density");
    pin(v.outline[16].0, 1.233192333732, "outline[16].x");
    pin(v.outline[16].1, 0.0, "outline[16].density");
    pin(v.outline[31].0, 1.506500379793, "outline[31].x");
    pin(v.outline[31].1, 0.003900565291, "outline[31].density");
}

#[test]
fn violin_quartiles_bracket_the_distribution_summary() {
    let out = campaign::run(&golden_spec(), &SweetSpot, 1);
    let v = out.slowdown_violin(32);
    // The violin and the Distribution summary are computed from the same
    // retained samples; their medians must agree exactly.
    assert_eq!(v.median, out.slowdown.p50);
    assert!(v.min <= v.q1 && v.q1 <= v.median && v.median <= v.q3 && v.q3 <= v.max);
}
