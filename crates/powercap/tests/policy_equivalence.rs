//! The CapPolicy redesign's non-regression contract: with a slack site
//! budget (no `site_budget_w`), trait-based policies must reproduce the
//! superseded closed-enum campaign engine byte-for-byte. The enum path is
//! retained as `campaign::reference::run_enum` exactly so this suite can
//! diff the two end to end — demands, admissions, spans, peak, integral,
//! distributions, TCO.

use vpp_powercap::policy::{ClassAware, FixedCap, SweetSpot, Uncapped};
use vpp_powercap::{campaign, CampaignSpec, CapPolicy, Policy};

fn pairs() -> [(&'static str, Policy, &'static dyn CapPolicy); 4] {
    [
        ("uncapped", Policy::Uncapped, &Uncapped),
        ("fixed_220w", Policy::FixedCap(220.0), &FixedCap(220.0)),
        ("class_aware", Policy::ClassAware, &ClassAware),
        ("sweet_spot", Policy::SweetSpot, &SweetSpot),
    ]
}

#[test]
fn trait_policies_match_the_enum_reference_bit_for_bit() {
    for spec in [
        CampaignSpec::new(180, 7),
        CampaignSpec {
            partitions: 3,
            ..CampaignSpec::new(120, 5)
        },
        campaign::baseline_spec(),
    ] {
        for (name, enum_policy, trait_policy) in pairs() {
            let via_enum = campaign::reference::run_enum(&spec, enum_policy, spec.partitions);
            let via_trait = campaign::run(&spec, trait_policy, spec.partitions);
            assert_eq!(
                via_enum, via_trait,
                "{name}: the trait redesign changed the campaign"
            );
            // Byte-identity, literally: identical debug serialisations.
            assert_eq!(format!("{via_enum:?}"), format!("{via_trait:?}"), "{name}");
        }
    }
}

#[test]
fn equivalence_holds_across_shard_counts() {
    let spec = CampaignSpec {
        partitions: 6,
        ..CampaignSpec::new(240, 7)
    };
    for (name, enum_policy, trait_policy) in pairs() {
        for shards in [1, 2, 6] {
            assert_eq!(
                campaign::reference::run_enum(&spec, enum_policy, shards),
                campaign::run(&spec, trait_policy, shards),
                "{name} at {shards} shards"
            );
        }
    }
}

#[test]
#[should_panic(expected = "predates the site ledger")]
fn enum_reference_refuses_site_budgets() {
    let spec = CampaignSpec {
        site_budget_w: Some(100_000.0),
        ..CampaignSpec::new(10, 1)
    };
    let _ = campaign::reference::run_enum(&spec, Policy::Uncapped, 1);
}
