//! Closed-loop system power control.
//!
//! §VI proposes that the batch system enforce a facility power budget by
//! adjusting GPU caps within scheduling cycles (~30 s). This module
//! implements that controller: each cycle it reads the jobs' measured
//! power, compares the total against the budget, and redistributes cap
//! headroom — tightening proportionally when over budget, relaxing toward
//! each job's preferred cap when under. Caps stay inside both the device
//! range and a per-job floor chosen from the job's cap response so the
//! enforced slowdown never exceeds the configured loss budget.

use crate::scheduler::CapResponse;
use vpp_substrate::{span, trace};

/// A running job under the controller's management.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlledJob {
    pub id: u64,
    pub nodes: usize,
    /// Measured cap response (from profiling or the predictor).
    pub response: CapResponse,
    /// Current GPU cap, watts.
    pub cap_w: f64,
}

/// Controller configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Controller {
    /// System power budget over the managed jobs, watts.
    pub budget_w: f64,
    /// Control cycle, seconds (paper: ~30 s scheduling cycles).
    pub cycle_s: f64,
    /// Proportional gain on the budget error (fraction corrected per cycle).
    pub gain: f64,
    /// Per-job performance-loss budget (caps never go below the deepest
    /// cap meeting this).
    pub max_loss: f64,
    /// Device cap range, watts.
    pub cap_range_w: (f64, f64),
}

impl Controller {
    /// A controller with the paper's parameters.
    #[must_use]
    pub fn new(budget_w: f64) -> Self {
        assert!(budget_w > 0.0);
        Self {
            budget_w,
            cycle_s: 30.0,
            gain: 0.5,
            max_loss: 0.10,
            cap_range_w: (100.0, 400.0),
        }
    }

    /// Deepest cap each job may be driven to.
    #[must_use]
    pub fn floor_for(&self, job: &ControlledJob) -> f64 {
        job.response
            .recommended_cap(self.max_loss)
            .clamp(self.cap_range_w.0, self.cap_range_w.1)
    }

    /// Total power the managed jobs draw at their current caps, watts.
    #[must_use]
    pub fn system_power_w(&self, jobs: &[ControlledJob]) -> f64 {
        jobs.iter()
            .map(|j| j.response.power_at(j.cap_w) * j.nodes as f64)
            .sum()
    }

    /// One control cycle: adjust every job's cap toward meeting the
    /// budget. Returns the post-adjustment system power.
    pub fn step(&self, jobs: &mut [ControlledJob]) -> f64 {
        let current = self.system_power_w(jobs);
        let error = current - self.budget_w;
        let mut cycle_span = span!(
            "powercap.cycle",
            jobs = jobs.len(),
            budget_w = self.budget_w,
            power_w = current,
        );
        trace::counter("powercap.cycles", 1);
        // Overshoot is the regulator's headline health metric: watts above
        // budget entering this cycle (0 when under). The budget gauge
        // makes the target visible in the same exposition.
        trace::gauge("powercap.budget_w", self.budget_w);
        trace::gauge("powercap.overshoot_w", error.max(0.0));
        if error > 0.0 {
            trace::counter("powercap.cycles_over_budget", 1);
        }
        if jobs.is_empty() {
            return current;
        }
        if error > 0.0 {
            // Over budget: tighten, weighted by each job's shed-able power
            // (current draw minus its draw at the floor).
            let sheddable: Vec<f64> = jobs
                .iter()
                .map(|j| {
                    let at_floor = j.response.power_at(self.floor_for(j)) * j.nodes as f64;
                    (j.response.power_at(j.cap_w) * j.nodes as f64 - at_floor).max(0.0)
                })
                .collect();
            let total_sheddable: f64 = sheddable.iter().sum();
            if total_sheddable > 1e-9 {
                let shed = (error * self.gain).min(total_sheddable);
                for (j, s) in jobs.iter_mut().zip(&sheddable) {
                    if *s <= 0.0 {
                        continue;
                    }
                    let target_power = j.response.power_at(j.cap_w) * j.nodes as f64
                        - shed * s / total_sheddable;
                    let before = j.cap_w;
                    j.cap_w = self
                        .cap_for_power(j, target_power / j.nodes as f64)
                        .max(self.floor_for(j));
                    Self::cap_set_mark(j, before);
                }
            }
        } else {
            // Under budget: relax everyone toward the default cap,
            // proportionally to the available headroom.
            let headroom = -error * self.gain;
            let wants: Vec<f64> = jobs
                .iter()
                .map(|j| {
                    (j.response.power_at(self.cap_range_w.1) - j.response.power_at(j.cap_w))
                        .max(0.0)
                        * j.nodes as f64
                })
                .collect();
            let total_want: f64 = wants.iter().sum();
            if total_want > 1e-9 {
                let grant = headroom.min(total_want);
                for (j, w) in jobs.iter_mut().zip(&wants) {
                    if *w <= 0.0 {
                        continue;
                    }
                    let target_power = j.response.power_at(j.cap_w) * j.nodes as f64
                        + grant * w / total_want;
                    let before = j.cap_w;
                    j.cap_w = self.cap_for_power(j, target_power / j.nodes as f64);
                    Self::cap_set_mark(j, before);
                }
            }
        }
        let after = self.system_power_w(jobs);
        cycle_span.record("power_after_w", after);
        if trace::enabled() {
            // The distribution of assigned caps across managed jobs: a
            // scrape shows at a glance whether the regulator is pinning
            // jobs at the floor (left mass) or leaving headroom unused
            // (right mass). Caps live in [100, 400] W, inside the
            // power_watts bucket table.
            for j in jobs.iter() {
                trace::histogram("powercap_cap_watts", j.cap_w);
            }
        }
        after
    }

    /// Emit a `powercap.cap_set` mark when a job's cap actually moved.
    fn cap_set_mark(job: &ControlledJob, before_w: f64) {
        if (job.cap_w - before_w).abs() > 1e-9 {
            trace::mark_with("powercap.cap_set", || {
                vec![
                    ("job", job.id.into()),
                    ("from_w", before_w.into()),
                    ("to_w", job.cap_w.into()),
                ]
            });
            trace::counter("powercap.cap_changes", 1);
        }
    }

    /// Invert a job's power curve: the cap whose predicted node power is
    /// closest to `node_power_w` (bisection over the cap range).
    fn cap_for_power(&self, job: &ControlledJob, node_power_w: f64) -> f64 {
        let (mut lo, mut hi) = self.cap_range_w;
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if job.response.power_at(mid) < node_power_w {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Run until the system power stabilises (successive cycles change by
    /// <1 W) or `max_cycles` elapse. Returns `(cycles used, final power)`.
    pub fn converge(&self, jobs: &mut [ControlledJob], max_cycles: usize) -> (usize, f64) {
        let mut last = self.system_power_w(jobs);
        for cycle in 1..=max_cycles {
            let now = self.step(jobs);
            if (now - last).abs() < 1.0 {
                return (cycle, now);
            }
            last = now;
        }
        (max_cycles, last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hungry(id: u64) -> ControlledJob {
        ControlledJob {
            id,
            nodes: 1,
            response: CapResponse::new(vec![
                (100.0, 0.40, 900.0),
                (200.0, 0.91, 1300.0),
                (300.0, 1.00, 1750.0),
                (400.0, 1.00, 1810.0),
            ]),
            cap_w: 400.0,
        }
    }

    fn light(id: u64) -> ControlledJob {
        ControlledJob {
            id,
            nodes: 1,
            response: CapResponse::new(vec![
                (100.0, 0.96, 720.0),
                (200.0, 1.00, 760.0),
                (400.0, 1.00, 766.0),
            ]),
            cap_w: 400.0,
        }
    }

    #[test]
    fn over_budget_tightens_toward_the_budget() {
        // Three hungry jobs at 1810 W = 5430 W against a 4500 W budget.
        let ctrl = Controller::new(4500.0);
        let mut jobs = vec![hungry(1), hungry(2), hungry(3)];
        let (cycles, power) = ctrl.converge(&mut jobs, 20);
        assert!(cycles < 20, "must converge");
        assert!(power <= 4500.0 + 30.0, "final power {power}");
        assert!(jobs.iter().all(|j| j.cap_w < 400.0));
    }

    #[test]
    fn caps_never_violate_the_loss_floor() {
        // Impossible budget: the controller must stop at the perf floor,
        // not crush jobs to the device minimum.
        let ctrl = Controller::new(1000.0);
        let mut jobs = vec![hungry(1), hungry(2)];
        let _ = ctrl.converge(&mut jobs, 50);
        for j in &jobs {
            let floor = ctrl.floor_for(j);
            assert!(j.cap_w >= floor - 1e-6, "cap {} below floor {floor}", j.cap_w);
            assert!(
                j.response.perf_at(j.cap_w) >= 1.0 - ctrl.max_loss - 1e-6,
                "perf guard violated"
            );
        }
    }

    #[test]
    fn under_budget_relaxes_back_to_default() {
        let ctrl = Controller::new(10_000.0);
        let mut jobs = vec![hungry(1)];
        jobs[0].cap_w = 200.0;
        let _ = ctrl.converge(&mut jobs, 30);
        assert!(jobs[0].cap_w > 390.0, "cap should relax: {}", jobs[0].cap_w);
    }

    #[test]
    fn light_jobs_are_left_alone_when_tightening() {
        // The light job has nothing to shed (its floor equals ~its draw);
        // the hungry job takes the cut.
        let ctrl = Controller::new(2200.0);
        let mut jobs = vec![hungry(1), light(2)];
        let _ = ctrl.converge(&mut jobs, 30);
        let hungry_draw = jobs[0].response.power_at(jobs[0].cap_w);
        assert!(hungry_draw < 1700.0, "hungry job tightened: {hungry_draw}");
        // The light job's power barely moves under any cap.
        let light_draw = jobs[1].response.power_at(jobs[1].cap_w);
        assert!((light_draw - 766.0).abs() < 50.0, "light stays ~766: {light_draw}");
    }

    #[test]
    fn stable_at_budget() {
        let ctrl = Controller::new(5000.0);
        let mut jobs = vec![hungry(1), hungry(2)];
        let before = ctrl.system_power_w(&jobs); // 3620 < budget
        let after = ctrl.step(&mut jobs);
        // Already under budget with caps at max: nothing to relax into.
        assert!((after - before).abs() < 1.0);
    }

    #[test]
    fn control_cycles_are_traced() {
        let ctrl = Controller::new(4500.0);
        let mut jobs = vec![hungry(1), hungry(2), hungry(3)];
        let session = vpp_substrate::trace::session(4096);
        let (cycles, power) = ctrl.converge(&mut jobs, 20);
        let report = session.finish();
        assert!(report.well_formed().is_ok(), "{:?}", report.well_formed());
        assert_eq!(report.counters["powercap.cycles"] as usize, cycles);
        assert!(report.counters["powercap.cap_changes"] >= 3, "all jobs tightened");
        // Starting 5430 W over a 4500 W budget: the first cycle overshoots,
        // and the gauge holds the last cycle's entering overshoot.
        assert!(report.counters["powercap.cycles_over_budget"] >= 1);
        let last_overshoot = report.gauges["powercap.overshoot_w"];
        assert!(last_overshoot <= 5430.0 - 4500.0);
        let cap_marks = report
            .marks()
            .iter()
            .filter(|m| m.name == "powercap.cap_set")
            .count();
        assert_eq!(cap_marks as u64, report.counters["powercap.cap_changes"]);
        let cycle_spans: Vec<_> = report
            .spans()
            .into_iter()
            .filter(|s| s.name == "powercap.cycle")
            .collect();
        assert_eq!(cycle_spans.len(), cycles);
        let final_span = cycle_spans.last().unwrap();
        assert!((final_span.field_f64("power_after_w").unwrap() - power).abs() < 1e-9);
    }

    #[test]
    fn empty_job_set_is_zero_power() {
        let ctrl = Controller::new(1000.0);
        let mut jobs: Vec<ControlledJob> = vec![];
        assert_eq!(ctrl.step(&mut jobs), 0.0);
    }
}
