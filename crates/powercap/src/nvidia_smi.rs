//! The `nvidia-smi` power-management analogue (§V: `nvidia-smi -pl`).
//!
//! Unlike the internal clamp on [`vpp_gpu::Gpu::set_power_limit`], this
//! front-end rejects out-of-range requests with an error — matching the real
//! tool's behaviour ("Provided power limit ... is not a valid power limit").

use vpp_node::NodeInstance;

/// Errors the management interface reports.
#[derive(Debug, Clone, PartialEq)]
pub enum SmiError {
    /// Requested limit outside the device's settable range.
    OutOfRange {
        requested_w: f64,
        min_w: f64,
        max_w: f64,
    },
    /// GPU index does not exist on this node.
    NoSuchGpu { index: usize, available: usize },
}

impl std::fmt::Display for SmiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SmiError::OutOfRange {
                requested_w,
                min_w,
                max_w,
            } => write!(
                f,
                "provided power limit {requested_w:.2} W is not a valid power limit \
                 (range [{min_w:.2}, {max_w:.2}] W)"
            ),
            SmiError::NoSuchGpu { index, available } => {
                write!(f, "GPU {index} does not exist ({available} GPUs present)")
            }
        }
    }
}

impl std::error::Error for SmiError {}

/// One row of `nvidia-smi -q -d POWER` output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuPowerInfo {
    pub index: usize,
    pub limit_w: f64,
    pub min_limit_w: f64,
    pub max_limit_w: f64,
    pub default_limit_w: f64,
}

/// The management front-end. Stateless: operates on node instances.
#[derive(Debug, Clone, Copy, Default)]
pub struct NvidiaSmi;

impl NvidiaSmi {
    /// `nvidia-smi -pl <watts>`: set the limit on every GPU of the node.
    /// Returns the applied limit.
    pub fn set_power_limit(node: &mut NodeInstance, watts: f64) -> Result<f64, SmiError> {
        Self::validate(node, watts)?;
        Ok(node.set_gpu_power_limit(watts))
    }

    /// `nvidia-smi -i <idx> -pl <watts>`: set the limit on one GPU.
    pub fn set_power_limit_gpu(
        node: &mut NodeInstance,
        index: usize,
        watts: f64,
    ) -> Result<f64, SmiError> {
        Self::validate(node, watts)?;
        let available = node.gpus.len();
        let gpu = node
            .gpus
            .get_mut(index)
            .ok_or(SmiError::NoSuchGpu { index, available })?;
        Ok(gpu.set_power_limit(watts))
    }

    /// `nvidia-smi -q -d POWER`: current limits of every GPU.
    #[must_use]
    pub fn query(node: &NodeInstance) -> Vec<GpuPowerInfo> {
        node.gpus
            .iter()
            .enumerate()
            .map(|(index, g)| GpuPowerInfo {
                index,
                limit_w: g.power_limit_w(),
                min_limit_w: g.spec().min_cap_w,
                max_limit_w: g.spec().max_cap_w,
                default_limit_w: g.spec().max_cap_w,
            })
            .collect()
    }

    /// Reset every GPU to the default limit.
    pub fn reset(node: &mut NodeInstance) {
        node.reset_gpu_power_limits();
    }

    fn validate(node: &NodeInstance, watts: f64) -> Result<(), SmiError> {
        let spec = node.gpus[0].spec();
        if !watts.is_finite() || watts < spec.min_cap_w || watts > spec.max_cap_w {
            return Err(SmiError::OutOfRange {
                requested_w: watts,
                min_w: spec.min_cap_w,
                max_w: spec.max_cap_w,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_limit_is_applied_to_all_gpus() {
        let mut node = NodeInstance::nominal();
        let applied = NvidiaSmi::set_power_limit(&mut node, 250.0).unwrap();
        assert_eq!(applied, 250.0);
        for info in NvidiaSmi::query(&node) {
            assert_eq!(info.limit_w, 250.0);
        }
    }

    #[test]
    fn out_of_range_is_rejected_not_clamped() {
        let mut node = NodeInstance::nominal();
        let err = NvidiaSmi::set_power_limit(&mut node, 50.0).unwrap_err();
        assert!(matches!(err, SmiError::OutOfRange { .. }));
        // Limits untouched.
        assert!(NvidiaSmi::query(&node).iter().all(|i| i.limit_w == 400.0));
    }

    #[test]
    fn per_gpu_limit() {
        let mut node = NodeInstance::nominal();
        NvidiaSmi::set_power_limit_gpu(&mut node, 2, 300.0).unwrap();
        let q = NvidiaSmi::query(&node);
        assert_eq!(q[2].limit_w, 300.0);
        assert_eq!(q[0].limit_w, 400.0);
    }

    #[test]
    fn bad_gpu_index_errors() {
        let mut node = NodeInstance::nominal();
        let err = NvidiaSmi::set_power_limit_gpu(&mut node, 9, 300.0).unwrap_err();
        assert_eq!(
            err,
            SmiError::NoSuchGpu {
                index: 9,
                available: 4
            }
        );
    }

    #[test]
    fn reset_restores_defaults() {
        let mut node = NodeInstance::nominal();
        NvidiaSmi::set_power_limit(&mut node, 150.0).unwrap();
        NvidiaSmi::reset(&mut node);
        assert!(NvidiaSmi::query(&node).iter().all(|i| i.limit_w == 400.0));
    }

    #[test]
    fn query_reports_device_range() {
        let node = NodeInstance::nominal();
        let q = NvidiaSmi::query(&node);
        assert_eq!(q.len(), 4);
        assert!(q.iter().all(|i| i.min_limit_w == 100.0 && i.max_limit_w == 400.0));
    }

    #[test]
    fn error_messages_are_informative() {
        let msg = SmiError::OutOfRange {
            requested_w: 50.0,
            min_w: 100.0,
            max_w: 400.0,
        }
        .to_string();
        assert!(msg.contains("50.00"));
        assert!(msg.contains("not a valid power limit"));
    }
}
