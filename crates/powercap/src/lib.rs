//! GPU power capping and power-aware scheduling.
//!
//! Three layers:
//!
//! * [`nvidia_smi`] — the `nvidia-smi -pl` analogue the paper uses to set
//!   GPU power limits (§V): validated limits, per-GPU or node-wide, with
//!   query support.
//! * [`scheduler`] — the power-aware batch scheduler the paper proposes in
//!   §VI: classify jobs by workload type, cap VASP-like jobs at 50 % TDP
//!   (which costs <10 % performance), and reallocate the spared power to
//!   admit more jobs under a fixed system power budget, deciding within
//!   30-second scheduling cycles. Event-driven on the calendar queue.
//! * [`campaign`] — datacenter-scale what-if campaigns: thousands of
//!   seeded heterogeneous jobs over partitioned machines, shard-parallel
//!   DES with deterministic merging, compared across cap policies.

pub mod campaign;
pub mod controller;
pub mod nvidia_smi;
pub mod scheduler;

pub use campaign::{CampaignOutcome, CampaignSpec, Distribution};
pub use controller::{ControlledJob, Controller};
pub use nvidia_smi::{GpuPowerInfo, NvidiaSmi, SmiError};
pub use scheduler::{BatchJob, CapResponse, Policy, ScheduleOutcome, Scheduler, WorkloadClass};
