//! GPU power capping and power-aware scheduling.
//!
//! Two layers:
//!
//! * [`nvidia_smi`] — the `nvidia-smi -pl` analogue the paper uses to set
//!   GPU power limits (§V): validated limits, per-GPU or node-wide, with
//!   query support.
//! * [`scheduler`] — the power-aware batch scheduler the paper proposes in
//!   §VI: classify jobs by workload type, cap VASP-like jobs at 50 % TDP
//!   (which costs <10 % performance), and reallocate the spared power to
//!   admit more jobs under a fixed system power budget, deciding within
//!   30-second scheduling cycles.

pub mod controller;
pub mod nvidia_smi;
pub mod scheduler;

pub use controller::{ControlledJob, Controller};
pub use nvidia_smi::{GpuPowerInfo, NvidiaSmi, SmiError};
pub use scheduler::{BatchJob, CapResponse, Policy, ScheduleOutcome, Scheduler, WorkloadClass};
