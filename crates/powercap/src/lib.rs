//! GPU power capping and power-aware scheduling.
//!
//! Three layers:
//!
//! * [`nvidia_smi`] — the `nvidia-smi -pl` analogue the paper uses to set
//!   GPU power limits (§V): validated limits, per-GPU or node-wide, with
//!   query support.
//! * [`scheduler`] — the power-aware batch scheduler the paper proposes in
//!   §VI: classify jobs by workload type, cap VASP-like jobs at 50 % TDP
//!   (which costs <10 % performance), and reallocate the spared power to
//!   admit more jobs under a fixed system power budget, deciding within
//!   30-second scheduling cycles. Event-driven on the calendar queue.
//! * [`policy`] — the open [`CapPolicy`] trait the campaign layer
//!   schedules through: the enum trio reimplemented on the trait (pinned
//!   byte-identical by the `policy_equivalence` suite) plus the
//!   TCO-priced [`TcoAware`] policy, all able to observe the shared site
//!   ledger at decision time.
//! * [`site`] — the site-coupled engine: a [`SiteBudget`] ledger of
//!   committed watts across partitions and a single global-backfill DES
//!   ([`site::run_site`]) for campaigns under one site-wide envelope.
//! * [`campaign`] — datacenter-scale what-if campaigns: thousands of
//!   seeded heterogeneous jobs over partitioned machines, shard-parallel
//!   DES with deterministic merging, compared across cap policies.

pub mod campaign;
pub mod controller;
pub mod nvidia_smi;
pub mod policy;
pub mod scheduler;
pub mod site;

pub use campaign::{CampaignOutcome, CampaignSpec, Distribution};
pub use controller::{ControlledJob, Controller};
pub use nvidia_smi::{GpuPowerInfo, NvidiaSmi, SmiError};
pub use policy::{CapPolicy, PolicyCtx, SiteView, TcoAware, TcoPrices};
pub use scheduler::{BatchJob, CapResponse, Policy, ScheduleOutcome, Scheduler, WorkloadClass};
pub use site::{SiteBudget, SiteRun};
