//! The power-aware batch scheduler of §VI.
//!
//! The paper's proposal: the batch system knows each queued job's workload
//! class (cheap to determine from its input), applies a 50 %-TDP GPU power
//! cap to the classes that tolerate it with <10 % slowdown, and reallocates
//! the spared power to admit more jobs under the site's power budget —
//! deciding once per ~30-second scheduling cycle.
//!
//! ## Simulation engine
//!
//! [`Scheduler::run`] is event-driven: job finishes live in a
//! [`vpp_sim::EventQueue`] and the full admission pass (retire finished
//! jobs, re-derive free nodes/power, scan the FIFO queue) runs only at
//! wakes where the admission state can actually change — a finish is due
//! or a queued job's arrival has passed. Cycle boundaries in between cost
//! O(1): the held system power is integrated over the interval and the
//! clock steps on. Admission itself stays quantised to the paper's cycle
//! boundaries, so the event-driven engine reproduces the superseded
//! polling loop *exactly* — [`reference::run_polling`] is retained and the
//! `scheduler_equivalence` property suite demands `ScheduleOutcome`
//! equality (spans, peak, integral) between the two on random queues.

use crate::policy::{CapPolicy, PolicyCtx, SiteView};

/// Workload classes the scheduler can recognise from job inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Higher-order methods (HSE, RPA): power-hungry, cap-sensitive.
    PowerHungry,
    /// Basic DFT: moderate power, tolerates deep caps.
    Moderate,
    /// Small / k-point-bound jobs: low power, cap-insensitive.
    Light,
    /// Not classifiable — leave at the default limit.
    Unknown,
}

/// A job's measured response to GPU power caps: `(cap, perf, node power)`
/// points sorted by cap, linearly interpolated between points.
#[derive(Debug, Clone, PartialEq)]
pub struct CapResponse {
    points: Vec<(f64, f64, f64)>,
}

impl CapResponse {
    /// Build from `(cap_w, perf_fraction, node_power_w)` points.
    ///
    /// # Panics
    /// If fewer than one point, caps are not strictly increasing, or any
    /// value is non-finite/non-positive.
    #[must_use]
    pub fn new(points: Vec<(f64, f64, f64)>) -> Self {
        assert!(!points.is_empty(), "need at least one response point");
        assert!(
            points.windows(2).all(|w| w[0].0 < w[1].0),
            "caps must be strictly increasing"
        );
        for &(c, p, w) in &points {
            assert!(c > 0.0 && p > 0.0 && w > 0.0, "bad point ({c}, {p}, {w})");
            assert!(c.is_finite() && p.is_finite() && w.is_finite());
        }
        Self { points }
    }

    fn interp(&self, cap_w: f64, f: impl Fn(&(f64, f64, f64)) -> f64) -> f64 {
        let pts = &self.points;
        if cap_w <= pts[0].0 {
            return f(&pts[0]);
        }
        if cap_w >= pts[pts.len() - 1].0 {
            return f(&pts[pts.len() - 1]);
        }
        let i = pts.partition_point(|p| p.0 <= cap_w);
        let (a, b) = (&pts[i - 1], &pts[i]);
        let t = (cap_w - a.0) / (b.0 - a.0);
        f(a) * (1.0 - t) + f(b) * t
    }

    /// Performance fraction (1 = uncapped speed) at a cap.
    #[must_use]
    pub fn perf_at(&self, cap_w: f64) -> f64 {
        self.interp(cap_w, |p| p.1)
    }

    /// Node power draw at a cap, watts.
    #[must_use]
    pub fn power_at(&self, cap_w: f64) -> f64 {
        self.interp(cap_w, |p| p.2)
    }

    /// Deepest cap whose performance loss stays within `max_loss`
    /// (the paper's rule: 50 % TDP costs <10 % for most VASP workloads).
    /// Scans the measured caps from deepest to shallowest.
    #[must_use]
    pub fn recommended_cap(&self, max_loss: f64) -> f64 {
        for &(c, p, _) in &self.points {
            if p >= 1.0 - max_loss {
                return c;
            }
        }
        self.points[self.points.len() - 1].0
    }

    /// The highest measured cap — the job's default power limit (TDP of
    /// its support). "Uncapped" operation means running here, not at any
    /// hardwired site-wide constant.
    #[must_use]
    pub fn max_cap(&self) -> f64 {
        self.points[self.points.len() - 1].0
    }

    /// Performance fraction and node power at the default (uncapped)
    /// limit, i.e. at [`Self::max_cap`].
    #[must_use]
    pub fn uncapped(&self) -> (f64, f64) {
        let p = &self.points[self.points.len() - 1];
        (p.1, p.2)
    }

    /// The measured `(cap_w, perf_fraction, node_power_w)` points, caps
    /// strictly increasing. Policies that optimise over the support (e.g.
    /// the TCO objective) scan these rather than re-sampling the
    /// interpolant.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64, f64)] {
        &self.points
    }

    /// The energy-optimal cap (Afzal et al.'s sweet spot): the measured
    /// cap minimising node energy per unit of work, `power / perf`.
    /// Ties break towards the higher cap (less throttling risk).
    #[must_use]
    pub fn sweet_spot_cap(&self) -> f64 {
        let mut best = (f64::INFINITY, 0.0);
        for &(c, p, w) in &self.points {
            let joules_per_work = w / p;
            if joules_per_work <= best.0 {
                best = (joules_per_work, c);
            }
        }
        best.1
    }
}

/// One queued batch job.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchJob {
    pub id: u64,
    pub name: String,
    pub class: WorkloadClass,
    pub nodes: usize,
    /// Runtime at the default power limit, seconds.
    pub base_runtime_s: f64,
    pub response: CapResponse,
    /// Submission time, seconds (0 = queued from the start).
    pub arrival_s: f64,
}

/// Capping policies the scheduler can run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Default limits everywhere (the baseline).
    Uncapped,
    /// One fixed GPU cap for every job.
    FixedCap(f64),
    /// The paper's proposal: per-class caps chosen so the loss stays
    /// within 10 % (Unknown jobs stay uncapped).
    ClassAware,
    /// Energy-chasing: every job runs at its measured energy-per-work
    /// minimum ([`CapResponse::sweet_spot_cap`]), whatever the slowdown.
    SweetSpot,
}

/// Result of a schedule simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleOutcome {
    /// Time until the last job finishes, seconds.
    pub makespan_s: f64,
    /// `(job id, start, finish)` in start order.
    pub job_spans: Vec<(u64, f64, f64)>,
    /// Peak simultaneous system power, watts.
    pub peak_power_w: f64,
    /// Mean system power while any job ran, watts.
    pub mean_power_w: f64,
}

impl ScheduleOutcome {
    /// Jobs completed per hour of makespan.
    #[must_use]
    pub fn throughput_per_hour(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            return 0.0;
        }
        self.job_spans.len() as f64 * 3600.0 / self.makespan_s
    }
}

/// The power-aware scheduler: fixed node count, fixed system power budget,
/// FIFO with power/node backfill, decisions each cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scheduler {
    pub total_nodes: usize,
    /// System power budget for these nodes, watts.
    pub power_budget_w: f64,
    /// Scheduling cycle, seconds (paper: ~30 s).
    pub cycle_s: f64,
    /// Acceptable slowdown for ClassAware capping.
    pub max_loss: f64,
}

impl Scheduler {
    /// A scheduler over `total_nodes` nodes with the given budget.
    #[must_use]
    pub fn new(total_nodes: usize, power_budget_w: f64) -> Self {
        assert!(total_nodes > 0 && power_budget_w > 0.0);
        Self {
            total_nodes,
            power_budget_w,
            cycle_s: 30.0,
            max_loss: 0.10,
        }
    }

    fn cap_for(&self, job: &BatchJob, policy: Policy) -> Option<f64> {
        match policy {
            Policy::Uncapped => None,
            Policy::FixedCap(c) => Some(c),
            Policy::ClassAware => match job.class {
                WorkloadClass::Unknown => None,
                _ => Some(job.response.recommended_cap(self.max_loss)),
            },
            Policy::SweetSpot => Some(job.response.sweet_spot_cap()),
        }
    }

    /// Effective runtime (seconds) and whole-job power draw (watts) for
    /// `job` under `policy`. Uncapped jobs run at the top of their own
    /// measured support ([`CapResponse::uncapped`]), not at a hardwired
    /// site constant.
    ///
    /// # Panics
    /// If the job needs more nodes than the system has, or its power
    /// demand alone exceeds the budget (it could never start).
    #[must_use]
    pub fn job_demand(&self, job: &BatchJob, policy: Policy) -> (f64, f64) {
        self.demand_from_cap(job, self.cap_for(job, policy))
    }

    /// [`Scheduler::job_demand`] for the open [`CapPolicy`] surface: the
    /// policy decides the cap while observing `site`, the demand
    /// arithmetic is shared with the enum path so the two cannot drift
    /// (the `policy_equivalence` suite pins them byte-identical under a
    /// slack site view).
    ///
    /// # Panics
    /// As [`Scheduler::job_demand`].
    #[must_use]
    pub fn job_demand_with(
        &self,
        job: &BatchJob,
        policy: &dyn CapPolicy,
        site: &SiteView,
    ) -> (f64, f64) {
        self.demand_from_cap(job, policy.cap_for(job, &self.policy_ctx(), site))
    }

    /// The context trait-based policies evaluate under.
    #[must_use]
    pub fn policy_ctx(&self) -> PolicyCtx {
        PolicyCtx {
            max_loss: self.max_loss,
        }
    }

    fn demand_from_cap(&self, job: &BatchJob, cap: Option<f64>) -> (f64, f64) {
        assert!(
            job.nodes <= self.total_nodes,
            "job {} wants {} of {} nodes",
            job.id,
            job.nodes,
            self.total_nodes
        );
        let (perf, node_power) = match cap {
            Some(c) => (job.response.perf_at(c), job.response.power_at(c)),
            None => job.response.uncapped(),
        };
        let power = node_power * job.nodes as f64;
        assert!(
            power <= self.power_budget_w,
            "job {} alone exceeds the power budget",
            job.id
        );
        (job.base_runtime_s / perf, power)
    }

    /// Simulate the queue under `policy`, event-driven.
    ///
    /// Observationally identical to [`reference::run_polling`]; the full
    /// admission pass runs only at wakes where a finish is due or an
    /// arrival has passed, every other cycle boundary is O(1).
    ///
    /// # Panics
    /// As [`Scheduler::job_demand`], for any job in the queue.
    #[must_use]
    pub fn run(&self, queue: &[BatchJob], policy: Policy) -> ScheduleOutcome {
        let demands: Vec<(f64, f64)> = queue
            .iter()
            .map(|j| self.job_demand(j, policy))
            .collect();
        self.run_demands(queue, &demands)
    }

    /// [`Scheduler::run`] for the open [`CapPolicy`] surface. Caps are
    /// decided up front under the slack [`SiteView`] — a single partition
    /// has no site ledger; the coupled engine lives in
    /// [`crate::site::run_site`].
    ///
    /// # Panics
    /// As [`Scheduler::job_demand`], for any job in the queue.
    #[must_use]
    pub fn run_with(&self, queue: &[BatchJob], policy: &dyn CapPolicy) -> ScheduleOutcome {
        let site = SiteView::slack();
        let demands: Vec<(f64, f64)> = queue
            .iter()
            .map(|j| self.job_demand_with(j, policy, &site))
            .collect();
        self.run_demands(queue, &demands)
    }

    /// The event-driven engine proper, shared by the enum and trait entry
    /// points so an API redesign cannot change a single admission.
    fn run_demands(&self, queue: &[BatchJob], demands: &[(f64, f64)]) -> ScheduleOutcome {
        // Arrival order: indices by (arrival, submission order). A cursor
        // walks it forward as arrivals pass, giving O(1) access to the
        // next arrival that could change the admission state.
        let mut arrival_order: Vec<usize> = (0..queue.len()).collect();
        arrival_order.sort_by(|&a, &b| queue[a].arrival_s.total_cmp(&queue[b].arrival_s));
        let mut cursor = 0usize;

        let mut pending: Vec<usize> = (0..queue.len()).collect();
        let mut running: Vec<Running> = Vec::new();
        let mut finishes: vpp_sim::EventQueue<u64> = vpp_sim::EventQueue::new();
        let mut spans: Vec<(u64, f64, f64)> = Vec::new();
        let mut t = 0.0;
        let mut peak = 0.0f64;
        let mut power_time_integral = 0.0;
        let mut last_t = 0.0;
        // System power, re-derived only at admission wakes; between them
        // the running set is constant, so the cached value stays exact.
        let mut used_power = 0.0f64;
        let mut admit = true; // t = 0 is always an admission wake

        loop {
            if admit {
                // Retire due finishes (the queue delivers them in time
                // order; the running list keeps span bookkeeping).
                while finishes.next_before(t + 1e-9).is_some() {}
                running.retain(|r| {
                    if r.finish <= t + 1e-9 {
                        spans.push((r.id, r.start, r.finish));
                        false
                    } else {
                        true
                    }
                });

                // Re-derive free capacity by the same left-to-right sums
                // the polling loop used, keeping the arithmetic — and so
                // every boundary-case admission decision — bit-identical.
                let mut used_nodes: usize = running.iter().map(|r| r.nodes).sum();
                used_power = running.iter().map(|r| r.power_w).sum();

                // FIFO admission with backfill: start every *arrived*
                // queued job that fits in free nodes and free power.
                pending.retain(|&qi| {
                    let job = &queue[qi];
                    let (runtime, power) = demands[qi];
                    if job.arrival_s <= t + 1e-9
                        && used_nodes + job.nodes <= self.total_nodes
                        && used_power + power <= self.power_budget_w + 1e-9
                    {
                        used_nodes += job.nodes;
                        used_power += power;
                        finishes.schedule(t + runtime, job.id);
                        running.push(Running {
                            id: job.id,
                            start: t,
                            finish: t + runtime,
                            nodes: job.nodes,
                            power_w: power,
                        });
                        false
                    } else {
                        true
                    }
                });

                // Arrivals at or before this wake have been offered
                // admission; only later ones can change the state.
                while cursor < arrival_order.len()
                    && queue[arrival_order[cursor]].arrival_s <= t + 1e-9
                {
                    cursor += 1;
                }
            }

            peak = peak.max(used_power);
            power_time_integral += used_power * (t - last_t).max(0.0);
            last_t = t;

            if pending.is_empty() && running.is_empty() {
                break;
            }

            // Advance: next cycle boundary, next finish, or — when idle —
            // the next arrival, whichever comes first.
            let next_finish = finishes.earliest_time().unwrap_or(f64::INFINITY);
            let next_arrival = if cursor < arrival_order.len() {
                queue[arrival_order[cursor]].arrival_s
            } else {
                f64::INFINITY
            };
            let mut next = t + self.cycle_s;
            if next_finish < next {
                next = next_finish;
            }
            if running.is_empty() && next_arrival > next {
                next = next_arrival;
            }
            t = next;
            assert!(t.is_finite(), "scheduler stalled: no running jobs advance");
            admit = next_finish <= t + 1e-9 || next_arrival <= t + 1e-9;
        }

        finalise(spans, peak, power_time_integral)
    }
}

struct Running {
    id: u64,
    start: f64,
    finish: f64,
    nodes: usize,
    power_w: f64,
}

/// Sort spans, derive the makespan and assemble the outcome — shared by
/// the event-driven engine, the polling reference and the site-coupled
/// engine ([`crate::site`]) so the summary arithmetic cannot drift
/// between them.
pub(crate) fn finalise(
    mut spans: Vec<(u64, f64, f64)>,
    peak: f64,
    power_time_integral: f64,
) -> ScheduleOutcome {
    spans.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    let makespan = spans.iter().map(|s| s.2).fold(0.0, f64::max);
    ScheduleOutcome {
        makespan_s: makespan,
        mean_power_w: if makespan > 0.0 {
            power_time_integral / makespan
        } else {
            0.0
        },
        peak_power_w: peak,
        job_spans: spans,
    }
}

pub mod reference {
    //! The superseded fixed-cycle polling engine, kept as the semantic
    //! reference for [`Scheduler::run`]: the `scheduler_equivalence`
    //! property suite runs both on random queues and demands identical
    //! [`ScheduleOutcome`]s — admission order, spans, peak and integral.

    use super::{finalise, BatchJob, Policy, Running, ScheduleOutcome, Scheduler};

    /// Simulate the queue under `policy` with the original polling loop:
    /// every wake rescans `running` and `pending` in full.
    ///
    /// # Panics
    /// As [`Scheduler::job_demand`], for any job in the queue.
    #[must_use]
    pub fn run_polling(sched: &Scheduler, queue: &[BatchJob], policy: Policy) -> ScheduleOutcome {
        let demands: Vec<(f64, f64)> = queue
            .iter()
            .map(|j| sched.job_demand(j, policy))
            .collect();

        let mut pending: Vec<usize> = (0..queue.len()).collect();
        let mut running: Vec<Running> = Vec::new();
        let mut spans: Vec<(u64, f64, f64)> = Vec::new();
        let mut t = 0.0;
        let mut peak = 0.0f64;
        let mut power_time_integral = 0.0;
        let mut last_t = 0.0;

        while !pending.is_empty() || !running.is_empty() {
            // Retire finished jobs.
            running.retain(|r| {
                if r.finish <= t + 1e-9 {
                    spans.push((r.id, r.start, r.finish));
                    false
                } else {
                    true
                }
            });

            // FIFO admission with backfill: start every *arrived* queued
            // job that fits in free nodes and free power this cycle.
            let mut used_nodes: usize = running.iter().map(|r| r.nodes).sum();
            let mut used_power: f64 = running.iter().map(|r| r.power_w).sum();
            pending.retain(|&qi| {
                let job = &queue[qi];
                let (runtime, power) = demands[qi];
                if job.arrival_s <= t + 1e-9
                    && used_nodes + job.nodes <= sched.total_nodes
                    && used_power + power <= sched.power_budget_w + 1e-9
                {
                    used_nodes += job.nodes;
                    used_power += power;
                    running.push(Running {
                        id: job.id,
                        start: t,
                        finish: t + runtime,
                        nodes: job.nodes,
                        power_w: power,
                    });
                    false
                } else {
                    true
                }
            });

            peak = peak.max(used_power);
            power_time_integral += used_power * (t - last_t).max(0.0);
            last_t = t;

            if pending.is_empty() && running.is_empty() {
                break;
            }

            // Advance: next cycle boundary, next finish, or — when idle —
            // the next arrival, whichever comes first.
            let next_finish = running
                .iter()
                .map(|r| r.finish)
                .fold(f64::INFINITY, f64::min);
            let next_arrival = pending
                .iter()
                .map(|&qi| queue[qi].arrival_s)
                .fold(f64::INFINITY, f64::min);
            let mut next = t + sched.cycle_s;
            if next_finish < next {
                next = next_finish;
            }
            if running.is_empty() && next_arrival > next {
                next = next_arrival;
            }
            t = next;
            assert!(t.is_finite(), "scheduler stalled: no running jobs advance");
        }

        // Account for the last stretch.
        power_time_integral +=
            running.iter().map(|r| r.power_w).sum::<f64>() * (t - last_t).max(0.0);

        finalise(spans, peak, power_time_integral)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A VASP-like cap response: 300 W free, 200 W ≈ 9 % loss, 100 W dire.
    fn hungry_response() -> CapResponse {
        CapResponse::new(vec![
            (100.0, 0.40, 900.0),
            (200.0, 0.91, 1300.0),
            (300.0, 1.00, 1750.0),
            (400.0, 1.00, 1810.0),
        ])
    }

    /// A light job: caps barely matter.
    fn light_response() -> CapResponse {
        CapResponse::new(vec![
            (100.0, 0.96, 720.0),
            (200.0, 1.00, 760.0),
            (400.0, 1.00, 766.0),
        ])
    }

    fn job(id: u64, class: WorkloadClass, nodes: usize, rt: f64) -> BatchJob {
        BatchJob {
            id,
            name: format!("job{id}"),
            class,
            nodes,
            base_runtime_s: rt,
            response: match class {
                WorkloadClass::PowerHungry => hungry_response(),
                _ => light_response(),
            },
            arrival_s: 0.0,
        }
    }

    #[test]
    fn cap_response_interpolates() {
        let r = hungry_response();
        assert!((r.perf_at(250.0) - 0.955).abs() < 1e-9);
        assert!((r.power_at(150.0) - 1100.0).abs() < 1e-9);
        assert_eq!(r.perf_at(50.0), 0.40, "clamps below");
        assert_eq!(r.power_at(500.0), 1810.0, "clamps above");
    }

    #[test]
    fn recommended_cap_respects_loss_budget() {
        assert_eq!(hungry_response().recommended_cap(0.10), 200.0);
        assert_eq!(hungry_response().recommended_cap(0.005), 300.0);
        assert_eq!(light_response().recommended_cap(0.10), 100.0);
    }

    #[test]
    fn uncapped_demand_comes_from_the_response_support() {
        // A response whose support tops out at 350 W, not the old
        // hardwired 400 W: uncapped jobs must run at *their* TDP.
        let r = CapResponse::new(vec![(100.0, 0.5, 800.0), (350.0, 1.0, 1500.0)]);
        assert_eq!(r.max_cap(), 350.0);
        assert_eq!(r.uncapped(), (1.0, 1500.0));
        let s = Scheduler::new(4, 10_000.0);
        let mut j = job(1, WorkloadClass::Unknown, 2, 100.0);
        j.response = r;
        let (runtime, power) = s.job_demand(&j, Policy::Uncapped);
        assert!((runtime - 100.0).abs() < 1e-12);
        assert!((power - 3000.0).abs() < 1e-12);
    }

    #[test]
    fn sweet_spot_picks_the_energy_minimum() {
        // hungry: J-per-work 2250 / 1428.6 / 1750 / 1810 -> 200 W.
        assert_eq!(hungry_response().sweet_spot_cap(), 200.0);
        // light: 750 / 760 / 766 -> deepest cap already optimal.
        assert_eq!(light_response().sweet_spot_cap(), 100.0);
    }

    #[test]
    fn sweet_spot_policy_trades_time_for_energy() {
        let s = Scheduler::new(16, 1.0e6);
        let queue: Vec<BatchJob> = (0..4)
            .map(|i| job(i, WorkloadClass::PowerHungry, 1, 600.0))
            .collect();
        let base = s.run(&queue, Policy::Uncapped);
        let sweet = s.run(&queue, Policy::SweetSpot);
        // 200 W sweet spot: 9 % slower but far below uncapped power.
        assert!(sweet.makespan_s > base.makespan_s);
        assert!(sweet.peak_power_w < base.peak_power_w);
        let base_energy = base.mean_power_w * base.makespan_s;
        let sweet_energy = sweet.mean_power_w * sweet.makespan_s;
        assert!(sweet_energy < base_energy, "{sweet_energy} !< {base_energy}");
    }

    #[test]
    fn event_driven_run_matches_polling_reference() {
        let s = Scheduler::new(8, 4000.0);
        let queue: Vec<BatchJob> = (0..6)
            .map(|i| {
                let mut j = job(i, WorkloadClass::PowerHungry, 1 + (i as usize % 2), 400.0);
                j.arrival_s = i as f64 * 90.0;
                j
            })
            .collect();
        for policy in [
            Policy::Uncapped,
            Policy::FixedCap(200.0),
            Policy::ClassAware,
            Policy::SweetSpot,
        ] {
            assert_eq!(
                s.run(&queue, policy),
                reference::run_polling(&s, &queue, policy),
                "{policy:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_response_panics() {
        let _ = CapResponse::new(vec![(200.0, 1.0, 1.0), (100.0, 1.0, 1.0)]);
    }

    #[test]
    fn single_job_runs_to_completion() {
        let s = Scheduler::new(4, 10_000.0);
        let out = s.run(&[job(1, WorkloadClass::PowerHungry, 2, 600.0)], Policy::Uncapped);
        assert_eq!(out.job_spans.len(), 1);
        assert!((out.makespan_s - 600.0).abs() < 1e-6);
        assert!((out.peak_power_w - 2.0 * 1810.0).abs() < 1e-6);
    }

    #[test]
    fn power_budget_is_never_exceeded() {
        let s = Scheduler::new(8, 4000.0);
        let queue: Vec<BatchJob> = (0..6)
            .map(|i| job(i, WorkloadClass::PowerHungry, 1, 300.0))
            .collect();
        for policy in [Policy::Uncapped, Policy::FixedCap(200.0), Policy::ClassAware] {
            let out = s.run(&queue, policy);
            assert!(
                out.peak_power_w <= 4000.0 + 1e-6,
                "{policy:?}: peak {}",
                out.peak_power_w
            );
            assert_eq!(out.job_spans.len(), 6, "{policy:?}: all jobs must finish");
        }
    }

    #[test]
    fn class_aware_capping_improves_throughput_under_tight_budget() {
        // Budget fits 2 uncapped hungry jobs (2×1810) but 3 capped ones
        // (3×1300): the paper's motivating scenario.
        let s = Scheduler::new(8, 4000.0);
        let queue: Vec<BatchJob> = (0..6)
            .map(|i| job(i, WorkloadClass::PowerHungry, 1, 600.0))
            .collect();
        let base = s.run(&queue, Policy::Uncapped);
        let capped = s.run(&queue, Policy::ClassAware);
        assert!(
            capped.makespan_s < base.makespan_s,
            "capped {} vs uncapped {}",
            capped.makespan_s,
            base.makespan_s
        );
    }

    #[test]
    fn capping_does_not_help_when_power_is_plentiful() {
        let s = Scheduler::new(16, 1.0e6);
        let queue: Vec<BatchJob> = (0..4)
            .map(|i| job(i, WorkloadClass::PowerHungry, 1, 600.0))
            .collect();
        let base = s.run(&queue, Policy::Uncapped);
        let capped = s.run(&queue, Policy::ClassAware);
        // With unlimited power, capping only adds the ~9 % slowdown.
        assert!(capped.makespan_s >= base.makespan_s);
        assert!(capped.makespan_s <= base.makespan_s * 1.15);
    }

    #[test]
    fn unknown_jobs_stay_uncapped_under_class_aware() {
        let s = Scheduler::new(4, 10_000.0);
        let queue = vec![job(1, WorkloadClass::Unknown, 1, 100.0)];
        let out = s.run(&queue, Policy::ClassAware);
        assert!((out.peak_power_w - 766.0).abs() < 1e-6, "{}", out.peak_power_w);
    }

    #[test]
    fn node_limits_serialise_jobs() {
        let s = Scheduler::new(2, 1.0e9);
        let queue: Vec<BatchJob> = (0..3)
            .map(|i| job(i, WorkloadClass::Light, 2, 100.0))
            .collect();
        let out = s.run(&queue, Policy::Uncapped);
        // Three 2-node jobs on 2 nodes: strictly sequential.
        assert!(out.makespan_s >= 300.0 - 1e-6);
    }

    #[test]
    fn outcome_is_deterministic() {
        let s = Scheduler::new(8, 5000.0);
        let queue: Vec<BatchJob> = (0..5)
            .map(|i| job(i, WorkloadClass::PowerHungry, 1, 400.0))
            .collect();
        assert_eq!(s.run(&queue, Policy::ClassAware), s.run(&queue, Policy::ClassAware));
    }

    #[test]
    #[should_panic(expected = "exceeds the power budget")]
    fn impossible_job_panics() {
        let s = Scheduler::new(4, 1000.0);
        let _ = s.run(&[job(1, WorkloadClass::PowerHungry, 4, 100.0)], Policy::Uncapped);
    }

    #[test]
    fn arrivals_delay_admission() {
        let s = Scheduler::new(8, 1.0e6);
        let mut late = job(2, WorkloadClass::Light, 1, 100.0);
        late.arrival_s = 500.0;
        let queue = vec![job(1, WorkloadClass::Light, 1, 100.0), late];
        let out = s.run(&queue, Policy::Uncapped);
        let span_of = |id: u64| {
            out.job_spans
                .iter()
                .find(|(j, _, _)| *j == id)
                .copied()
                .unwrap()
        };
        assert!(span_of(1).1 < 1.0, "job 1 starts immediately");
        assert!(span_of(2).1 >= 500.0, "job 2 waits for its arrival");
        // The idle gap between them is skipped, not busy-waited.
        assert!((out.makespan_s - 600.0).abs() < 31.0, "{}", out.makespan_s);
    }

    #[test]
    fn staggered_arrivals_respect_budget() {
        let s = Scheduler::new(8, 4000.0);
        let queue: Vec<BatchJob> = (0..6)
            .map(|i| {
                let mut j = job(i, WorkloadClass::PowerHungry, 1, 400.0);
                j.arrival_s = i as f64 * 120.0;
                j
            })
            .collect();
        let out = s.run(&queue, Policy::ClassAware);
        assert_eq!(out.job_spans.len(), 6);
        assert!(out.peak_power_w <= 4000.0 + 1e-6);
    }

    #[test]
    fn throughput_metric() {
        let s = Scheduler::new(4, 1.0e6);
        let out = s.run(&[job(1, WorkloadClass::Light, 1, 1800.0)], Policy::Uncapped);
        assert!((out.throughput_per_hour() - 2.0).abs() < 1e-9);
    }
}
