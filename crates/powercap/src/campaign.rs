//! Campaign-scale scheduling: thousands of heterogeneous VASP jobs over a
//! partitioned machine, simulated shard-parallel with deterministic
//! merging.
//!
//! The ROADMAP's north star is datacenter-scale what-if studies: run the
//! same synthetic workload under competing cap policies (Wattlytics-style)
//! and compare throughput, energy to solution and cap-induced slowdown at
//! the campaign level. This module supplies:
//!
//! * [`CampaignSpec`] — a seeded generator of heterogeneous [`BatchJob`]s
//!   (mixed methods → workload classes, sizes, KPAR, jittered cap-response
//!   curves, bursty arrivals), routed round-robin over independent machine
//!   partitions.
//! * [`run`] — per-partition event-driven DES ([`Scheduler::run`]) fanned
//!   out over the `vpp_substrate` pool in shards, followed by a
//!   deterministic k-way merge of the per-partition outcomes. Partitions
//!   are simulated independently, so the shard count changes wall-clock
//!   only: the merged [`ScheduleOutcome`] is byte-identical for any
//!   `shards >= 1` (the campaign determinism test pins this).
//! * [`CampaignOutcome`] — campaign-level outputs: merged spans, exact
//!   system peak power (event sweep over all partitions), throughput,
//!   energy-to-solution and slowdown distributions.
//! * The pinned trace-baseline recipe ([`baseline_spec`] /
//!   [`baseline_body`] / [`capture_baseline`]) behind `vpp trace diff
//!   campaign` and the `campaign` entry in `BENCH_results.json`.

use crate::scheduler::{BatchJob, CapResponse, Policy, ScheduleOutcome, Scheduler, WorkloadClass};
use std::collections::BTreeMap;
use vpp_substrate::bench::TraceBaseline;
use vpp_substrate::json::Value;
use vpp_substrate::{par_map, span, trace, Rng};

/// Shape of a synthetic campaign: how many jobs, over what machine.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Master seed; every job derives its own stream from it.
    pub seed: u64,
    /// Independent machine partitions (each with its own node pool and
    /// power budget); jobs are routed round-robin by id.
    pub partitions: usize,
    /// Nodes per partition.
    pub nodes_per_partition: usize,
    /// Power budget per partition, watts.
    pub partition_budget_w: f64,
    /// Arrivals spread over this window, seconds (a fraction of the queue
    /// is backlogged at t = 0).
    pub arrival_window_s: f64,
}

impl CampaignSpec {
    /// A campaign of `jobs` seeded jobs over the default machine shape:
    /// 8 partitions × 32 nodes with a 40 kW budget each.
    #[must_use]
    pub fn new(jobs: usize, seed: u64) -> Self {
        Self {
            jobs,
            seed,
            partitions: 8,
            nodes_per_partition: 32,
            partition_budget_w: 40_000.0,
            arrival_window_s: 4.0 * 3600.0,
        }
    }

    /// The per-partition scheduler this campaign runs on.
    #[must_use]
    pub fn scheduler(&self) -> Scheduler {
        Scheduler::new(self.nodes_per_partition, self.partition_budget_w)
    }

    /// Generate the job mix deterministically: each job forks its own RNG
    /// stream from the master seed, so the mix is independent of iteration
    /// or shard order.
    #[must_use]
    pub fn generate(&self) -> Vec<BatchJob> {
        let master = Rng::new(self.seed);
        (0..self.jobs as u64)
            .map(|id| {
                let mut rng = master.fork(id);
                synth_job(&mut rng, id, self)
            })
            .collect()
    }
}

/// Draw one heterogeneous job: method mix → workload class, KPAR, a
/// small-skewed node count and a jittered per-class cap-response curve.
fn synth_job(rng: &mut Rng, id: u64, spec: &CampaignSpec) -> BatchJob {
    // Method mix loosely following the paper's workload survey: mostly
    // standard DFT, a strong HSE/RPA minority, some k-point-bound small
    // jobs, and a tail the classifier cannot place.
    let (method, class) = match rng.f64() {
        x if x < 0.30 => ("hse", WorkloadClass::PowerHungry),
        x if x < 0.42 => ("rpa", WorkloadClass::PowerHungry),
        x if x < 0.75 => ("pbe", WorkloadClass::Moderate),
        x if x < 0.90 => ("kpt", WorkloadClass::Light),
        _ => ("mix", WorkloadClass::Unknown),
    };
    let kpar = [1usize, 2, 4, 8][rng.index(4)];
    // Runtimes are lognormal (most jobs minutes-to-hours, a heavy tail);
    // KPAR buys parallel speedup at ~85 % efficiency.
    let serial_runtime = rng.lognormal(1800.0_f64.ln(), 0.7).clamp(120.0, 21_600.0);
    let base_runtime_s = serial_runtime / (kpar as f64).powf(0.85);
    let response = synth_response(rng, class);
    // Small jobs dominate; KPAR widens the natural node count. Sizes are
    // clamped to what the partition can host *and* power uncapped, so
    // every generated job is admissible under every policy.
    let base_nodes = [1, 1, 1, 2, 2, 3, 4, 6, 8][rng.index(9)];
    let powerable = (spec.partition_budget_w / response.uncapped().1).floor() as usize;
    let nodes = (base_nodes * kpar.div_ceil(2))
        .min(spec.nodes_per_partition)
        .min(powerable)
        .max(1);
    let arrival_s = if rng.bool(0.3) {
        0.0 // backlogged at campaign start
    } else {
        rng.uniform(0.0, spec.arrival_window_s)
    };
    BatchJob {
        id,
        name: format!("{method}-k{kpar}-{id}"),
        class,
        nodes,
        base_runtime_s,
        response,
        arrival_s,
    }
}

/// A jittered per-class cap-response curve on the A100's 100–400 W range.
fn synth_response(rng: &mut Rng, class: WorkloadClass) -> CapResponse {
    // (perf fractions, node powers) at caps 100/200/300/400 W.
    let (perf, power): ([f64; 4], [f64; 4]) = match class {
        WorkloadClass::PowerHungry => ([0.40, 0.91, 1.00, 1.00], [900.0, 1300.0, 1750.0, 1810.0]),
        WorkloadClass::Moderate => ([0.55, 0.95, 1.00, 1.00], [750.0, 1100.0, 1400.0, 1450.0]),
        WorkloadClass::Light => ([0.96, 1.00, 1.00, 1.00], [720.0, 760.0, 764.0, 766.0]),
        WorkloadClass::Unknown => ([0.70, 0.93, 1.00, 1.00], [800.0, 1150.0, 1500.0, 1550.0]),
    };
    let power_scale = rng.uniform(0.9, 1.1);
    let points = [100.0, 200.0, 300.0, 400.0]
        .iter()
        .zip(perf.iter().zip(power.iter()))
        .map(|(&cap, (&p, &w))| {
            let p = (p * rng.uniform(0.97, 1.03)).clamp(0.05, 1.0);
            (cap, p, w * power_scale)
        })
        .collect();
    CapResponse::new(points)
}

/// Five-number-plus-mean summary of a per-job metric distribution.
///
/// An empty job set has no statistics: every field is NaN (checkable via
/// [`Distribution::is_empty`]) and [`Distribution::to_json`] serialises
/// it as nulls — previously it reported `p50: 0.0`, indistinguishable
/// from a campaign whose jobs really all scored zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Distribution {
    pub min: f64,
    pub p10: f64,
    pub p50: f64,
    pub p90: f64,
    pub max: f64,
    pub mean: f64,
}

impl Distribution {
    /// Summarise `values`; an empty input yields the all-NaN sentinel.
    ///
    /// Quantiles come from [`vpp_stats::describe::quantile`], whose contract —
    /// panic on an empty slice — is exactly why the empty case must be
    /// screened here rather than mapped to zeros (consistency pinned in
    /// `empty_distributions_are_nan_not_zero`).
    #[must_use]
    pub fn summarise(values: Vec<f64>) -> Self {
        if values.is_empty() {
            return Self {
                min: f64::NAN,
                p10: f64::NAN,
                p50: f64::NAN,
                p90: f64::NAN,
                max: f64::NAN,
                mean: f64::NAN,
            };
        }
        Self {
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            p10: vpp_stats::describe::quantile(&values, 0.10),
            p50: vpp_stats::describe::quantile(&values, 0.50),
            p90: vpp_stats::describe::quantile(&values, 0.90),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            mean: values.iter().sum::<f64>() / values.len() as f64,
        }
    }

    /// True for the summary of an empty job set (all fields NaN).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.p50.is_nan()
    }

    /// JSON document; NaN fields (the empty sentinel) become `null`,
    /// which is also the only encoding `Value` can give NaN.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let field = |x: f64| if x.is_nan() { Value::Null } else { Value::Num(x) };
        Value::Obj(vec![
            ("min".to_string(), field(self.min)),
            ("p10".to_string(), field(self.p10)),
            ("p50".to_string(), field(self.p50)),
            ("p90".to_string(), field(self.p90)),
            ("max".to_string(), field(self.max)),
            ("mean".to_string(), field(self.mean)),
        ])
    }
}

/// Campaign-level result: the merged schedule plus the distributions the
/// what-if comparison actually reads.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    /// Jobs simulated.
    pub jobs: usize,
    /// Per-partition outcomes merged deterministically: spans k-way merged
    /// by `(start, id)`, peak from an exact event sweep across partitions,
    /// mean power energy-weighted over the campaign makespan.
    pub merged: ScheduleOutcome,
    /// Total energy to solution across all jobs, joules.
    pub total_energy_j: f64,
    /// Per-job energy to solution, joules.
    pub energy_j: Distribution,
    /// Per-job cap-induced slowdown (runtime under the policy relative to
    /// the job's own uncapped runtime; 1.0 = no slowdown).
    pub slowdown: Distribution,
}

impl CampaignOutcome {
    /// Jobs completed per hour of campaign makespan.
    #[must_use]
    pub fn throughput_per_hour(&self) -> f64 {
        self.merged.throughput_per_hour()
    }
}

/// Run the campaign under `policy` with `shards` parallel work units.
///
/// Jobs are routed to partitions by `id % partitions`; each partition is
/// an independent [`Scheduler::run`] DES. Shards group partitions into
/// contiguous chunks executed over the substrate pool — the grouping
/// affects wall-clock only, never the outcome.
///
/// # Panics
/// If `shards == 0`, or a generated job cannot fit its partition (see
/// [`Scheduler::job_demand`]; impossible with the default machine shape).
#[must_use]
pub fn run(spec: &CampaignSpec, policy: Policy, shards: usize) -> CampaignOutcome {
    assert!(shards > 0, "need at least one shard");
    let jobs = spec.generate();
    let sched = spec.scheduler();
    trace::counter("campaign.jobs", jobs.len() as u64);

    // Route jobs to partitions in submission order.
    let mut queues: Vec<Vec<BatchJob>> = (0..spec.partitions).map(|_| Vec::new()).collect();
    for j in &jobs {
        queues[(j.id % spec.partitions as u64) as usize].push(j.clone());
    }

    // Contiguous shard chunks; flattening restores partition order, so
    // the result is independent of the chunk width.
    let chunk = spec.partitions.div_ceil(shards);
    let chunks: Vec<Vec<(usize, Vec<BatchJob>)>> = queues
        .into_iter()
        .enumerate()
        .collect::<Vec<_>>()
        .chunks(chunk)
        .map(<[(usize, Vec<BatchJob>)]>::to_vec)
        .collect();
    let outcomes: Vec<ScheduleOutcome> = par_map(chunks, |chunk| {
        chunk
            .into_iter()
            .map(|(p, queue)| {
                let _g = span!(
                    "campaign.partition",
                    partition = p as u64,
                    jobs = queue.len() as u64
                );
                sched.run(&queue, policy)
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();

    summarise(spec, &jobs, &sched, policy, &outcomes)
}

/// Merge per-partition outcomes and derive the campaign distributions.
fn summarise(
    spec: &CampaignSpec,
    jobs: &[BatchJob],
    sched: &Scheduler,
    policy: Policy,
    outcomes: &[ScheduleOutcome],
) -> CampaignOutcome {
    let spans = merge_spans(outcomes);
    let makespan = spans.iter().map(|s| s.2).fold(0.0, f64::max);

    // Per-job demand under the policy: powers the peak sweep and the
    // energy/slowdown distributions. Jobs are id-dense (0..n).
    let demand: Vec<(f64, f64)> = jobs.iter().map(|j| sched.job_demand(j, policy)).collect();

    // Exact system peak: sweep start/finish edges across all partitions;
    // at equal timestamps finishes land before starts, matching the
    // retire-then-admit order inside each scheduler wake.
    let mut edges: Vec<(f64, u8, f64)> = Vec::with_capacity(spans.len() * 2);
    for &(id, start, finish) in &spans {
        let power = demand[id as usize].1;
        edges.push((finish, 0, -power));
        edges.push((start, 1, power));
    }
    edges.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let (mut load, mut peak) = (0.0f64, 0.0f64);
    for (_, _, dp) in edges {
        load += dp;
        peak = peak.max(load);
    }

    // Mean system power over the campaign: partition power-time integrals
    // stacked over the shared [0, makespan] window.
    let integral: f64 = outcomes.iter().map(|o| o.mean_power_w * o.makespan_s).sum();
    let merged = ScheduleOutcome {
        makespan_s: makespan,
        job_spans: spans,
        peak_power_w: peak,
        mean_power_w: if makespan > 0.0 { integral / makespan } else { 0.0 },
    };

    let energies: Vec<f64> = demand.iter().map(|&(rt, p)| rt * p).collect();
    let slowdowns: Vec<f64> = jobs
        .iter()
        .zip(&demand)
        .map(|(j, &(rt, _))| rt / (j.base_runtime_s / j.response.uncapped().0))
        .collect();
    CampaignOutcome {
        jobs: spec.jobs,
        merged,
        total_energy_j: energies.iter().sum(),
        energy_j: Distribution::summarise(energies),
        slowdown: Distribution::summarise(slowdowns),
    }
}

/// Deterministic k-way merge of per-partition span lists by `(start, id)`
/// — each input list is already sorted that way, so a cursor scan yields
/// the globally sorted sequence without re-sorting.
fn merge_spans(outcomes: &[ScheduleOutcome]) -> Vec<(u64, f64, f64)> {
    let mut cursors = vec![0usize; outcomes.len()];
    let total: usize = outcomes.iter().map(|o| o.job_spans.len()).sum();
    let mut merged = Vec::with_capacity(total);
    for _ in 0..total {
        let mut best: Option<(usize, (u64, f64, f64))> = None;
        for (k, o) in outcomes.iter().enumerate() {
            if let Some(&span) = o.job_spans.get(cursors[k]) {
                let better = match best {
                    None => true,
                    Some((_, b)) => (span.1, span.0) < (b.1, b.0),
                };
                if better {
                    best = Some((k, span));
                }
            }
        }
        let (k, span) = best.expect("cursor accounting is exact");
        cursors[k] += 1;
        merged.push(span);
    }
    merged
}

// ---------------------------------------------------------------------------
// Pinned trace-baseline recipe (`vpp trace diff campaign`)
// ---------------------------------------------------------------------------

/// Baseline entry name in the `trace_baselines` group.
pub const BASELINE_NAME: &str = "campaign";

/// Span whose subtrees become the per-repeat baseline samples.
pub const SAMPLE_SPAN: &str = "campaign.run";

/// Repeats in the pinned recipe (matches the protocol baselines).
pub const BASELINE_REPEATS: usize = 3;

/// The pinned campaign the baseline measures: modest but heterogeneous,
/// so re-runs stay cheap while still driving every policy's hot path.
#[must_use]
pub fn baseline_spec() -> CampaignSpec {
    CampaignSpec {
        partitions: 4,
        ..CampaignSpec::new(300, 7)
    }
}

/// The headline policy trio every campaign comparison runs.
#[must_use]
pub fn baseline_policies() -> [(&'static str, Policy); 3] {
    [
        ("uncapped", Policy::Uncapped),
        ("class_aware", Policy::ClassAware),
        ("sweet_spot", Policy::SweetSpot),
    ]
}

/// The baseline body: [`BASELINE_REPEATS`] wrapped `campaign.run` spans,
/// each covering the policy trio with per-policy sim-time and energy
/// fields. Runs under whatever trace session the caller holds — the
/// bench harness (`bench_traced`) and [`capture_baseline`] both use it.
pub fn baseline_body() {
    let spec = baseline_spec();
    for rep in 0..BASELINE_REPEATS as u64 {
        let _g = span!("campaign.run", rep = rep);
        for (name, policy) in baseline_policies() {
            let mut g = span!("campaign.policy", sim_t0 = 0.0);
            let out = run(&spec, policy, spec.partitions);
            g.record("policy", name);
            g.record("sim_t1", out.merged.makespan_s);
            g.record("energy_j", out.total_energy_j);
        }
    }
}

/// Capture the pinned recipe under a fresh trace session and roll it into
/// a [`TraceBaseline`] — the re-run side of `vpp trace diff campaign`.
///
/// # Panics
/// If the session overflows `capacity` (a truncated baseline would bias
/// every later comparison).
#[must_use]
pub fn capture_baseline(capacity: usize) -> TraceBaseline {
    let session = trace::session(capacity);
    baseline_body();
    let report = session.finish();
    assert_eq!(
        report.dropped, 0,
        "campaign baseline session overflowed its event budget"
    );
    TraceBaseline {
        aggregate: report.aggregate(),
        samples: report.aggregates_under(SAMPLE_SPAN),
        tolerances: BTreeMap::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seed_deterministic_and_heterogeneous() {
        let spec = CampaignSpec::new(200, 11);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        let classes: std::collections::HashSet<_> = a.iter().map(|j| j.class).collect();
        assert!(classes.len() >= 3, "job mix too uniform: {classes:?}");
        let nodes: std::collections::HashSet<_> = a.iter().map(|j| j.nodes).collect();
        assert!(nodes.len() >= 3, "sizes too uniform: {nodes:?}");
        assert!(a.iter().all(|j| j.nodes <= spec.nodes_per_partition));
        assert!(a.iter().any(|j| j.arrival_s == 0.0), "some backlog at t=0");
        // A different seed moves the mix.
        assert_ne!(CampaignSpec::new(200, 12).generate(), a);
    }

    #[test]
    fn campaign_runs_every_job_exactly_once() {
        let spec = CampaignSpec {
            partitions: 3,
            ..CampaignSpec::new(120, 5)
        };
        let out = run(&spec, Policy::ClassAware, 2);
        assert_eq!(out.merged.job_spans.len(), 120);
        let mut ids: Vec<u64> = out.merged.job_spans.iter().map(|s| s.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..120).collect::<Vec<u64>>());
        // Merge order: (start, id) ascending.
        for w in out.merged.job_spans.windows(2) {
            assert!((w[0].1, w[0].0) <= (w[1].1, w[1].0));
        }
        assert!(out.merged.makespan_s > 0.0);
        assert!(out.total_energy_j > 0.0);
        assert!(out.energy_j.min > 0.0 && out.energy_j.min <= out.energy_j.max);
    }

    #[test]
    fn peak_respects_the_summed_partition_budgets() {
        let spec = CampaignSpec {
            partitions: 4,
            ..CampaignSpec::new(300, 7)
        };
        let out = run(&spec, Policy::Uncapped, 4);
        assert!(out.merged.peak_power_w <= 4.0 * spec.partition_budget_w + 1e-6);
        // The campaign peak can exceed any single partition's budget.
        assert!(out.merged.peak_power_w > 0.0);
    }

    #[test]
    fn sweet_spot_cuts_campaign_energy_but_not_for_free() {
        let spec = baseline_spec();
        let base = run(&spec, Policy::Uncapped, spec.partitions);
        let sweet = run(&spec, Policy::SweetSpot, spec.partitions);
        assert!(sweet.total_energy_j < base.total_energy_j);
        assert!(sweet.slowdown.p50 >= base.slowdown.p50);
        assert!((base.slowdown.p50 - 1.0).abs() < 1e-9, "uncapped has no slowdown");
    }

    #[test]
    fn distribution_summary_matches_hand_computation() {
        let d = Distribution::summarise(vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 4.0);
        assert!((d.p50 - 2.5).abs() < 1e-12);
        assert!((d.mean - 2.5).abs() < 1e-12);
        assert!(!d.is_empty());
        // Quantiles delegate to the shared vpp_stats implementation.
        assert_eq!(d.p10, vpp_stats::describe::quantile(&[1.0, 2.0, 3.0, 4.0], 0.10));
    }

    #[test]
    fn empty_distributions_are_nan_not_zero() {
        let empty = Distribution::summarise(Vec::new());
        assert!(empty.is_empty());
        for x in [empty.min, empty.p10, empty.p50, empty.p90, empty.max, empty.mean] {
            assert!(x.is_nan(), "empty stats must be unrepresentable as data");
        }
        // ...and the JSON form is nulls, never a fake zero.
        let doc = empty.to_json();
        assert_eq!(doc.get("p50"), Some(&Value::Null));
        assert_eq!(doc.get("mean"), Some(&Value::Null));
        let real = Distribution::summarise(vec![0.0, 0.0]).to_json();
        assert_eq!(real.get("p50"), Some(&Value::Num(0.0)), "true zeros stay numeric");
        // The screened-out case is exactly vpp_stats::describe::quantile's panic
        // contract — the two layers agree that empty has no quantiles.
        let panics = std::panic::catch_unwind(|| vpp_stats::describe::quantile(&[], 0.5));
        assert!(panics.is_err(), "quantile must reject empty slices");
    }

    #[test]
    fn baseline_capture_yields_one_sample_per_repeat() {
        let base = capture_baseline(1 << 22);
        assert_eq!(base.samples.len(), BASELINE_REPEATS);
        let runs = base.aggregate.span(SAMPLE_SPAN).expect("campaign.run aggregated");
        assert_eq!(runs.count, BASELINE_REPEATS as u64);
        for s in &base.samples {
            let pol = s.span("campaign.policy").expect("policy spans nested");
            assert_eq!(pol.count, baseline_policies().len() as u64);
            assert!(pol.sim_s > 0.0, "policy spans carry sim time");
            assert!(pol.energy_j > 0.0, "policy spans carry energy");
        }
        assert!(
            base.aggregate.counters.contains_key("des.scheduled"),
            "DES hot-path counters guard the new engine: {:?}",
            base.aggregate.counters.keys().collect::<Vec<_>>()
        );
    }
}
