//! Campaign-scale scheduling: thousands of heterogeneous VASP jobs over a
//! partitioned machine, simulated shard-parallel with deterministic
//! merging.
//!
//! The ROADMAP's north star is datacenter-scale what-if studies: run the
//! same synthetic workload under competing cap policies (Wattlytics-style)
//! and compare throughput, energy to solution, dollar cost and
//! cap-induced slowdown at the campaign level. This module supplies:
//!
//! * [`CampaignSpec`] — a seeded generator of heterogeneous [`BatchJob`]s
//!   (mixed methods → workload classes, sizes, KPAR, jittered cap-response
//!   curves, bursty arrivals), routed round-robin over machine partitions.
//! * [`run`] — the campaign simulator behind any [`CapPolicy`]. With no
//!   site budget, partitions are independent event-driven DES runs
//!   ([`Scheduler::run_with`]) fanned out over the `vpp_substrate` pool in
//!   shards and merged deterministically; this path is byte-identical to
//!   the superseded enum engine (retained as [`reference::run_enum`], the
//!   `policy_equivalence` suite pins it). With `site_budget_w` set, the
//!   partitions couple through a [`crate::site::SiteBudget`] ledger and
//!   run as one global-backfill event loop ([`crate::site::run_site`]).
//!   Either way the merged [`ScheduleOutcome`] is byte-identical for any
//!   `shards >= 1` (the campaign determinism tests pin both paths).
//! * [`CampaignOutcome`] — campaign-level outputs: merged spans, exact
//!   system peak power, throughput, energy-to-solution, the Wattlytics
//!   TCO objective in dollars, and slowdown distributions (raw per-job
//!   samples retained for [`CampaignOutcome::slowdown_violin`]).
//! * The pinned trace-baseline recipe ([`baseline_spec`] /
//!   [`baseline_body`] / [`capture_baseline`]) behind `vpp trace diff
//!   campaign`, and the `repro campaign_contention` section
//!   ([`contention_report`]).

use crate::policy::{CapPolicy, ClassAware, SiteView, SweetSpot, TcoAware, TcoPrices, Uncapped};
use crate::scheduler::{BatchJob, CapResponse, ScheduleOutcome, Scheduler, WorkloadClass};
use crate::site;
use std::collections::BTreeMap;
use std::fmt;
use vpp_stats::ViolinStats;
use vpp_substrate::bench::TraceBaseline;
use vpp_substrate::json::Value;
use vpp_substrate::{par_map, span, trace, Rng};

/// Shape of a synthetic campaign: how many jobs, over what machine.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Master seed; every job derives its own stream from it.
    pub seed: u64,
    /// Machine partitions (each with its own node pool and power budget);
    /// jobs are routed round-robin by id — their *home* partition, which
    /// is also where they run unless a site budget enables backfill.
    pub partitions: usize,
    /// Nodes per partition.
    pub nodes_per_partition: usize,
    /// Power budget per partition, watts.
    pub partition_budget_w: f64,
    /// Arrivals spread over this window, seconds (a fraction of the queue
    /// is backlogged at t = 0).
    pub arrival_window_s: f64,
    /// Site-wide power budget, watts. `None` leaves the partitions
    /// independent (each capped by `partition_budget_w` alone); `Some`
    /// couples them through one [`crate::site::SiteBudget`] ledger and
    /// turns on cross-partition backfill.
    pub site_budget_w: Option<f64>,
}

impl CampaignSpec {
    /// A campaign of `jobs` seeded jobs over the default machine shape:
    /// 8 partitions × 32 nodes with a 40 kW budget each, no site budget.
    #[must_use]
    pub fn new(jobs: usize, seed: u64) -> Self {
        Self {
            jobs,
            seed,
            partitions: 8,
            nodes_per_partition: 32,
            partition_budget_w: 40_000.0,
            arrival_window_s: 4.0 * 3600.0,
            site_budget_w: None,
        }
    }

    /// The per-partition scheduler this campaign runs on.
    #[must_use]
    pub fn scheduler(&self) -> Scheduler {
        Scheduler::new(self.nodes_per_partition, self.partition_budget_w)
    }

    /// Summed partition budgets, watts — the site's uncoupled envelope.
    #[must_use]
    pub fn summed_budget_w(&self) -> f64 {
        self.partitions as f64 * self.partition_budget_w
    }

    /// Generate the job mix deterministically: each job forks its own RNG
    /// stream from the master seed, so the mix is independent of iteration
    /// or shard order.
    #[must_use]
    pub fn generate(&self) -> Vec<BatchJob> {
        let master = Rng::new(self.seed);
        (0..self.jobs as u64)
            .map(|id| {
                let mut rng = master.fork(id);
                synth_job(&mut rng, id, self)
            })
            .collect()
    }
}

/// Draw one heterogeneous job: method mix → workload class, KPAR, a
/// small-skewed node count and a jittered per-class cap-response curve.
fn synth_job(rng: &mut Rng, id: u64, spec: &CampaignSpec) -> BatchJob {
    // Method mix loosely following the paper's workload survey: mostly
    // standard DFT, a strong HSE/RPA minority, some k-point-bound small
    // jobs, and a tail the classifier cannot place.
    let (method, class) = match rng.f64() {
        x if x < 0.30 => ("hse", WorkloadClass::PowerHungry),
        x if x < 0.42 => ("rpa", WorkloadClass::PowerHungry),
        x if x < 0.75 => ("pbe", WorkloadClass::Moderate),
        x if x < 0.90 => ("kpt", WorkloadClass::Light),
        _ => ("mix", WorkloadClass::Unknown),
    };
    let kpar = [1usize, 2, 4, 8][rng.index(4)];
    // Runtimes are lognormal (most jobs minutes-to-hours, a heavy tail);
    // KPAR buys parallel speedup at ~85 % efficiency.
    let serial_runtime = rng.lognormal(1800.0_f64.ln(), 0.7).clamp(120.0, 21_600.0);
    let base_runtime_s = serial_runtime / (kpar as f64).powf(0.85);
    let response = synth_response(rng, class);
    // Small jobs dominate; KPAR widens the natural node count. Sizes are
    // clamped to what the partition can host *and* power uncapped, so
    // every generated job is admissible under every policy.
    let base_nodes = [1, 1, 1, 2, 2, 3, 4, 6, 8][rng.index(9)];
    let powerable = (spec.partition_budget_w / response.uncapped().1).floor() as usize;
    let nodes = (base_nodes * kpar.div_ceil(2))
        .min(spec.nodes_per_partition)
        .min(powerable)
        .max(1);
    let arrival_s = if rng.bool(0.3) {
        0.0 // backlogged at campaign start
    } else {
        rng.uniform(0.0, spec.arrival_window_s)
    };
    BatchJob {
        id,
        name: format!("{method}-k{kpar}-{id}"),
        class,
        nodes,
        base_runtime_s,
        response,
        arrival_s,
    }
}

/// A jittered per-class cap-response curve on the A100's 100–400 W range.
fn synth_response(rng: &mut Rng, class: WorkloadClass) -> CapResponse {
    // (perf fractions, node powers) at caps 100/200/300/400 W.
    let (perf, power): ([f64; 4], [f64; 4]) = match class {
        WorkloadClass::PowerHungry => ([0.40, 0.91, 1.00, 1.00], [900.0, 1300.0, 1750.0, 1810.0]),
        WorkloadClass::Moderate => ([0.55, 0.95, 1.00, 1.00], [750.0, 1100.0, 1400.0, 1450.0]),
        WorkloadClass::Light => ([0.96, 1.00, 1.00, 1.00], [720.0, 760.0, 764.0, 766.0]),
        WorkloadClass::Unknown => ([0.70, 0.93, 1.00, 1.00], [800.0, 1150.0, 1500.0, 1550.0]),
    };
    let power_scale = rng.uniform(0.9, 1.1);
    let points = [100.0, 200.0, 300.0, 400.0]
        .iter()
        .zip(perf.iter().zip(power.iter()))
        .map(|(&cap, (&p, &w))| {
            let p = (p * rng.uniform(0.97, 1.03)).clamp(0.05, 1.0);
            (cap, p, w * power_scale)
        })
        .collect();
    CapResponse::new(points)
}

/// Five-number-plus-mean summary of a per-job metric distribution.
///
/// An empty job set has no statistics: every field is NaN (checkable via
/// [`Distribution::is_empty`]) and [`Distribution::to_json`] serialises
/// it as nulls — previously it reported `p50: 0.0`, indistinguishable
/// from a campaign whose jobs really all scored zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Distribution {
    pub min: f64,
    pub p10: f64,
    pub p50: f64,
    pub p90: f64,
    pub max: f64,
    pub mean: f64,
}

impl Distribution {
    /// Summarise `values`; an empty input yields the all-NaN sentinel.
    ///
    /// Quantiles come from [`vpp_stats::describe::quantile`], whose contract —
    /// panic on an empty slice — is exactly why the empty case must be
    /// screened here rather than mapped to zeros (consistency pinned in
    /// `empty_distributions_are_nan_not_zero`).
    #[must_use]
    pub fn summarise(values: Vec<f64>) -> Self {
        if values.is_empty() {
            return Self {
                min: f64::NAN,
                p10: f64::NAN,
                p50: f64::NAN,
                p90: f64::NAN,
                max: f64::NAN,
                mean: f64::NAN,
            };
        }
        Self {
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            p10: vpp_stats::describe::quantile(&values, 0.10),
            p50: vpp_stats::describe::quantile(&values, 0.50),
            p90: vpp_stats::describe::quantile(&values, 0.90),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            mean: values.iter().sum::<f64>() / values.len() as f64,
        }
    }

    /// True for the summary of an empty job set (all fields NaN).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.p50.is_nan()
    }

    /// JSON document; NaN fields (the empty sentinel) become `null`,
    /// which is also the only encoding `Value` can give NaN.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let field = |x: f64| if x.is_nan() { Value::Null } else { Value::Num(x) };
        Value::Obj(vec![
            ("min".to_string(), field(self.min)),
            ("p10".to_string(), field(self.p10)),
            ("p50".to_string(), field(self.p50)),
            ("p90".to_string(), field(self.p90)),
            ("max".to_string(), field(self.max)),
            ("mean".to_string(), field(self.mean)),
        ])
    }
}

/// Campaign-level result: the merged schedule plus the distributions the
/// what-if comparison actually reads.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    /// Jobs simulated.
    pub jobs: usize,
    /// Per-partition outcomes merged deterministically: spans k-way merged
    /// by `(start, id)`, peak from an exact event sweep across partitions,
    /// mean power energy-weighted over the campaign makespan.
    pub merged: ScheduleOutcome,
    /// Total energy to solution across all jobs, joules.
    pub total_energy_j: f64,
    /// Per-job energy to solution, joules.
    pub energy_j: Distribution,
    /// Per-job cap-induced slowdown (runtime under the policy relative to
    /// the job's own uncapped runtime; 1.0 = no slowdown).
    pub slowdown: Distribution,
    /// The raw per-job slowdown samples behind [`CampaignOutcome::slowdown`],
    /// in job-id order — the input to [`CampaignOutcome::slowdown_violin`].
    pub slowdown_samples: Vec<f64>,
    /// The Wattlytics TCO objective at [`TcoPrices::default`]: energy
    /// dollars plus node-hour dollars summed over all jobs.
    pub tco_usd: f64,
    /// Jobs that started away from their home partition (always 0 without
    /// a site budget: independent partitions cannot backfill).
    pub backfilled: usize,
}

impl CampaignOutcome {
    /// Jobs completed per hour of campaign makespan.
    #[must_use]
    pub fn throughput_per_hour(&self) -> f64 {
        self.merged.throughput_per_hour()
    }

    /// Violin summary (quartiles + KDE outline) of the per-job slowdowns.
    ///
    /// # Panics
    /// If the campaign had no jobs or `n_outline < 2`
    /// ([`ViolinStats::from_samples`]'s contract).
    #[must_use]
    pub fn slowdown_violin(&self, n_outline: usize) -> ViolinStats {
        ViolinStats::from_samples(&self.slowdown_samples, n_outline)
    }
}

/// Run the campaign under `policy` with `shards` parallel work units.
///
/// Without a site budget, jobs run on their home partition
/// (`id % partitions`) and each partition is an independent
/// [`Scheduler::run_with`] DES; shards group partitions into contiguous
/// chunks executed over the substrate pool. With `site_budget_w` set the
/// partitions share one watts ledger and the campaign runs as a single
/// global-backfill event loop ([`crate::site::run_site`]). In both modes
/// the shard count affects wall-clock only, never the outcome: the
/// independent path merges by `(start, id)`, the coupled path is a pure
/// function of `(spec, policy)`.
///
/// # Panics
/// If `shards == 0`, or a generated job cannot fit its partition (see
/// [`Scheduler::job_demand`]; impossible with the default machine shape),
/// or the site budget is too tight for some job to ever start.
#[must_use]
pub fn run(spec: &CampaignSpec, policy: &dyn CapPolicy, shards: usize) -> CampaignOutcome {
    assert!(shards > 0, "need at least one shard");
    let jobs = spec.generate();
    let sched = spec.scheduler();
    trace::counter("campaign.jobs", jobs.len() as u64);

    if spec.site_budget_w.is_some() {
        let sr = site::run_site(spec, &jobs, policy);
        return summarise(spec, &jobs, &sr.demand, std::slice::from_ref(&sr.outcome), sr.backfilled);
    }

    let outcomes = run_partitioned(spec, route(spec, &jobs), shards, |queue| {
        sched.run_with(queue, policy)
    });
    let slack = SiteView::slack();
    let demand: Vec<(f64, f64)> = jobs
        .iter()
        .map(|j| sched.job_demand_with(j, policy, &slack))
        .collect();
    summarise(spec, &jobs, &demand, &outcomes, 0)
}

/// Route jobs to their home partitions in submission order.
fn route(spec: &CampaignSpec, jobs: &[BatchJob]) -> Vec<Vec<BatchJob>> {
    let mut queues: Vec<Vec<BatchJob>> = (0..spec.partitions).map(|_| Vec::new()).collect();
    for j in jobs {
        queues[(j.id % spec.partitions as u64) as usize].push(j.clone());
    }
    queues
}

/// Fan per-partition queues out over the pool in contiguous shard chunks;
/// flattening restores partition order, so the result is independent of
/// the chunk width. Shared by the trait path and the enum reference.
fn run_partitioned<F>(
    spec: &CampaignSpec,
    queues: Vec<Vec<BatchJob>>,
    shards: usize,
    sim: F,
) -> Vec<ScheduleOutcome>
where
    F: Fn(&[BatchJob]) -> ScheduleOutcome + Sync,
{
    let chunk = spec.partitions.div_ceil(shards);
    let chunks: Vec<Vec<(usize, Vec<BatchJob>)>> = queues
        .into_iter()
        .enumerate()
        .collect::<Vec<_>>()
        .chunks(chunk)
        .map(<[(usize, Vec<BatchJob>)]>::to_vec)
        .collect();
    par_map(chunks, |chunk| {
        chunk
            .into_iter()
            .map(|(p, queue)| {
                let _g = span!(
                    "campaign.partition",
                    partition = p as u64,
                    jobs = queue.len() as u64
                );
                sim(&queue)
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Merge outcomes and derive the campaign distributions from the per-job
/// `(runtime, power)` demands the engine actually ran (policy-free: the
/// enum reference, the trait path and the site engine all land here).
fn summarise(
    spec: &CampaignSpec,
    jobs: &[BatchJob],
    demand: &[(f64, f64)],
    outcomes: &[ScheduleOutcome],
    backfilled: usize,
) -> CampaignOutcome {
    let spans = merge_spans(outcomes);
    let makespan = spans.iter().map(|s| s.2).fold(0.0, f64::max);

    // Exact system peak: sweep start/finish edges across all partitions;
    // at equal timestamps finishes land before starts, matching the
    // retire-then-admit order inside each scheduler wake. Jobs are
    // id-dense (0..n), so `demand` is indexable by id.
    let mut edges: Vec<(f64, u8, f64)> = Vec::with_capacity(spans.len() * 2);
    for &(id, start, finish) in &spans {
        let power = demand[id as usize].1;
        edges.push((finish, 0, -power));
        edges.push((start, 1, power));
    }
    edges.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let (mut load, mut peak) = (0.0f64, 0.0f64);
    for (_, _, dp) in edges {
        load += dp;
        peak = peak.max(load);
    }

    // Mean system power over the campaign: partition power-time integrals
    // stacked over the shared [0, makespan] window.
    let integral: f64 = outcomes.iter().map(|o| o.mean_power_w * o.makespan_s).sum();
    let merged = ScheduleOutcome {
        makespan_s: makespan,
        job_spans: spans,
        peak_power_w: peak,
        mean_power_w: if makespan > 0.0 { integral / makespan } else { 0.0 },
    };

    let prices = TcoPrices::default();
    let energies: Vec<f64> = demand.iter().map(|&(rt, p)| rt * p).collect();
    let tco_usd: f64 = jobs
        .iter()
        .zip(demand)
        .map(|(j, &(rt, p))| prices.job_cost_usd(j.nodes, rt, rt * p))
        .sum();
    let slowdowns: Vec<f64> = jobs
        .iter()
        .zip(demand)
        .map(|(j, &(rt, _))| rt / (j.base_runtime_s / j.response.uncapped().0))
        .collect();
    CampaignOutcome {
        jobs: spec.jobs,
        merged,
        total_energy_j: energies.iter().sum(),
        energy_j: Distribution::summarise(energies),
        slowdown: Distribution::summarise(slowdowns.clone()),
        slowdown_samples: slowdowns,
        tco_usd,
        backfilled,
    }
}

/// Deterministic k-way merge of per-partition span lists by `(start, id)`
/// — each input list is already sorted that way, so a cursor scan yields
/// the globally sorted sequence without re-sorting.
fn merge_spans(outcomes: &[ScheduleOutcome]) -> Vec<(u64, f64, f64)> {
    let mut cursors = vec![0usize; outcomes.len()];
    let total: usize = outcomes.iter().map(|o| o.job_spans.len()).sum();
    let mut merged = Vec::with_capacity(total);
    for _ in 0..total {
        let mut best: Option<(usize, (u64, f64, f64))> = None;
        for (k, o) in outcomes.iter().enumerate() {
            if let Some(&span) = o.job_spans.get(cursors[k]) {
                let better = match best {
                    None => true,
                    Some((_, b)) => (span.1, span.0) < (b.1, b.0),
                };
                if better {
                    best = Some((k, span));
                }
            }
        }
        let (k, span) = best.expect("cursor accounting is exact");
        cursors[k] += 1;
        merged.push(span);
    }
    merged
}

pub mod reference {
    //! The superseded closed-enum campaign path, retained as the semantic
    //! reference for the [`CapPolicy`](super::CapPolicy) redesign: the
    //! `policy_equivalence` differential suite runs both on the same
    //! specs and demands byte-identical [`CampaignOutcome`]s whenever the
    //! site budget is slack (i.e. absent — the enum engine predates the
    //! site ledger and never had one).

    use super::{route, run_partitioned, summarise, CampaignOutcome, CampaignSpec};
    use crate::scheduler::Policy;
    use vpp_substrate::trace;

    /// Run the campaign under the closed [`Policy`] enum, exactly as
    /// before the trait redesign: per-partition [`Scheduler::run`]
    /// (enum-dispatched caps), shard fan-out, deterministic merge.
    ///
    /// [`Scheduler::run`]: crate::scheduler::Scheduler::run
    ///
    /// # Panics
    /// If `shards == 0`, a job cannot fit its partition, or the spec
    /// carries a site budget (the enum engine has no site ledger).
    #[must_use]
    pub fn run_enum(spec: &CampaignSpec, policy: Policy, shards: usize) -> CampaignOutcome {
        assert!(shards > 0, "need at least one shard");
        assert!(
            spec.site_budget_w.is_none(),
            "the enum reference predates the site ledger"
        );
        let jobs = spec.generate();
        let sched = spec.scheduler();
        trace::counter("campaign.jobs", jobs.len() as u64);
        let outcomes = run_partitioned(spec, route(spec, &jobs), shards, |queue| {
            sched.run(queue, policy)
        });
        let demand: Vec<(f64, f64)> = jobs.iter().map(|j| sched.job_demand(j, policy)).collect();
        summarise(spec, &jobs, &demand, &outcomes, 0)
    }
}

// ---------------------------------------------------------------------------
// Pinned trace-baseline recipe (`vpp trace diff campaign`)
// ---------------------------------------------------------------------------

/// Baseline entry name in the `trace_baselines` group.
pub const BASELINE_NAME: &str = "campaign";

/// Span whose subtrees become the per-repeat baseline samples.
pub const SAMPLE_SPAN: &str = "campaign.run";

/// Repeats in the pinned recipe (matches the protocol baselines).
pub const BASELINE_REPEATS: usize = 3;

/// The pinned campaign the baseline measures: modest but heterogeneous,
/// so re-runs stay cheap while still driving every policy's hot path.
#[must_use]
pub fn baseline_spec() -> CampaignSpec {
    CampaignSpec {
        partitions: 4,
        ..CampaignSpec::new(300, 7)
    }
}

/// The headline policy trio every campaign comparison runs.
#[must_use]
pub fn baseline_policies() -> [(&'static str, &'static dyn CapPolicy); 3] {
    [
        ("uncapped", &Uncapped),
        ("class_aware", &ClassAware),
        ("sweet_spot", &SweetSpot),
    ]
}

/// The baseline body: [`BASELINE_REPEATS`] wrapped `campaign.run` spans,
/// each covering the policy trio with per-policy sim-time and energy
/// fields. Runs under whatever trace session the caller holds — the
/// bench harness (`bench_traced`) and [`capture_baseline`] both use it.
pub fn baseline_body() {
    let spec = baseline_spec();
    for rep in 0..BASELINE_REPEATS as u64 {
        let _g = span!("campaign.run", rep = rep);
        for (name, policy) in baseline_policies() {
            let mut g = span!("campaign.policy", sim_t0 = 0.0);
            let out = run(&spec, policy, spec.partitions);
            g.record("policy", name);
            g.record("sim_t1", out.merged.makespan_s);
            g.record("energy_j", out.total_energy_j);
        }
    }
}

/// Capture the pinned recipe under a fresh trace session and roll it into
/// a [`TraceBaseline`] — the re-run side of `vpp trace diff campaign`.
///
/// # Panics
/// If the session overflows `capacity` (a truncated baseline would bias
/// every later comparison).
#[must_use]
pub fn capture_baseline(capacity: usize) -> TraceBaseline {
    let session = trace::session(capacity);
    baseline_body();
    let report = session.finish();
    assert_eq!(
        report.dropped, 0,
        "campaign baseline session overflowed its event budget"
    );
    TraceBaseline {
        aggregate: report.aggregate(),
        samples: report.aggregates_under(SAMPLE_SPAN),
        tolerances: BTreeMap::new(),
    }
}

// ---------------------------------------------------------------------------
// `repro campaign_contention`: policies under a tight site budget
// ---------------------------------------------------------------------------

/// Site budget of the contention study, as a fraction of the summed
/// partition budgets (the acceptance scenario: 60 %).
pub const CONTENTION_BUDGET_FRACTION: f64 = 0.6;

/// Outline points per slowdown violin in the contention report.
pub const CONTENTION_VIOLIN_POINTS: usize = 40;

/// The pinned contention campaign: the default machine throttled to
/// [`CONTENTION_BUDGET_FRACTION`] of its summed partition budgets.
#[must_use]
pub fn contention_spec() -> CampaignSpec {
    let base = CampaignSpec::new(1200, 7);
    CampaignSpec {
        site_budget_w: Some(CONTENTION_BUDGET_FRACTION * base.summed_budget_w()),
        ..base
    }
}

/// The trio plus [`TcoAware`] — the comparison the contention table runs.
#[must_use]
pub fn contention_policies() -> [(&'static str, &'static dyn CapPolicy); 4] {
    [
        ("uncapped", &Uncapped),
        ("class_aware", &ClassAware),
        ("sweet_spot", &SweetSpot),
        ("tco_aware", &TcoAware::DEFAULT),
    ]
}

/// One policy's row of the contention study.
#[derive(Debug, Clone)]
pub struct ContentionRow {
    pub policy: &'static str,
    pub outcome: CampaignOutcome,
    pub violin: ViolinStats,
}

/// The `repro campaign_contention` section: the policy comparison table
/// plus per-policy slowdown violins under the tight site budget.
#[derive(Debug, Clone)]
pub struct ContentionReport {
    pub spec: CampaignSpec,
    pub rows: Vec<ContentionRow>,
}

/// Run the pinned contention study.
#[must_use]
pub fn contention_report() -> ContentionReport {
    let spec = contention_spec();
    let rows = contention_policies()
        .into_iter()
        .map(|(name, policy)| {
            let outcome = run(&spec, policy, spec.partitions);
            let violin = outcome.slowdown_violin(CONTENTION_VIOLIN_POINTS);
            ContentionRow {
                policy: name,
                outcome,
                violin,
            }
        })
        .collect();
    ContentionReport { spec, rows }
}

/// Render a violin outline as an ASCII density strip (low→high x), one
/// character per outline point.
fn render_outline(outline: &[(f64, f64)]) -> String {
    const LEVELS: &[u8] = b" .:-=+*#%@";
    let peak = outline.iter().map(|&(_, y)| y).fold(0.0f64, f64::max);
    outline
        .iter()
        .map(|&(_, y)| {
            let level = if peak > 0.0 {
                ((y / peak) * (LEVELS.len() - 1) as f64).round() as usize
            } else {
                0
            };
            LEVELS[level.min(LEVELS.len() - 1)] as char
        })
        .collect()
}

impl fmt::Display for ContentionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let budget = self.spec.site_budget_w.unwrap_or(f64::INFINITY);
        writeln!(
            f,
            "== campaign_contention: cap policies negotiating one site budget =="
        )?;
        writeln!(
            f,
            "campaign : {} jobs, seed {}, {} partitions x {} nodes ({:.0} kW each)",
            self.spec.jobs,
            self.spec.seed,
            self.spec.partitions,
            self.spec.nodes_per_partition,
            self.spec.partition_budget_w / 1e3,
        )?;
        writeln!(
            f,
            "site     : {:.1} kW budget ({:.0} % of the {:.0} kW summed envelope), global backfill on",
            budget / 1e3,
            100.0 * budget / self.spec.summed_budget_w(),
            self.spec.summed_budget_w() / 1e3,
        )?;
        writeln!(f)?;
        writeln!(
            f,
            "{:<12} {:>7} {:>9} {:>8} {:>8} {:>10} {:>9} {:>9} {:>9} {:>9}",
            "policy",
            "jobs/h",
            "makespan",
            "peak kW",
            "mean kW",
            "energy MJ",
            "tco $",
            "slow p50",
            "slow p90",
            "backfill"
        )?;
        for r in &self.rows {
            let o = &r.outcome;
            writeln!(
                f,
                "{:<12} {:>7.1} {:>8.2}h {:>8.1} {:>8.1} {:>10.1} {:>9.2} {:>9.3} {:>9.3} {:>9}",
                r.policy,
                o.throughput_per_hour(),
                o.merged.makespan_s / 3600.0,
                o.merged.peak_power_w / 1e3,
                o.merged.mean_power_w / 1e3,
                o.total_energy_j / 1e6,
                o.tco_usd,
                o.slowdown.p50,
                o.slowdown.p90,
                o.backfilled
            )?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "slowdown violins (min [q1 < median < q3] max; {}-point KDE outline, modes):",
            CONTENTION_VIOLIN_POINTS
        )?;
        for r in &self.rows {
            let v = &r.violin;
            writeln!(
                f,
                "{:<12} {:>5.3} [{:.3} < {:.3} < {:.3}] {:>5.3}  |{}|  {}",
                r.policy,
                v.min,
                v.q1,
                v.median,
                v.q3,
                v.max,
                render_outline(&v.outline),
                v.outline_mode_count()
            )?;
        }
        Ok(())
    }
}

impl ContentionReport {
    /// Machine-readable form: one row per policy.
    #[must_use]
    pub fn csv(&self) -> String {
        let mut out = String::from(
            "policy,jobs_per_hour,makespan_s,peak_kw,mean_kw,energy_mj,tco_usd,\
             slow_min,slow_q1,slow_p50,slow_q3,slow_p90,slow_max,backfilled,violin_modes\n",
        );
        for r in &self.rows {
            let o = &r.outcome;
            out.push_str(&format!(
                "{},{:.3},{:.1},{:.3},{:.3},{:.3},{:.2},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{},{}\n",
                r.policy,
                o.throughput_per_hour(),
                o.merged.makespan_s,
                o.merged.peak_power_w / 1e3,
                o.merged.mean_power_w / 1e3,
                o.total_energy_j / 1e6,
                o.tco_usd,
                r.violin.min,
                r.violin.q1,
                o.slowdown.p50,
                r.violin.q3,
                o.slowdown.p90,
                r.violin.max,
                o.backfilled,
                r.violin.outline_mode_count()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seed_deterministic_and_heterogeneous() {
        let spec = CampaignSpec::new(200, 11);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        let classes: std::collections::HashSet<_> = a.iter().map(|j| j.class).collect();
        assert!(classes.len() >= 3, "job mix too uniform: {classes:?}");
        let nodes: std::collections::HashSet<_> = a.iter().map(|j| j.nodes).collect();
        assert!(nodes.len() >= 3, "sizes too uniform: {nodes:?}");
        assert!(a.iter().all(|j| j.nodes <= spec.nodes_per_partition));
        assert!(a.iter().any(|j| j.arrival_s == 0.0), "some backlog at t=0");
        // A different seed moves the mix.
        assert_ne!(CampaignSpec::new(200, 12).generate(), a);
    }

    #[test]
    fn campaign_runs_every_job_exactly_once() {
        let spec = CampaignSpec {
            partitions: 3,
            ..CampaignSpec::new(120, 5)
        };
        let out = run(&spec, &ClassAware, 2);
        assert_eq!(out.merged.job_spans.len(), 120);
        let mut ids: Vec<u64> = out.merged.job_spans.iter().map(|s| s.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..120).collect::<Vec<u64>>());
        // Merge order: (start, id) ascending.
        for w in out.merged.job_spans.windows(2) {
            assert!((w[0].1, w[0].0) <= (w[1].1, w[1].0));
        }
        assert!(out.merged.makespan_s > 0.0);
        assert!(out.total_energy_j > 0.0);
        assert!(out.energy_j.min > 0.0 && out.energy_j.min <= out.energy_j.max);
        assert_eq!(out.backfilled, 0, "no site budget, no backfill");
    }

    #[test]
    fn peak_respects_the_summed_partition_budgets() {
        let spec = CampaignSpec {
            partitions: 4,
            ..CampaignSpec::new(300, 7)
        };
        let out = run(&spec, &Uncapped, 4);
        assert!(out.merged.peak_power_w <= spec.summed_budget_w() + 1e-6);
        // The campaign peak can exceed any single partition's budget.
        assert!(out.merged.peak_power_w > 0.0);
    }

    #[test]
    fn site_budget_bounds_the_peak_and_backfills() {
        let spec = CampaignSpec {
            site_budget_w: Some(0.6 * 4.0 * 40_000.0),
            partitions: 4,
            ..CampaignSpec::new(300, 7)
        };
        let out = run(&spec, &Uncapped, spec.partitions);
        assert!(
            out.merged.peak_power_w <= spec.site_budget_w.unwrap() + 1e-6,
            "peak {} exceeds the site budget",
            out.merged.peak_power_w
        );
        assert_eq!(out.merged.job_spans.len(), 300, "every job still finishes");
        assert!(out.backfilled > 0, "a contended site must backfill some jobs");
        // Tighter envelope than the uncoupled machine: the same workload
        // cannot finish faster.
        let free = run(&reference_free_spec(), &Uncapped, spec.partitions);
        assert!(out.merged.makespan_s >= free.merged.makespan_s - 1e-9);
    }

    fn reference_free_spec() -> CampaignSpec {
        CampaignSpec {
            partitions: 4,
            ..CampaignSpec::new(300, 7)
        }
    }

    #[test]
    fn tco_aware_beats_uncapped_on_the_tco_objective() {
        let spec = contention_spec();
        let tco = run(&spec, &TcoAware::DEFAULT, spec.partitions);
        let base = run(&spec, &Uncapped, spec.partitions);
        assert!(
            tco.tco_usd < base.tco_usd,
            "TcoAware ${} !< Uncapped ${}",
            tco.tco_usd,
            base.tco_usd
        );
    }

    #[test]
    fn sweet_spot_cuts_campaign_energy_but_not_for_free() {
        let spec = baseline_spec();
        let base = run(&spec, &Uncapped, spec.partitions);
        let sweet = run(&spec, &SweetSpot, spec.partitions);
        assert!(sweet.total_energy_j < base.total_energy_j);
        assert!(sweet.slowdown.p50 >= base.slowdown.p50);
        assert!((base.slowdown.p50 - 1.0).abs() < 1e-9, "uncapped has no slowdown");
    }

    #[test]
    fn distribution_summary_matches_hand_computation() {
        let d = Distribution::summarise(vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 4.0);
        assert!((d.p50 - 2.5).abs() < 1e-12);
        assert!((d.mean - 2.5).abs() < 1e-12);
        assert!(!d.is_empty());
        // Quantiles delegate to the shared vpp_stats implementation.
        assert_eq!(d.p10, vpp_stats::describe::quantile(&[1.0, 2.0, 3.0, 4.0], 0.10));
    }

    #[test]
    fn empty_distributions_are_nan_not_zero() {
        let empty = Distribution::summarise(Vec::new());
        assert!(empty.is_empty());
        for x in [empty.min, empty.p10, empty.p50, empty.p90, empty.max, empty.mean] {
            assert!(x.is_nan(), "empty stats must be unrepresentable as data");
        }
        // ...and the JSON form is nulls, never a fake zero.
        let doc = empty.to_json();
        assert_eq!(doc.get("p50"), Some(&Value::Null));
        assert_eq!(doc.get("mean"), Some(&Value::Null));
        let real = Distribution::summarise(vec![0.0, 0.0]).to_json();
        assert_eq!(real.get("p50"), Some(&Value::Num(0.0)), "true zeros stay numeric");
        // The screened-out case is exactly vpp_stats::describe::quantile's panic
        // contract — the two layers agree that empty has no quantiles.
        let panics = std::panic::catch_unwind(|| vpp_stats::describe::quantile(&[], 0.5));
        assert!(panics.is_err(), "quantile must reject empty slices");
    }

    #[test]
    fn baseline_capture_yields_one_sample_per_repeat() {
        let base = capture_baseline(1 << 22);
        assert_eq!(base.samples.len(), BASELINE_REPEATS);
        let runs = base.aggregate.span(SAMPLE_SPAN).expect("campaign.run aggregated");
        assert_eq!(runs.count, BASELINE_REPEATS as u64);
        for s in &base.samples {
            let pol = s.span("campaign.policy").expect("policy spans nested");
            assert_eq!(pol.count, baseline_policies().len() as u64);
            assert!(pol.sim_s > 0.0, "policy spans carry sim time");
            assert!(pol.energy_j > 0.0, "policy spans carry energy");
        }
        assert!(
            base.aggregate.counters.contains_key("des.scheduled"),
            "DES hot-path counters guard the new engine: {:?}",
            base.aggregate.counters.keys().collect::<Vec<_>>()
        );
    }
}
