//! Site-level scheduling: one event loop over every partition, coupled
//! through a shared watts ledger.
//!
//! Without a site budget the campaign's partitions are independent DES
//! runs ([`crate::scheduler::Scheduler::run_with`]) — that is what makes
//! shard-parallel simulation trivially deterministic. `--site-budget`
//! breaks the independence on purpose: the whole machine shares one
//! power envelope, so admitting a job on partition 3 can starve a job on
//! partition 5. This module supplies the coupled engine:
//!
//! * [`SiteBudget`] — the ledger of committed watts across all
//!   partitions. The DES commits at every job start and releases at every
//!   finish; policies observe it through [`SiteView`] snapshots.
//! * [`run_site`] — a single event-driven loop over all partitions with
//!   *global backfill*: pending jobs are scanned in submission order, and
//!   a job whose round-robin home partition is full may start on any
//!   partition with free nodes, free partition watts and free *site*
//!   watts (home first, then increasing partition index, wrapping).
//!
//! Because partitions are coupled, the engine is one serial event loop —
//! the shard count cannot split it, and [`crate::campaign::run`] keeps
//! the N-shard == 1-shard guarantee by construction: the outcome is a
//! pure function of `(spec, policy)`. Within the loop every tie falls to
//! the same `(start, id)` order the per-partition engine uses: finishes
//! retire in time-then-id order before any admission, pending jobs are
//! offered admission in id order, and spans finalise sorted by
//! `(start, id)`.

use crate::campaign::CampaignSpec;
use crate::policy::{CapPolicy, SiteView};
use crate::scheduler::{finalise, BatchJob, ScheduleOutcome};
use vpp_substrate::trace;

/// The shared ledger of watts committed to running jobs site-wide.
///
/// Maintained by [`run_site`] at job start (commit) and finish (release)
/// events; the high-water mark is the exact campaign peak, and the
/// commit-side assertion is what makes "peak never exceeds the site
/// budget" a structural guarantee rather than a measured one.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteBudget {
    budget_w: f64,
    committed_w: f64,
    peak_w: f64,
}

impl SiteBudget {
    /// A ledger capped at `budget_w` watts.
    ///
    /// # Panics
    /// If `budget_w` is NaN or not positive (`f64::INFINITY` is a valid
    /// budget: the unbounded ledger).
    #[must_use]
    pub fn new(budget_w: f64) -> Self {
        assert!(budget_w > 0.0 && !budget_w.is_nan(), "bad site budget {budget_w}");
        Self {
            budget_w,
            committed_w: 0.0,
            peak_w: 0.0,
        }
    }

    /// A ledger with no site cap — what slack-budget campaigns run under.
    #[must_use]
    pub fn unbounded() -> Self {
        Self::new(f64::INFINITY)
    }

    /// Would committing `w` more watts stay within the budget?
    #[must_use]
    pub fn fits(&self, w: f64) -> bool {
        self.committed_w + w <= self.budget_w + 1e-9
    }

    /// Commit `w` watts to a starting job.
    ///
    /// # Panics
    /// If the commitment would exceed the budget — callers must check
    /// [`SiteBudget::fits`] first; the ledger never overdrafts silently.
    pub fn commit(&mut self, w: f64) {
        assert!(self.fits(w), "site ledger overdraft: {} + {w} > {}", self.committed_w, self.budget_w);
        self.committed_w += w;
        self.peak_w = self.peak_w.max(self.committed_w);
    }

    /// Release `w` watts from a finishing job.
    pub fn release(&mut self, w: f64) {
        self.committed_w = (self.committed_w - w).max(0.0);
    }

    /// Watts currently committed.
    #[must_use]
    pub fn committed_w(&self) -> f64 {
        self.committed_w
    }

    /// High-water mark of committed watts — the exact site peak.
    #[must_use]
    pub fn peak_w(&self) -> f64 {
        self.peak_w
    }

    /// The read-only snapshot policies observe.
    #[must_use]
    pub fn view(&self) -> SiteView {
        SiteView {
            budget_w: self.budget_w,
            committed_w: self.committed_w,
        }
    }
}

/// What the coupled engine hands back to the campaign layer.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteRun {
    /// Spans, peak and power-time integral over the whole site,
    /// finalised exactly like a per-partition outcome.
    pub outcome: ScheduleOutcome,
    /// Per-job `(runtime_s, power_w)` as decided at admission time
    /// (indexed by job id; ids are dense `0..jobs`).
    pub demand: Vec<(f64, f64)>,
    /// Partition each job ran on (indexed by job id).
    pub placement: Vec<usize>,
    /// Jobs that started away from their round-robin home partition.
    pub backfilled: usize,
}

struct SiteRunning {
    id: u64,
    start: f64,
    finish: f64,
    nodes: usize,
    power_w: f64,
    partition: usize,
}

/// Simulate `jobs` over every partition of `spec` under one site ledger.
///
/// Jobs keep their round-robin home (`id % partitions`) as the preferred
/// host but may backfill onto any partition with free nodes, free
/// partition watts and free site watts. Admission stays quantised to the
/// scheduler's cycle and the engine wakes exactly like the per-partition
/// DES: at cycle boundaries where a finish is due or an arrival has
/// passed. Policies are re-consulted at every admission attempt with the
/// live [`SiteView`].
///
/// # Panics
/// If a job could never start (needs more nodes than a partition has,
/// or more watts than the partition/site budget allows) — the engine
/// detects the stall rather than spinning.
#[must_use]
pub fn run_site(spec: &CampaignSpec, jobs: &[BatchJob], policy: &dyn CapPolicy) -> SiteRun {
    let parts = spec.partitions;
    assert!(parts > 0, "need at least one partition");
    let sched = spec.scheduler();
    let mut site = match spec.site_budget_w {
        Some(b) => SiteBudget::new(b),
        None => SiteBudget::unbounded(),
    };

    let mut free_nodes = vec![spec.nodes_per_partition; parts];
    let mut part_power = vec![0.0f64; parts];
    let mut demand = vec![(f64::NAN, f64::NAN); jobs.len()];
    let mut placement = vec![usize::MAX; jobs.len()];
    let mut backfilled = 0usize;

    // Arrival order: indices by (arrival, submission order), walked by a
    // cursor as in the per-partition engine.
    let mut arrival_order: Vec<usize> = (0..jobs.len()).collect();
    arrival_order.sort_by(|&a, &b| jobs[a].arrival_s.total_cmp(&jobs[b].arrival_s));
    let mut cursor = 0usize;

    let mut pending: Vec<usize> = (0..jobs.len()).collect();
    let mut running: Vec<SiteRunning> = Vec::new();
    let mut finishes: vpp_sim::EventQueue<u64> = vpp_sim::EventQueue::new();
    let mut spans: Vec<(u64, f64, f64)> = Vec::new();
    let mut t = 0.0;
    let mut power_time_integral = 0.0;
    let mut last_t = 0.0;
    let mut admit = true; // t = 0 is always an admission wake

    loop {
        if admit {
            // Retire due finishes first — watts released here are
            // available to every admission below, matching the
            // retire-then-admit order of the per-partition wake.
            while finishes.next_before(t + 1e-9).is_some() {}
            running.retain(|r| {
                if r.finish <= t + 1e-9 {
                    spans.push((r.id, r.start, r.finish));
                    free_nodes[r.partition] += r.nodes;
                    part_power[r.partition] -= r.power_w;
                    site.release(r.power_w);
                    false
                } else {
                    true
                }
            });

            // Global backfill in submission (id) order: each arrived job
            // is offered its home partition first, then the others in
            // increasing index, wrapping — the only deterministic order
            // consistent with `(start, id)` tie-breaking.
            pending.retain(|&qi| {
                let job = &jobs[qi];
                if job.arrival_s > t + 1e-9 {
                    return true;
                }
                let (runtime, power) = sched.job_demand_with(job, policy, &site.view());
                if !site.fits(power) {
                    return true;
                }
                let home = (job.id % parts as u64) as usize;
                for k in 0..parts {
                    let p = (home + k) % parts;
                    if free_nodes[p] >= job.nodes
                        && part_power[p] + power <= spec.partition_budget_w + 1e-9
                    {
                        free_nodes[p] -= job.nodes;
                        part_power[p] += power;
                        site.commit(power);
                        demand[qi] = (runtime, power);
                        placement[qi] = p;
                        if p != home {
                            backfilled += 1;
                        }
                        finishes.schedule(t + runtime, job.id);
                        running.push(SiteRunning {
                            id: job.id,
                            start: t,
                            finish: t + runtime,
                            nodes: job.nodes,
                            power_w: power,
                            partition: p,
                        });
                        return false;
                    }
                }
                true
            });

            while cursor < arrival_order.len()
                && jobs[arrival_order[cursor]].arrival_s <= t + 1e-9
            {
                cursor += 1;
            }
        }

        power_time_integral += site.committed_w() * (t - last_t).max(0.0);
        last_t = t;

        if pending.is_empty() && running.is_empty() {
            break;
        }

        let next_finish = finishes.earliest_time().unwrap_or(f64::INFINITY);
        let next_arrival = if cursor < arrival_order.len() {
            jobs[arrival_order[cursor]].arrival_s
        } else {
            f64::INFINITY
        };
        assert!(
            !(running.is_empty() && next_arrival.is_infinite() && !pending.is_empty()),
            "site scheduler stalled: {} job(s) can never start under the \
             partition/site budgets",
            pending.len()
        );
        let mut next = t + sched.cycle_s;
        if next_finish < next {
            next = next_finish;
        }
        if running.is_empty() && next_arrival > next {
            next = next_arrival;
        }
        t = next;
        assert!(t.is_finite(), "site scheduler stalled: no running jobs advance");
        admit = next_finish <= t + 1e-9 || next_arrival <= t + 1e-9;
    }

    trace::counter("site.backfilled", backfilled as u64);
    SiteRun {
        outcome: finalise(spans, site.peak_w(), power_time_integral),
        demand,
        placement,
        backfilled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ClassAware, Uncapped};
    use crate::scheduler::{CapResponse, WorkloadClass};

    fn ledger_job(id: u64, nodes: usize, rt: f64, arrival: f64) -> BatchJob {
        BatchJob {
            id,
            name: format!("j{id}"),
            class: WorkloadClass::PowerHungry,
            nodes,
            base_runtime_s: rt,
            response: CapResponse::new(vec![
                (100.0, 0.40, 900.0),
                (200.0, 0.91, 1300.0),
                (300.0, 1.00, 1750.0),
                (400.0, 1.00, 1810.0),
            ]),
            arrival_s: arrival,
        }
    }

    fn two_partition_spec(site_budget_w: Option<f64>) -> CampaignSpec {
        CampaignSpec {
            partitions: 2,
            nodes_per_partition: 4,
            partition_budget_w: 20_000.0,
            site_budget_w,
            ..CampaignSpec::new(0, 1)
        }
    }

    #[test]
    fn ledger_tracks_commit_release_and_peak() {
        let mut b = SiteBudget::new(5000.0);
        assert!(b.fits(5000.0));
        b.commit(3000.0);
        b.commit(1500.0);
        assert!(!b.fits(1000.0));
        assert!((b.committed_w() - 4500.0).abs() < 1e-9);
        b.release(3000.0);
        b.commit(2000.0);
        assert!((b.peak_w() - 4500.0).abs() < 1e-9, "peak is the high-water mark");
        assert!((b.view().free_w() - 1500.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "overdraft")]
    fn ledger_refuses_overdraft() {
        let mut b = SiteBudget::new(1000.0);
        b.commit(1500.0);
    }

    #[test]
    fn backfill_moves_a_blocked_job_across_partitions() {
        // Home routing sends both jobs to partition 1 (odd ids); its 4
        // nodes only hold one of them, so the second must backfill onto
        // the empty partition 0 instead of queueing.
        let spec = two_partition_spec(None);
        let jobs = vec![ledger_job(1, 3, 600.0, 0.0), ledger_job(3, 3, 600.0, 0.0)];
        let run = run_site(&spec, &jobs, &Uncapped);
        assert_eq!(run.backfilled, 1);
        assert_eq!(run.placement, vec![1, 0]);
        // Both start at t = 0: backfill admits what round-robin could not.
        assert!(run.outcome.job_spans.iter().all(|s| s.1 == 0.0));
    }

    #[test]
    fn site_budget_serialises_what_nodes_would_admit() {
        // Two 1810 W/node jobs fit the nodes and partition budgets
        // simultaneously, but a 6 kW site budget holds only one at a
        // time: the second waits for the first's release.
        let spec = two_partition_spec(Some(6000.0));
        let jobs = vec![ledger_job(0, 3, 600.0, 0.0), ledger_job(1, 3, 600.0, 0.0)];
        let run = run_site(&spec, &jobs, &Uncapped);
        assert!(run.outcome.peak_power_w <= 6000.0 + 1e-6);
        let spans = &run.outcome.job_spans;
        assert_eq!(spans.len(), 2);
        assert!(spans[1].1 >= spans[0].2 - 1e-9, "second starts after first finishes");
    }

    #[test]
    fn capping_relieves_site_pressure() {
        // Same tight site budget: ClassAware's 200 W caps (1300 W/node)
        // let both jobs run at once where Uncapped serialised.
        let spec = two_partition_spec(Some(8000.0));
        let jobs = vec![ledger_job(0, 3, 600.0, 0.0), ledger_job(1, 3, 600.0, 0.0)];
        let capped = run_site(&spec, &jobs, &ClassAware);
        let base = run_site(&spec, &jobs, &Uncapped);
        assert!(capped.outcome.makespan_s < base.outcome.makespan_s);
        assert!(capped.outcome.peak_power_w <= 8000.0 + 1e-6);
    }

    #[test]
    #[should_panic(expected = "stalled")]
    fn impossible_site_budget_panics_instead_of_spinning() {
        let spec = two_partition_spec(Some(2000.0));
        let jobs = vec![ledger_job(0, 3, 600.0, 0.0)];
        let _ = run_site(&spec, &jobs, &Uncapped);
    }
}
