//! The open policy surface of the campaign scheduler.
//!
//! PR 6's [`crate::scheduler::Policy`] enum was closed: adding a policy
//! meant editing the scheduler itself, and no policy could see anything
//! beyond the one job it was capping. This module redesigns that surface
//! as the [`CapPolicy`] trait: a policy is any object that, given a job,
//! the scheduler's loss budget and a [`SiteView`] of the shared site
//! ledger (committed watts across every partition, maintained by the DES
//! at job start/finish events), decides the GPU cap the job runs under.
//!
//! The enum's trio — [`Uncapped`], [`ClassAware`], [`SweetSpot`] — is
//! reimplemented here with the *identical* arithmetic, and the
//! `policy_equivalence` differential suite pins the trait-based campaign
//! byte-identical to the enum-based reference whenever the site budget is
//! slack. [`TcoAware`] is the first policy only the trait can express
//! cleanly: it prices each candidate cap in dollars (energy at a $/kWh
//! tariff plus node occupancy at a $/node-hour rate, the Wattlytics
//! objective) and picks the cheapest.

use crate::scheduler::BatchJob;

/// A policy's read-only view of the shared site ledger at decision time.
///
/// The DES updates the backing [`crate::site::SiteBudget`] at every job
/// start (commit) and finish (release); policies see the committed load
/// and the site cap, never the mutable ledger itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteView {
    /// Site-wide power cap, watts (`f64::INFINITY` = unbounded).
    pub budget_w: f64,
    /// Watts currently committed to running jobs across all partitions.
    pub committed_w: f64,
}

impl SiteView {
    /// The slack view: no site cap, nothing committed. This is what
    /// per-partition scheduling (no `--site-budget`) presents, and the
    /// view under which the trio must reproduce the enum bit-for-bit.
    #[must_use]
    pub fn slack() -> Self {
        Self {
            budget_w: f64::INFINITY,
            committed_w: 0.0,
        }
    }

    /// Watts still free under the site cap (infinite when unbounded).
    #[must_use]
    pub fn free_w(&self) -> f64 {
        (self.budget_w - self.committed_w).max(0.0)
    }

    /// Fraction of the site budget already committed (0 when unbounded).
    #[must_use]
    pub fn pressure(&self) -> f64 {
        if self.budget_w.is_finite() && self.budget_w > 0.0 {
            (self.committed_w / self.budget_w).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }
}

/// Everything a policy may consult besides the job itself: the
/// scheduler's tunables, without handing over the scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyCtx {
    /// Acceptable slowdown for loss-bounded capping (scheduler default
    /// 0.10, the paper's <10 % rule).
    pub max_loss: f64,
}

/// A capping policy: decides, per job, the GPU power cap it runs under.
///
/// ## Contract
///
/// * `cap_for` returns `Some(cap_w)` to run the job capped, `None` to run
///   it at the top of its own measured support
///   ([`crate::scheduler::CapResponse::uncapped`]).
/// * The DES calls `cap_for` at *admission attempts*, with the live
///   [`SiteView`]; a job skipped this wake is re-asked later, so a
///   site-observing policy may answer differently as load moves. Given
///   equal inputs the answer must be equal — policies are pure functions
///   of `(job, ctx, site)`, which is what keeps campaigns byte-
///   deterministic across shard counts and repeated runs.
/// * Implementations must be `Sync`: partitions fan out over the
///   substrate pool and share one policy object.
pub trait CapPolicy: Sync {
    /// Stable policy name (table rows, trace fields).
    fn name(&self) -> &str;

    /// The cap for `job`, or `None` for the job's own default limit.
    fn cap_for(&self, job: &BatchJob, ctx: &PolicyCtx, site: &SiteView) -> Option<f64>;
}

/// Default limits everywhere — the baseline the paper measures against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Uncapped;

impl CapPolicy for Uncapped {
    fn name(&self) -> &str {
        "uncapped"
    }

    fn cap_for(&self, _job: &BatchJob, _ctx: &PolicyCtx, _site: &SiteView) -> Option<f64> {
        None
    }
}

/// One fixed GPU cap for every job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedCap(pub f64);

impl CapPolicy for FixedCap {
    fn name(&self) -> &str {
        "fixed_cap"
    }

    fn cap_for(&self, _job: &BatchJob, _ctx: &PolicyCtx, _site: &SiteView) -> Option<f64> {
        Some(self.0)
    }
}

/// The paper's §VI proposal: per-class caps chosen so the loss stays
/// within `ctx.max_loss`; unclassifiable jobs stay uncapped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassAware;

impl CapPolicy for ClassAware {
    fn name(&self) -> &str {
        "class_aware"
    }

    fn cap_for(&self, job: &BatchJob, ctx: &PolicyCtx, _site: &SiteView) -> Option<f64> {
        match job.class {
            crate::scheduler::WorkloadClass::Unknown => None,
            _ => Some(job.response.recommended_cap(ctx.max_loss)),
        }
    }
}

/// Energy-chasing: every job runs at its measured energy-per-work minimum
/// ([`crate::scheduler::CapResponse::sweet_spot_cap`]), whatever the
/// slowdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweetSpot;

impl CapPolicy for SweetSpot {
    fn name(&self) -> &str {
        "sweet_spot"
    }

    fn cap_for(&self, job: &BatchJob, _ctx: &PolicyCtx, _site: &SiteView) -> Option<f64> {
        Some(job.response.sweet_spot_cap())
    }
}

/// The site tariff the TCO objective prices jobs against: energy at a
/// $/kWh rate plus node occupancy at a $/node-hour rate (Wattlytics'
/// performance/energy/TCO co-optimisation, reduced to two knobs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcoPrices {
    /// Electricity tariff, dollars per kilowatt-hour.
    pub energy_usd_per_kwh: f64,
    /// Amortised machine cost, dollars per node-hour of occupancy.
    pub node_hour_usd: f64,
}

impl Default for TcoPrices {
    fn default() -> Self {
        Self::DEFAULT
    }
}

impl TcoPrices {
    /// Representative HPC-site numbers: industrial power at 12 ¢/kWh and
    /// a $2/node-hour amortisation. At these rates a deep cap's energy
    /// saving competes with — rather than dominates — the node-hours the
    /// slowdown costs, so the optimum genuinely moves per workload class.
    pub const DEFAULT: TcoPrices = TcoPrices {
        energy_usd_per_kwh: 0.12,
        node_hour_usd: 2.0,
    };

    /// Dollar cost of one job: `nodes` occupied for `runtime_s` seconds
    /// while drawing `energy_j` joules in total.
    #[must_use]
    pub fn job_cost_usd(&self, nodes: usize, runtime_s: f64, energy_j: f64) -> f64 {
        energy_j / 3.6e6 * self.energy_usd_per_kwh
            + nodes as f64 * runtime_s / 3600.0 * self.node_hour_usd
    }
}

/// TCO-aware capping: for each job, evaluate the dollar cost of running
/// at every measured cap point and pick the cheapest (ties towards the
/// higher cap, like the sweet-spot rule). Since the job's own default
/// limit is one of the candidates, `TcoAware` can never cost more than
/// [`Uncapped`] on the objective it minimises.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcoAware {
    pub prices: TcoPrices,
}

impl TcoAware {
    /// The default-tariff instance — usable as a `&'static dyn CapPolicy`
    /// in policy tables.
    pub const DEFAULT: TcoAware = TcoAware {
        prices: TcoPrices::DEFAULT,
    };
}

impl Default for TcoAware {
    fn default() -> Self {
        Self::DEFAULT
    }
}

impl CapPolicy for TcoAware {
    fn name(&self) -> &str {
        "tco_aware"
    }

    fn cap_for(&self, job: &BatchJob, _ctx: &PolicyCtx, _site: &SiteView) -> Option<f64> {
        let mut best = (f64::INFINITY, job.response.max_cap());
        for &(cap, perf, node_w) in job.response.points() {
            let runtime = job.base_runtime_s / perf;
            let energy = runtime * node_w * job.nodes as f64;
            let cost = self.prices.job_cost_usd(job.nodes, runtime, energy);
            if cost <= best.0 {
                best = (cost, cap);
            }
        }
        Some(best.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{BatchJob, CapResponse, WorkloadClass};

    fn hungry_job(nodes: usize) -> BatchJob {
        BatchJob {
            id: 1,
            name: "hse-test".into(),
            class: WorkloadClass::PowerHungry,
            nodes,
            base_runtime_s: 3600.0,
            response: CapResponse::new(vec![
                (100.0, 0.40, 900.0),
                (200.0, 0.91, 1300.0),
                (300.0, 1.00, 1750.0),
                (400.0, 1.00, 1810.0),
            ]),
            arrival_s: 0.0,
        }
    }

    fn ctx() -> PolicyCtx {
        PolicyCtx { max_loss: 0.10 }
    }

    #[test]
    fn trio_matches_the_enum_arithmetic() {
        let job = hungry_job(2);
        let site = SiteView::slack();
        assert_eq!(Uncapped.cap_for(&job, &ctx(), &site), None);
        assert_eq!(FixedCap(250.0).cap_for(&job, &ctx(), &site), Some(250.0));
        assert_eq!(
            ClassAware.cap_for(&job, &ctx(), &site),
            Some(job.response.recommended_cap(0.10))
        );
        assert_eq!(
            SweetSpot.cap_for(&job, &ctx(), &site),
            Some(job.response.sweet_spot_cap())
        );
        let mut unknown = job;
        unknown.class = WorkloadClass::Unknown;
        assert_eq!(ClassAware.cap_for(&unknown, &ctx(), &site), None, "unknown stays uncapped");
    }

    #[test]
    fn tco_aware_never_beats_itself_with_uncapped() {
        let job = hungry_job(2);
        let tco = TcoAware::default();
        let cap = tco.cap_for(&job, &ctx(), &SiteView::slack()).unwrap();
        let cost_at = |cap: f64| {
            let (perf, node_w) = (job.response.perf_at(cap), job.response.power_at(cap));
            let rt = job.base_runtime_s / perf;
            tco.prices.job_cost_usd(job.nodes, rt, rt * node_w * job.nodes as f64)
        };
        // The chosen cap is at least as cheap as the default limit, and
        // for this curve strictly cheaper: 300 W matches 400 W perf at
        // 60 W/node less.
        assert!(cost_at(cap) < cost_at(job.response.max_cap()));
        assert_eq!(cap, 300.0);
    }

    #[test]
    fn tco_extremes_recover_the_named_policies() {
        let job = hungry_job(1);
        // Free electricity: only node-hours matter, so the cheapest cap
        // maximises performance — the uncapped choice.
        let hours_only = TcoAware {
            prices: TcoPrices {
                energy_usd_per_kwh: 0.0,
                node_hour_usd: 2.0,
            },
        };
        let cap = hours_only.cap_for(&job, &ctx(), &SiteView::slack()).unwrap();
        assert_eq!(job.response.perf_at(cap), 1.0);
        // Free machines: only energy matters — the sweet spot.
        let energy_only = TcoAware {
            prices: TcoPrices {
                energy_usd_per_kwh: 0.12,
                node_hour_usd: 0.0,
            },
        };
        assert_eq!(
            energy_only.cap_for(&job, &ctx(), &SiteView::slack()),
            Some(job.response.sweet_spot_cap())
        );
    }

    #[test]
    fn site_view_accounting() {
        let slack = SiteView::slack();
        assert!(slack.free_w().is_infinite());
        assert_eq!(slack.pressure(), 0.0);
        let tight = SiteView {
            budget_w: 100_000.0,
            committed_w: 75_000.0,
        };
        assert!((tight.free_w() - 25_000.0).abs() < 1e-9);
        assert!((tight.pressure() - 0.75).abs() < 1e-12);
    }
}
