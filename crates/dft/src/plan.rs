//! The lowered execution plan the cluster executor consumes.
//!
//! A plan is a per-rank program. The paper's benchmarks are deliberately
//! load-balanced across MPI ranks (§III-A), so one op stream describes every
//! rank; the executor replays it on each GPU (whose variability and power
//! limits then differentiate the actual timings) and synchronises ranks at
//! collectives.

use vpp_gpu::Kernel;

/// MPI/NCCL collective flavours with distinct time models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Ring all-reduce (subspace matrices, density mixing).
    AllReduce,
    /// One-to-all broadcast (rotation matrices after a root eigensolve).
    Broadcast,
    /// All-to-all (plane-wave redistribution).
    AllToAll,
}

/// One step of the per-rank program.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// A GPU kernel block, identical on every rank.
    Gpu(Kernel),
    /// A collective across all ranks of the job; `bytes` is the per-rank
    /// payload. Ranks synchronise here.
    Collective { bytes: f64, kind: CollectiveKind },
    /// Host-only stage: GPUs idle, CPU at `cpu_active`, DDR at
    /// `mem_active` (both fractions of their dynamic range).
    Host {
        duration_s: f64,
        cpu_active: f64,
        mem_active: f64,
    },
}

/// A complete lowered run: the op stream plus bookkeeping for tests and
/// reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ScfPlan {
    /// Workload name (benchmark row).
    pub name: String,
    /// The per-rank program.
    pub ops: Vec<Op>,
    /// SCF iterations represented.
    pub iterations: usize,
}

impl ScfPlan {
    /// Sum of GPU kernel durations (unthrottled, nominal clock), seconds.
    #[must_use]
    pub fn gpu_time_s(&self) -> f64 {
        self.ops
            .iter()
            .filter_map(|op| match op {
                Op::Gpu(k) => Some(k.duration_s),
                _ => None,
            })
            .sum()
    }

    /// Sum of host-stage durations, seconds.
    #[must_use]
    pub fn host_time_s(&self) -> f64 {
        self.ops
            .iter()
            .filter_map(|op| match op {
                Op::Host { duration_s, .. } => Some(*duration_s),
                _ => None,
            })
            .sum()
    }

    /// Total bytes moved through collectives per rank.
    #[must_use]
    pub fn collective_bytes(&self) -> f64 {
        self.ops
            .iter()
            .filter_map(|op| match op {
                Op::Collective { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum()
    }

    /// Number of collectives (each pays at least the network latency).
    #[must_use]
    pub fn collective_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, Op::Collective { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpp_gpu::KernelKind;

    fn sample_plan() -> ScfPlan {
        ScfPlan {
            name: "test".into(),
            ops: vec![
                Op::Gpu(Kernel::new(KernelKind::Fft3d, 1e5, 2.0)),
                Op::Collective {
                    bytes: 1e6,
                    kind: CollectiveKind::AllReduce,
                },
                Op::Host {
                    duration_s: 0.5,
                    cpu_active: 0.2,
                    mem_active: 0.3,
                },
                Op::Gpu(Kernel::new(KernelKind::TensorGemm, 1e6, 1.0)),
                Op::Collective {
                    bytes: 2e6,
                    kind: CollectiveKind::Broadcast,
                },
            ],
            iterations: 1,
        }
    }

    #[test]
    fn aggregates() {
        let p = sample_plan();
        assert!((p.gpu_time_s() - 3.0).abs() < 1e-12);
        assert!((p.host_time_s() - 0.5).abs() < 1e-12);
        assert!((p.collective_bytes() - 3e6).abs() < 1e-6);
        assert_eq!(p.collective_count(), 2);
    }

    #[test]
    fn empty_plan_is_zero() {
        let p = ScfPlan {
            name: "empty".into(),
            ops: vec![],
            iterations: 0,
        };
        assert_eq!(p.gpu_time_s(), 0.0);
        assert_eq!(p.host_time_s(), 0.0);
        assert_eq!(p.collective_count(), 0);
    }
}
