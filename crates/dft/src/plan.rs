//! The lowered execution plan the cluster executor consumes.
//!
//! A plan is a per-rank program. The paper's benchmarks are deliberately
//! load-balanced across MPI ranks (§III-A), so one op stream describes every
//! rank; the executor replays it on each GPU (whose variability and power
//! limits then differentiate the actual timings) and synchronises ranks at
//! collectives.

use vpp_gpu::Kernel;

/// MPI/NCCL collective flavours with distinct time models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Ring all-reduce (subspace matrices, density mixing).
    AllReduce,
    /// One-to-all broadcast (rotation matrices after a root eigensolve).
    Broadcast,
    /// All-to-all (plane-wave redistribution).
    AllToAll,
}

/// One step of the per-rank program.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// A GPU kernel block, identical on every rank.
    Gpu(Kernel),
    /// A collective across all ranks of the job; `bytes` is the per-rank
    /// payload. Ranks synchronise here.
    Collective { bytes: f64, kind: CollectiveKind },
    /// Host-only stage: GPUs idle, CPU at `cpu_active`, DDR at
    /// `mem_active` (both fractions of their dynamic range).
    Host {
        duration_s: f64,
        cpu_active: f64,
        mem_active: f64,
    },
}

/// Algorithmic phase a contiguous slice of the op stream belongs to.
/// Phase names form the span vocabulary the executor emits, so the traced
/// timeline can be compared against changepoints detected on the power
/// signal alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// Job initialisation (the executor's injected host stage).
    Init,
    /// One SCF iteration.
    ScfIter,
    /// ACFDT/RPA CPU-side exact diagonalisation.
    RpaDiag,
    /// ACFDT/RPA χ₀ frequency-quadrature contractions.
    RpaChi0,
}

impl PhaseKind {
    /// Stable span name for this phase.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PhaseKind::Init => "phase.init",
            PhaseKind::ScfIter => "phase.scf_iter",
            PhaseKind::RpaDiag => "phase.rpa_diag",
            PhaseKind::RpaChi0 => "phase.rpa_chi0",
        }
    }

    /// Inverse of [`PhaseKind::name`], also accepting the bare suffix
    /// (`"scf_iter"` as well as `"phase.scf_iter"`) — the form the CLI's
    /// `--perturb` flag takes.
    #[must_use]
    pub fn parse(s: &str) -> Option<PhaseKind> {
        let bare = s.strip_prefix("phase.").unwrap_or(s);
        match bare {
            "init" => Some(PhaseKind::Init),
            "scf_iter" => Some(PhaseKind::ScfIter),
            "rpa_diag" => Some(PhaseKind::RpaDiag),
            "rpa_chi0" => Some(PhaseKind::RpaChi0),
            _ => None,
        }
    }
}

/// A contiguous run of ops `[start, end)` forming one logical phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanPhase {
    /// What the phase is.
    pub kind: PhaseKind,
    /// Ordinal among phases of the same kind (e.g. SCF iteration number).
    pub index: usize,
    /// First op index of the phase.
    pub start: usize,
    /// One past the last op index.
    pub end: usize,
}

/// A complete lowered run: the op stream plus bookkeeping for tests and
/// reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ScfPlan {
    /// Workload name (benchmark row).
    pub name: String,
    /// The per-rank program.
    pub ops: Vec<Op>,
    /// SCF iterations represented.
    pub iterations: usize,
    /// Phase table: non-overlapping, ascending op ranges. May be empty for
    /// synthetic plans; the executor then emits no phase spans.
    pub phases: Vec<PlanPhase>,
}

impl ScfPlan {
    /// Sum of GPU kernel durations (unthrottled, nominal clock), seconds.
    #[must_use]
    pub fn gpu_time_s(&self) -> f64 {
        self.ops
            .iter()
            .filter_map(|op| match op {
                Op::Gpu(k) => Some(k.duration_s),
                _ => None,
            })
            .sum()
    }

    /// Sum of host-stage durations, seconds.
    #[must_use]
    pub fn host_time_s(&self) -> f64 {
        self.ops
            .iter()
            .filter_map(|op| match op {
                Op::Host { duration_s, .. } => Some(*duration_s),
                _ => None,
            })
            .sum()
    }

    /// Total bytes moved through collectives per rank.
    #[must_use]
    pub fn collective_bytes(&self) -> f64 {
        self.ops
            .iter()
            .filter_map(|op| match op {
                Op::Collective { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum()
    }

    /// Number of collectives (each pays at least the network latency).
    #[must_use]
    pub fn collective_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, Op::Collective { .. }))
            .count()
    }

    /// The phase containing op `i`, if the phase table covers it.
    #[must_use]
    pub fn phase_of(&self, i: usize) -> Option<&PlanPhase> {
        self.phases.iter().find(|ph| ph.start <= i && i < ph.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpp_gpu::KernelKind;

    fn sample_plan() -> ScfPlan {
        ScfPlan {
            name: "test".into(),
            ops: vec![
                Op::Gpu(Kernel::new(KernelKind::Fft3d, 1e5, 2.0)),
                Op::Collective {
                    bytes: 1e6,
                    kind: CollectiveKind::AllReduce,
                },
                Op::Host {
                    duration_s: 0.5,
                    cpu_active: 0.2,
                    mem_active: 0.3,
                },
                Op::Gpu(Kernel::new(KernelKind::TensorGemm, 1e6, 1.0)),
                Op::Collective {
                    bytes: 2e6,
                    kind: CollectiveKind::Broadcast,
                },
            ],
            iterations: 1,
            phases: vec![],
        }
    }

    #[test]
    fn aggregates() {
        let p = sample_plan();
        assert!((p.gpu_time_s() - 3.0).abs() < 1e-12);
        assert!((p.host_time_s() - 0.5).abs() < 1e-12);
        assert!((p.collective_bytes() - 3e6).abs() < 1e-6);
        assert_eq!(p.collective_count(), 2);
    }

    #[test]
    fn empty_plan_is_zero() {
        let p = ScfPlan {
            name: "empty".into(),
            ops: vec![],
            iterations: 0,
            phases: vec![],
        };
        assert_eq!(p.gpu_time_s(), 0.0);
        assert_eq!(p.host_time_s(), 0.0);
        assert_eq!(p.collective_count(), 0);
    }
}
