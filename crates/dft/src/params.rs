//! Derived computational parameters — the quantities Table I reports.
//!
//! From a structure and an input deck we derive what VASP derives: electron
//! count, default band count, the FFT grid (whose product is NPLWV), and the
//! plane-wave basis size per band (NPW). The cost model in [`crate::scf`]
//! is driven entirely by these numbers, which is precisely the paper's point
//! (§IV-B): NPLWV controls per-kernel width (power), NBANDS controls the
//! sequential kernel count (runtime/energy).

use crate::cell::Supercell;
use crate::incar::{Algo, Binary, Incar, Xc};

/// Grid-sizing factor: grid points per (Å · √eV), at the `PREC = Accurate`
/// setting the benchmarks use (no wrap-around errors → 2×G_cut support).
/// Calibrated so the Si256 cell (17.24 Å, ENCUT 245 eV) gets the 80³ grid
/// Table I publishes.
pub const GRID_FACTOR: f64 = 0.296_48;

/// `√(2m_e)/ħ` in practical units: `G_cut [1/Å] = 0.5123 · √(ENCUT [eV])`.
pub const GCUT_FACTOR: f64 = 0.5123;

/// Smallest FFT-friendly size ≥ `n`: a product of 2, 3, 5, 7 with at least
/// one factor of 2 (cuFFT/VASP-preferred radices).
#[must_use]
pub fn next_fft_size(n: usize) -> usize {
    assert!(n > 0 && n < 1 << 30, "unreasonable grid request {n}");
    let mut m = n.max(2);
    loop {
        if m.is_multiple_of(2) {
            let mut r = m;
            for p in [2usize, 3, 5, 7] {
                while r.is_multiple_of(p) {
                    r /= p;
                }
            }
            if r == 1 {
                return m;
            }
        }
        m += 1;
    }
}

/// Everything the SCF cost model needs, fully derived.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemParams {
    pub name: String,
    pub n_ions: usize,
    /// Valence electrons (NELECT).
    pub nelect: u32,
    /// Bands (NBANDS) — deck override or the VASP default formula.
    pub nbands: usize,
    /// Occupied bands.
    pub nbands_occ: usize,
    /// Plane-wave cutoff actually used, eV.
    pub encut_ev: f64,
    /// Dense FFT grid dimensions.
    pub fft_grid: [usize; 3],
    /// Grid point count (NPLWV = product of the grid dims).
    pub nplwv: usize,
    /// Plane waves per band (basis size inside the cutoff sphere).
    pub npw: usize,
    /// Total k-points in the mesh.
    pub nk: usize,
    /// k-parallel groups.
    pub kpar: usize,
    /// Band blocking factor.
    pub nsim: usize,
    /// SCF iteration budget.
    pub nelm: usize,
    /// Non-self-consistent startup iterations.
    pub nelmdl: usize,
    pub algo: Algo,
    pub xc: Xc,
    /// Which VASP binary runs the deck.
    pub binary: Binary,
    /// Exactly-treated bands for ACFDT/RPA.
    pub nbandsexact: Option<usize>,
}

impl SystemParams {
    /// Derive parameters for `cell` under `deck`.
    ///
    /// # Panics
    /// If the deck fails validation.
    #[must_use]
    pub fn derive(cell: &Supercell, deck: &Incar) -> Self {
        if let Err(e) = deck.validate() {
            panic!("invalid INCAR for {}: {e}", cell.name);
        }
        let encut = deck.encut_ev.unwrap_or_else(|| cell.default_encut_ev());
        let k = GRID_FACTOR * encut.sqrt();
        let fft_grid = [
            next_fft_size((k * cell.lattice_a[0]).round() as usize),
            next_fft_size((k * cell.lattice_a[1]).round() as usize),
            next_fft_size((k * cell.lattice_a[2]).round() as usize),
        ];
        let nplwv = fft_grid.iter().product();
        let gcut = GCUT_FACTOR * encut.sqrt();
        let npw = (cell.volume_a3() * gcut.powi(3) / (6.0 * std::f64::consts::PI.powi(2)))
            .round()
            .max(1.0) as usize;
        let nelect = cell.n_electrons();
        let n_ions = cell.n_ions();
        let nbands = deck
            .nbands
            .unwrap_or_else(|| default_nbands(nelect, n_ions));
        let nbands_occ = nelect.div_ceil(2) as usize;
        let nbandsexact = match deck.xc {
            Xc::Rpa => Some(deck.nbandsexact.unwrap_or((npw * 16) / 25)),
            _ => deck.nbandsexact,
        };
        Self {
            name: cell.name.clone(),
            n_ions,
            nelect,
            nbands,
            nbands_occ,
            encut_ev: encut,
            fft_grid,
            nplwv,
            npw,
            nk: deck.n_kpoints(),
            kpar: deck.kpar,
            nsim: deck.nsim,
            nelm: deck.nelm,
            nelmdl: deck.nelmdl,
            algo: deck.algo,
            xc: deck.xc,
            binary: deck.binary,
            nbandsexact,
        }
    }
}

/// VASP's default band count: `NELECT/2 + NIONS/2`, rounded up to a
/// multiple of 8 (so any rank count the study uses divides evenly).
#[must_use]
pub fn default_nbands(nelect: u32, n_ions: usize) -> usize {
    let raw = nelect as f64 / 2.0 + n_ions as f64 / 2.0;
    (raw / 8.0).ceil() as usize * 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Element;

    #[test]
    fn next_fft_size_basics() {
        assert_eq!(next_fft_size(1), 2);
        assert_eq!(next_fft_size(2), 2);
        assert_eq!(next_fft_size(48), 48);
        assert_eq!(next_fft_size(79), 80);
        assert_eq!(next_fft_size(80), 80);
        assert_eq!(next_fft_size(81), 84); // 2²·3·7
        assert_eq!(next_fft_size(97), 98); // 2·7²
    }

    #[test]
    fn next_fft_size_is_smooth_and_even() {
        for n in 1..500 {
            let m = next_fft_size(n);
            assert!(m >= n);
            assert!(m.is_multiple_of(2));
            let mut r = m;
            for p in [2, 3, 5, 7] {
                while r.is_multiple_of(p) {
                    r /= p;
                }
            }
            assert_eq!(r, 1, "{m} has a large prime factor");
        }
    }

    #[test]
    fn si256_grid_matches_table1() {
        // Table I: Si256_hse — FFT grid 80×80×80, NPLWV 512000.
        let cell = Supercell::silicon(256);
        let p = SystemParams::derive(&cell, &Incar::default_deck());
        assert_eq!(p.fft_grid, [80, 80, 80]);
        assert_eq!(p.nplwv, 512_000);
    }

    #[test]
    fn si256_npw_is_about_forty_five_thousand() {
        let cell = Supercell::silicon(256);
        let p = SystemParams::derive(&cell, &Incar::default_deck());
        assert!(
            (40_000..50_000).contains(&p.npw),
            "npw = {} (≈ NPLWV/11.5 at PREC=Accurate expected)",
            p.npw
        );
    }

    #[test]
    fn default_nbands_formula() {
        // Si256 (255 ions after the vacancy): 1020/2 + 255/2 = 637.5 → 640.
        assert_eq!(default_nbands(1020, 255), 640);
        // Exactly on a multiple of 8 stays put.
        assert_eq!(default_nbands(64, 0), 32);
    }

    #[test]
    fn lattice_from_grid_round_trips() {
        for grid in [[80, 80, 80], [80, 120, 54], [70, 70, 210], [48, 48, 48]] {
            let encut = 400.0;
            let lat = Supercell::lattice_from_grid(grid, encut);
            let cell = Supercell::new("x", vec![(Element::Si, 4)], lat);
            let mut deck = Incar::default_deck();
            deck.encut_ev = Some(encut);
            let p = SystemParams::derive(&cell, &deck);
            assert_eq!(p.fft_grid, grid, "grid {grid:?} did not round-trip");
        }
    }

    #[test]
    fn nplwv_grows_with_encut() {
        let cell = Supercell::silicon(128);
        let mut lo = Incar::default_deck();
        lo.encut_ev = Some(200.0);
        let mut hi = Incar::default_deck();
        hi.encut_ev = Some(500.0);
        let p_lo = SystemParams::derive(&cell, &lo);
        let p_hi = SystemParams::derive(&cell, &hi);
        assert!(p_hi.nplwv > p_lo.nplwv);
        assert!(p_hi.npw > p_lo.npw);
    }

    #[test]
    fn rpa_gets_a_default_nbandsexact() {
        let cell = Supercell::silicon(128);
        let mut deck = Incar::default_deck();
        deck.xc = Xc::Rpa;
        let p = SystemParams::derive(&cell, &deck);
        let nbe = p.nbandsexact.expect("RPA must set NBANDSEXACT");
        assert!(nbe > p.nbands, "exact bands far exceed SCF bands");
        assert!(nbe < p.npw, "but stay below the basis size");
    }

    #[test]
    #[should_panic(expected = "invalid INCAR")]
    fn invalid_deck_panics() {
        let mut deck = Incar::default_deck();
        deck.nelm = 0;
        let _ = SystemParams::derive(&Supercell::silicon(8), &deck);
    }

    #[test]
    fn occupied_bands_are_half_the_electrons() {
        let cell = Supercell::silicon(64);
        let p = SystemParams::derive(&cell, &Incar::default_deck());
        assert_eq!(p.nbands_occ, 128);
    }
}
