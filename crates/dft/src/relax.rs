//! Ionic relaxation / molecular-dynamics drivers.
//!
//! Production VASP jobs rarely run a single SCF cycle: geometry
//! optimisations (`IBRION = 1/2`) and MD (`IBRION = 0`) wrap the electronic
//! loop in an ionic loop, with force/stress evaluation and ion updates
//! between cycles. Power-wise this produces the long quasi-periodic
//! timelines production telemetry actually sees: repeated SCF envelopes
//! separated by short low-power force stages, with later ionic steps
//! converging in fewer electronic iterations.

use crate::costs::{fft_pair_flops, CostModel};
use crate::params::SystemParams;
use crate::plan::{CollectiveKind, Op, ScfPlan};
use crate::scf::{build_plan, ParallelLayout};
use vpp_gpu::{Kernel, KernelKind};

/// Ionic driver configuration (`IBRION`-level controls).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IonicRun {
    /// Ionic steps (`NSW`).
    pub steps: usize,
    /// Electronic iterations in the first step (the deck's `NELM`).
    /// Later steps start from converged orbitals and need fewer.
    pub first_step_nelm: usize,
    /// Floor on per-step electronic iterations.
    pub min_nelm: usize,
    /// Geometric decay of the per-step iteration count.
    pub nelm_decay: f64,
}

impl IonicRun {
    /// A typical relaxation: iterations shrink ~30 % per ionic step.
    #[must_use]
    pub fn relaxation(steps: usize, first_step_nelm: usize) -> Self {
        assert!(steps > 0, "need at least one ionic step");
        Self {
            steps,
            first_step_nelm,
            min_nelm: 4,
            nelm_decay: 0.7,
        }
    }

    /// MD: after the first step, every step needs a similar small count.
    #[must_use]
    pub fn molecular_dynamics(steps: usize, first_step_nelm: usize) -> Self {
        assert!(steps > 0, "need at least one ionic step");
        Self {
            steps,
            first_step_nelm,
            min_nelm: 6,
            nelm_decay: 0.25,
        }
    }

    /// Electronic iterations at ionic step `i` (0-based).
    #[must_use]
    pub fn nelm_at(&self, step: usize) -> usize {
        let decayed =
            self.first_step_nelm as f64 * self.nelm_decay.powi(step.min(64) as i32);
        (decayed.round() as usize).max(self.min_nelm)
    }

    /// Lower the full ionic run to one plan: SCF cycles with force/stress
    /// stages between them.
    #[must_use]
    pub fn build_plan(
        &self,
        params: &SystemParams,
        layout: &ParallelLayout,
        cm: &CostModel,
    ) -> ScfPlan {
        let mut ops: Vec<Op> = Vec::new();
        let mut phases = Vec::new();
        let mut iterations = 0;
        for step in 0..self.steps {
            let mut p = params.clone();
            p.nelm = self.nelm_at(step);
            iterations += p.nelm;
            let cycle = build_plan(&p, layout, cm);
            let base = ops.len();
            phases.extend(cycle.phases.iter().map(|ph| crate::plan::PlanPhase {
                start: ph.start + base,
                end: ph.end + base,
                ..*ph
            }));
            ops.extend(cycle.ops);
            if step + 1 < self.steps {
                // Force/stress stages sit between SCF cycles, outside any
                // phase tile.
                ops.extend(force_stage(params, cm));
            }
        }
        ScfPlan {
            name: format!("{}+relax{}", params.name, self.steps),
            ops,
            iterations,
            phases,
        }
    }
}

/// Force/stress evaluation + ion update between ionic steps: a few grid
/// passes (moderate GPU load), a force reduction, and a host-side
/// optimiser update.
fn force_stage(p: &SystemParams, cm: &CostModel) -> Vec<Op> {
    let nplwv = p.nplwv as f64;
    let t_grid = 6.0 * fft_pair_flops(p.nplwv) / cm.fft_flops;
    vec![
        Op::Gpu(Kernel::with_duty(
            KernelKind::MemBound,
            nplwv * 2.0,
            t_grid,
            cm.duty(t_grid / 12.0),
        )),
        Op::Collective {
            bytes: p.n_ions as f64 * 3.0 * 8.0,
            kind: CollectiveKind::AllReduce,
        },
        Op::Host {
            duration_s: 0.25,
            cpu_active: 0.35,
            mem_active: 0.30,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Supercell;
    use crate::incar::Incar;

    fn si64() -> SystemParams {
        let mut deck = Incar::default_deck();
        deck.nelm = 20;
        SystemParams::derive(&Supercell::silicon(64), &deck)
    }

    #[test]
    fn nelm_decays_to_the_floor() {
        let run = IonicRun::relaxation(10, 40);
        assert_eq!(run.nelm_at(0), 40);
        assert_eq!(run.nelm_at(1), 28);
        assert!(run.nelm_at(9) >= run.min_nelm);
        let mut last = usize::MAX;
        for s in 0..10 {
            assert!(run.nelm_at(s) <= last);
            last = run.nelm_at(s);
        }
    }

    #[test]
    fn md_steps_stay_small_and_steady() {
        let run = IonicRun::molecular_dynamics(50, 40);
        assert_eq!(run.nelm_at(3), run.min_nelm);
        assert_eq!(run.nelm_at(49), run.min_nelm);
    }

    #[test]
    fn relaxation_plan_is_longer_than_single_cycle_but_sublinear() {
        let p = si64();
        let layout = ParallelLayout::nodes(1);
        let cm = CostModel::calibrated();
        let single = build_plan(&p, &layout, &cm);
        let relaxed = IonicRun::relaxation(5, p.nelm).build_plan(&p, &layout, &cm);
        assert!(relaxed.gpu_time_s() > single.gpu_time_s());
        assert!(
            relaxed.gpu_time_s() < 5.0 * single.gpu_time_s(),
            "later ionic steps must be cheaper"
        );
        assert!(relaxed.iterations > single.iterations);
    }

    #[test]
    fn force_stages_appear_between_steps() {
        let p = si64();
        let cm = CostModel::calibrated();
        let plan = IonicRun::relaxation(3, 8).build_plan(&p, &ParallelLayout::nodes(1), &cm);
        // Two force stages → two host ops with cpu_active 0.35.
        let force_hosts = plan
            .ops
            .iter()
            .filter(|op| matches!(op, Op::Host { cpu_active, .. } if (*cpu_active - 0.35).abs() < 1e-9))
            .count();
        assert_eq!(force_hosts, 2);
    }

    #[test]
    fn single_step_equals_plain_scf_plus_name() {
        let p = si64();
        let cm = CostModel::calibrated();
        let layout = ParallelLayout::nodes(1);
        let run = IonicRun::relaxation(1, p.nelm);
        let plan = run.build_plan(&p, &layout, &cm);
        let plain = build_plan(&p, &layout, &cm);
        assert_eq!(plan.ops, plain.ops);
        assert!(plan.name.contains("relax1"));
    }

    #[test]
    #[should_panic(expected = "at least one ionic step")]
    fn zero_steps_panics() {
        let _ = IonicRun::relaxation(0, 10);
    }
}
