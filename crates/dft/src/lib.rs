//! Plane-wave DFT workload simulator — the VASP analogue.
//!
//! VASP itself is licensed software, so this crate implements the parts of
//! it the paper's power study actually depends on (DESIGN.md §1):
//!
//! * **Structures** ([`cell`]) — the seven benchmark systems of Table I and
//!   a silicon-supercell generator for the §IV sweeps.
//! * **Input deck** ([`incar`]) — the INCAR-level controls the paper varies:
//!   algorithm (iteration scheme), functional, ENCUT, NBANDS, KPOINTS, KPAR,
//!   NSIM, NELM.
//! * **Derived parameters** ([`params`]) — electron counts, default NBANDS,
//!   FFT grids / NPLWV, plane-wave basis size, exactly the quantities
//!   Table I reports.
//! * **The SCF loop** ([`scf`]) — lowered to a per-rank stream of GPU kernel
//!   blocks, host stages, and collectives ([`plan`]), with per-method cost
//!   models ([`costs`]) for Blocked Davidson, RMM-DIIS, damped CG, hybrid
//!   (HSE) exact exchange, van der Waals corrections, and ACFDT/RPA with its
//!   CPU-side exact diagonalisation.
//!
//! The crate knows nothing about nodes or networks: it produces a
//! [`plan::ScfPlan`] that `vpp-cluster` executes on modelled hardware.

pub mod cell;
pub mod costs;
pub mod incar;
pub mod io;
pub mod method;
pub mod params;
pub mod plan;
pub mod relax;
pub mod scf;

pub use cell::{Element, Supercell};
pub use costs::CostModel;
pub use incar::{Algo, Binary, Incar, Xc};
pub use io::{parse_incar, parse_kpoints, parse_poscar, ParseError};
pub use method::Method;
pub use params::SystemParams;
pub use plan::{CollectiveKind, Op, PhaseKind, PlanPhase, ScfPlan};
pub use relax::IonicRun;
pub use scf::{build_plan, ParallelLayout};
