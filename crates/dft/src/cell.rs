//! Crystal structures: elements, supercells, and the benchmark systems.

/// Chemical elements appearing in the paper's benchmark suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Element {
    Si,
    B,
    Pd,
    O,
    Ga,
    As,
    Bi,
    Cu,
    C,
}

impl Element {
    /// Valence electrons contributed per atom (PAW potential defaults).
    /// These reproduce Table I's electron counts exactly — e.g. GaAsBi-64
    /// with 32 Ga + 31 As + 1 Bi(d) gives 266 electrons.
    #[must_use]
    pub fn valence_electrons(self) -> u32 {
        match self {
            Element::Si => 4,
            Element::B => 3,
            Element::Pd => 10,
            Element::O => 6,
            Element::Ga => 3,
            Element::As => 5,
            Element::Bi => 15, // Bi_d potential (5d¹⁰ 6s² 6p³)
            Element::Cu => 11,
            Element::C => 4,
        }
    }

    /// Default plane-wave cutoff of the element's PAW potential (ENMAX, eV).
    #[must_use]
    pub fn enmax_ev(self) -> f64 {
        match self {
            Element::Si => 245.0,
            Element::B => 319.0,
            Element::Pd => 251.0,
            Element::O => 400.0,
            Element::Ga => 283.0,
            Element::As => 209.0,
            Element::Bi => 243.0,
            Element::Cu => 295.0,
            Element::C => 400.0,
        }
    }

    /// Chemical symbol.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            Element::Si => "Si",
            Element::B => "B",
            Element::Pd => "Pd",
            Element::O => "O",
            Element::Ga => "Ga",
            Element::As => "As",
            Element::Bi => "Bi",
            Element::Cu => "Cu",
            Element::C => "C",
        }
    }
}

/// A periodic simulation cell: composition plus orthorhombic lattice
/// lengths (Å). Non-orthorhombic benchmark cells are represented by an
/// equivalent orthorhombic box with the same FFT grid — only the grid and
/// volume matter to the cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct Supercell {
    /// Human-readable name (Table I row).
    pub name: String,
    /// Composition: (element, atom count) pairs.
    pub composition: Vec<(Element, usize)>,
    /// Orthorhombic lattice lengths, Å.
    pub lattice_a: [f64; 3],
}

impl Supercell {
    /// Construct and validate a cell.
    ///
    /// # Panics
    /// On empty composition or non-positive lattice lengths.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        composition: Vec<(Element, usize)>,
        lattice_a: [f64; 3],
    ) -> Self {
        assert!(!composition.is_empty(), "empty composition");
        assert!(
            composition.iter().any(|&(_, n)| n > 0),
            "no atoms in composition"
        );
        assert!(
            lattice_a.iter().all(|&l| l > 0.0 && l.is_finite()),
            "bad lattice {lattice_a:?}"
        );
        Self {
            name: name.into(),
            composition,
            lattice_a,
        }
    }

    /// Total number of ions.
    #[must_use]
    pub fn n_ions(&self) -> usize {
        self.composition.iter().map(|&(_, n)| n).sum()
    }

    /// Total valence electrons (NELECT).
    #[must_use]
    pub fn n_electrons(&self) -> u32 {
        self.composition
            .iter()
            .map(|&(e, n)| e.valence_electrons() * n as u32)
            .sum()
    }

    /// Largest ENMAX over the composition — VASP's default ENCUT.
    #[must_use]
    pub fn default_encut_ev(&self) -> f64 {
        self.composition
            .iter()
            .map(|&(e, _)| e.enmax_ev())
            .fold(0.0, f64::max)
    }

    /// Cell volume, Å³.
    #[must_use]
    pub fn volume_a3(&self) -> f64 {
        self.lattice_a.iter().product()
    }

    /// A cubic silicon supercell with `n_atoms` atoms (diamond lattice,
    /// a₀ = 5.43 Å, 8 atoms per conventional cell). Used for the §IV size
    /// sweeps (Fig. 6) and the method comparison (Fig. 9).
    #[must_use]
    pub fn silicon(n_atoms: usize) -> Self {
        assert!(n_atoms > 0, "need at least one atom");
        let cells = n_atoms as f64 / 8.0;
        let l = 5.43 * cells.cbrt();
        Self::new(
            format!("Si{n_atoms}"),
            vec![(Element::Si, n_atoms)],
            [l, l, l],
        )
    }

    /// Derive an equivalent orthorhombic lattice from a published FFT grid
    /// at the given cutoff, inverting the grid-sizing rule in
    /// [`crate::params`]. Used to pin the Table I benchmarks to their
    /// published grids.
    #[must_use]
    pub fn lattice_from_grid(grid: [usize; 3], encut_ev: f64) -> [f64; 3] {
        let k = crate::params::GRID_FACTOR * encut_ev.sqrt();
        // Choose a length that reproduces `grid` exactly after rounding up
        // to the next FFT-friendly size: just below the target size.
        [
            (grid[0] as f64 - 0.5) / k,
            (grid[1] as f64 - 0.5) / k,
            (grid[2] as f64 - 0.5) / k,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silicon_supercell_counts() {
        let c = Supercell::silicon(256);
        assert_eq!(c.n_ions(), 256);
        assert_eq!(c.n_electrons(), 1024);
        assert_eq!(c.default_encut_ev(), 245.0);
    }

    #[test]
    fn silicon_lattice_scales_with_cube_root() {
        let a = Supercell::silicon(8);
        let b = Supercell::silicon(64);
        assert!((a.lattice_a[0] - 5.43).abs() < 1e-12);
        assert!((b.lattice_a[0] - 10.86).abs() < 1e-9);
    }

    #[test]
    fn gaasbi_composition_matches_table1_electrons() {
        // Table I: GaAsBi-64 has 64 ions and 266 electrons.
        let c = Supercell::new(
            "GaAsBi-64",
            vec![(Element::Ga, 32), (Element::As, 31), (Element::Bi, 1)],
            [17.0, 17.0, 17.0],
        );
        assert_eq!(c.n_ions(), 64);
        assert_eq!(c.n_electrons(), 266);
    }

    #[test]
    fn pdo_compositions_match_table1() {
        // PdO2: 174 ions, 1644 electrons; PdO4 doubles both.
        let pdo2 = Supercell::new(
            "PdO2",
            vec![(Element::Pd, 150), (Element::O, 24)],
            [17.0, 12.7, 11.4],
        );
        assert_eq!(pdo2.n_ions(), 174);
        assert_eq!(pdo2.n_electrons(), 1644);
        let pdo4 = Supercell::new(
            "PdO4",
            vec![(Element::Pd, 300), (Element::O, 48)],
            [17.0, 25.4, 11.4],
        );
        assert_eq!(pdo4.n_ions(), 348);
        assert_eq!(pdo4.n_electrons(), 3288);
    }

    #[test]
    fn cuc_composition_matches_table1() {
        let c = Supercell::new(
            "CuC_vdw",
            vec![(Element::Cu, 96), (Element::C, 2)],
            [15.0, 15.0, 45.0],
        );
        assert_eq!(c.n_ions(), 98);
        assert_eq!(c.n_electrons(), 1064);
    }

    #[test]
    fn volume_is_product_of_lengths() {
        let c = Supercell::new("x", vec![(Element::Si, 1)], [2.0, 3.0, 4.0]);
        assert_eq!(c.volume_a3(), 24.0);
    }

    #[test]
    #[should_panic(expected = "no atoms")]
    fn zero_atom_composition_panics() {
        let _ = Supercell::new("x", vec![(Element::Si, 0)], [1.0, 1.0, 1.0]);
    }

    #[test]
    fn encut_takes_max_over_elements() {
        let c = Supercell::new(
            "pdo",
            vec![(Element::Pd, 1), (Element::O, 1)],
            [10.0, 10.0, 10.0],
        );
        assert_eq!(c.default_encut_ev(), 400.0, "O has the larger ENMAX");
    }
}
