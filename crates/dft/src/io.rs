//! Parsers for VASP-format input files.
//!
//! Lets the simulator consume real input decks: `INCAR` (tag = value),
//! `KPOINTS` (Monkhorst-Pack mesh), and `POSCAR` (structure). Only the
//! subset of tags the power study exercises is interpreted; unknown tags
//! are collected (not errors) so production decks parse cleanly.

use crate::cell::{Element, Supercell};
use crate::incar::{Algo, Incar, Xc};

/// Parse failure with position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Strip VASP comments (`!` or `#` to end of line) and trim.
fn clean(line: &str) -> &str {
    let cut = line.find(['!', '#']).unwrap_or(line.len());
    line[..cut].trim()
}

/// Result of parsing an INCAR: the interpreted deck plus any tags we saw
/// but do not model.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedIncar {
    pub deck: Incar,
    /// `(tag, value)` pairs the power model ignores.
    pub ignored: Vec<(String, String)>,
}

/// Parse INCAR text into a deck. Tags may repeat (last wins), separators
/// are `=`, names are case-insensitive, `;` splits multiple assignments on
/// one line (VASP allows this).
///
/// ```
/// let parsed = vpp_dft::parse_incar("ALGO = Damped\nLHFCALC = .TRUE.\nNELM = 41").unwrap();
/// assert_eq!(parsed.deck.algo, vpp_dft::Algo::Damped);
/// assert_eq!(parsed.deck.xc, vpp_dft::Xc::Hse);
/// assert_eq!(parsed.deck.nelm, 41);
/// ```
pub fn parse_incar(text: &str) -> Result<ParsedIncar, ParseError> {
    let mut deck = Incar::default_deck();
    let mut lhfcalc = false;
    let mut hfscreen_set = false;
    let mut luse_vdw = false;
    let mut ignored = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = clean(raw);
        if line.is_empty() {
            continue;
        }
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            let Some((tag, value)) = stmt.split_once('=') else {
                return err(line_no, format!("expected TAG = VALUE, got '{stmt}'"));
            };
            let tag = tag.trim().to_ascii_uppercase();
            let value = value.trim();
            if value.is_empty() {
                return err(line_no, format!("empty value for {tag}"));
            }
            match tag.as_str() {
                "ALGO" => {
                    deck.algo = match value.to_ascii_lowercase().as_str() {
                        "normal" | "n" => Algo::Normal,
                        "fast" | "f" => Algo::Fast,
                        "veryfast" | "vf" | "very_fast" => Algo::VeryFast,
                        "damped" | "d" => Algo::Damped,
                        "all" | "a" | "conjugate" => Algo::All,
                        other => return err(line_no, format!("unknown ALGO '{other}'")),
                    }
                }
                "GGA" => {
                    deck.xc = match value.to_ascii_uppercase().as_str() {
                        "CA" | "PZ" | "LDA" => Xc::Lda,
                        "PE" | "PBE" | "91" | "RP" | "AM" | "PS" => Xc::Gga,
                        other => return err(line_no, format!("unknown GGA '{other}'")),
                    }
                }
                "LHFCALC" => lhfcalc = parse_bool(value, line_no)?,
                "HFSCREEN" => {
                    let _: f64 = parse_num(value, line_no, "HFSCREEN")?;
                    hfscreen_set = true;
                }
                "LUSE_VDW" => luse_vdw = parse_bool(value, line_no)?,
                "LRPA" | "LACFDT" => {
                    if parse_bool(value, line_no)? {
                        deck.xc = Xc::Rpa;
                    }
                }
                "ENCUT" => deck.encut_ev = Some(parse_num(value, line_no, "ENCUT")?),
                "NBANDS" => deck.nbands = Some(parse_usize(value, line_no, "NBANDS")?),
                "NBANDSEXACT" => {
                    deck.nbandsexact = Some(parse_usize(value, line_no, "NBANDSEXACT")?)
                }
                "NELM" => deck.nelm = parse_usize(value, line_no, "NELM")?,
                "NELMDL" => {
                    // VASP allows negative NELMDL (delay applies once).
                    let v: i64 = value
                        .parse()
                        .map_err(|_| ParseError {
                            line: line_no,
                            message: format!("bad NELMDL '{value}'"),
                        })?;
                    deck.nelmdl = v.unsigned_abs() as usize;
                }
                "LNONCOLLINEAR" => {
                    if parse_bool(value, line_no)? {
                        deck.binary = crate::incar::Binary::NonCollinear;
                    }
                }
                "KPAR" => deck.kpar = parse_usize(value, line_no, "KPAR")?,
                "NSIM" => deck.nsim = parse_usize(value, line_no, "NSIM")?,
                _ => ignored.push((tag, value.to_string())),
            }
        }
    }

    if lhfcalc || hfscreen_set {
        deck.xc = Xc::Hse;
    }
    if luse_vdw {
        deck.xc = Xc::VdwDf;
    }
    // Validate everything INCAR-local. KPAR-vs-mesh consistency cannot be
    // checked here (the mesh lives in KPOINTS); substitute a compatible
    // placeholder mesh for the check.
    let mut check = deck.clone();
    check.kpoints = [deck.kpar.max(1), 1, 1];
    if let Err(e) = check.validate() {
        return err(0, format!("deck failed validation: {e}"));
    }
    Ok(ParsedIncar { deck, ignored })
}

fn parse_bool(value: &str, line: usize) -> Result<bool, ParseError> {
    match value.to_ascii_uppercase().as_str() {
        ".TRUE." | "T" | "TRUE" => Ok(true),
        ".FALSE." | "F" | "FALSE" => Ok(false),
        other => err(line, format!("expected logical, got '{other}'")),
    }
}

fn parse_num(value: &str, line: usize, tag: &str) -> Result<f64, ParseError> {
    value.parse().map_err(|_| ParseError {
        line,
        message: format!("bad number for {tag}: '{value}'"),
    })
}

fn parse_usize(value: &str, line: usize, tag: &str) -> Result<usize, ParseError> {
    value.parse().map_err(|_| ParseError {
        line,
        message: format!("bad integer for {tag}: '{value}'"),
    })
}

/// Parse a KPOINTS file (automatic Monkhorst-Pack / Gamma-centred mesh).
/// Returns the mesh divisions.
pub fn parse_kpoints(text: &str) -> Result<[usize; 3], ParseError> {
    let lines: Vec<&str> = text.lines().collect();
    if lines.len() < 4 {
        return err(lines.len(), "KPOINTS needs at least 4 lines");
    }
    // Line 2: 0 = automatic mesh.
    let n: i64 = clean(lines[1]).parse().map_err(|_| ParseError {
        line: 2,
        message: format!("bad k-point count '{}'", lines[1].trim()),
    })?;
    if n != 0 {
        return err(2, "only automatic meshes (0) are supported");
    }
    // Line 3: Gamma / Monkhorst.
    let mode = clean(lines[2]).to_ascii_lowercase();
    if !(mode.starts_with('g') || mode.starts_with('m')) {
        return err(3, format!("expected Gamma or Monkhorst, got '{mode}'"));
    }
    // Line 4: mesh divisions.
    let parts: Vec<&str> = clean(lines[3]).split_whitespace().collect();
    if parts.len() < 3 {
        return err(4, "mesh line needs three divisions");
    }
    let mut mesh = [0usize; 3];
    for (i, p) in parts.iter().take(3).enumerate() {
        mesh[i] = p.parse().map_err(|_| ParseError {
            line: 4,
            message: format!("bad mesh division '{p}'"),
        })?;
        if mesh[i] == 0 {
            return err(4, "mesh divisions must be positive");
        }
    }
    Ok(mesh)
}

fn element_from_symbol(sym: &str, line: usize) -> Result<Element, ParseError> {
    match sym {
        "Si" => Ok(Element::Si),
        "B" => Ok(Element::B),
        "Pd" => Ok(Element::Pd),
        "O" => Ok(Element::O),
        "Ga" => Ok(Element::Ga),
        "As" => Ok(Element::As),
        "Bi" | "Bi_d" => Ok(Element::Bi),
        "Cu" => Ok(Element::Cu),
        "C" => Ok(Element::C),
        other => err(line, format!("unsupported element '{other}'")),
    }
}

/// Parse a POSCAR (VASP 5 format with a species line). The lattice is
/// reduced to its orthorhombic box (per-axis lengths × scale) — the cost
/// model consumes only grid support and volume.
pub fn parse_poscar(text: &str) -> Result<Supercell, ParseError> {
    let lines: Vec<&str> = text.lines().collect();
    if lines.len() < 7 {
        return err(lines.len(), "POSCAR needs at least 7 lines");
    }
    let title = clean(lines[0]).to_string();
    let scale: f64 = clean(lines[1]).parse().map_err(|_| ParseError {
        line: 2,
        message: format!("bad scaling factor '{}'", lines[1].trim()),
    })?;
    if scale <= 0.0 {
        return err(2, "negative/zero scale (volume mode) not supported");
    }
    let mut lattice = [0.0f64; 3];
    for (axis, l) in lattice.iter_mut().enumerate() {
        let row = clean(lines[2 + axis]);
        let comps: Vec<f64> = row
            .split_whitespace()
            .map(str::parse)
            .collect::<Result<_, _>>()
            .map_err(|_| ParseError {
                line: 3 + axis,
                message: format!("bad lattice vector '{row}'"),
            })?;
        if comps.len() != 3 {
            return err(3 + axis, "lattice vector needs three components");
        }
        *l = scale * comps.iter().map(|c| c * c).sum::<f64>().sqrt();
        if *l <= 0.0 {
            return err(3 + axis, "zero-length lattice vector");
        }
    }
    let species: Vec<&str> = clean(lines[5]).split_whitespace().collect();
    if species.is_empty() {
        return err(6, "missing species line (VASP 5 format required)");
    }
    let counts: Vec<usize> = clean(lines[6])
        .split_whitespace()
        .map(str::parse)
        .collect::<Result<_, _>>()
        .map_err(|_| ParseError {
            line: 7,
            message: format!("bad atom counts '{}'", lines[6].trim()),
        })?;
    if counts.len() != species.len() {
        return err(
            7,
            format!(
                "{} species but {} counts",
                species.len(),
                counts.len()
            ),
        );
    }
    let mut composition = Vec::with_capacity(species.len());
    for (sym, &n) in species.iter().zip(&counts) {
        composition.push((element_from_symbol(sym, 6)?, n));
    }
    if composition.iter().all(|&(_, n)| n == 0) {
        return err(7, "no atoms");
    }
    let name = if title.is_empty() { "POSCAR".into() } else { title };
    Ok(Supercell::new(name, composition, lattice))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SystemParams;

    const SI256_INCAR: &str = "\
SYSTEM = Si256 vacancy   ! comment
ALGO = Damped
LHFCALC = .TRUE. ; HFSCREEN = 0.2
NELM = 41
NBANDS = 640
NSIM = 4
# a full-line comment
LREAL = Auto             ! not modelled
";

    #[test]
    fn parses_the_si256_hse_deck() {
        let parsed = parse_incar(SI256_INCAR).unwrap();
        assert_eq!(parsed.deck.algo, Algo::Damped);
        assert_eq!(parsed.deck.xc, Xc::Hse);
        assert_eq!(parsed.deck.nelm, 41);
        assert_eq!(parsed.deck.nbands, Some(640));
        assert_eq!(parsed.deck.nsim, 4);
        assert_eq!(
            parsed.ignored,
            vec![
                ("SYSTEM".to_string(), "Si256 vacancy".to_string()),
                ("LREAL".to_string(), "Auto".to_string())
            ]
        );
    }

    #[test]
    fn algo_aliases_and_case_insensitivity() {
        for (text, algo) in [
            ("algo = VeryFast", Algo::VeryFast),
            ("ALGO = vf", Algo::VeryFast),
            ("Algo = N", Algo::Normal),
            ("ALGO = All", Algo::All),
        ] {
            assert_eq!(parse_incar(text).unwrap().deck.algo, algo, "{text}");
        }
    }

    #[test]
    fn gga_and_vdw_and_rpa_tags() {
        assert_eq!(parse_incar("GGA = CA").unwrap().deck.xc, Xc::Lda);
        assert_eq!(parse_incar("GGA = PE").unwrap().deck.xc, Xc::Gga);
        assert_eq!(
            parse_incar("LUSE_VDW = .TRUE.").unwrap().deck.xc,
            Xc::VdwDf
        );
        let rpa = parse_incar("LRPA = .TRUE.\nNBANDSEXACT = 23506\nNELM = 12").unwrap();
        assert_eq!(rpa.deck.xc, Xc::Rpa);
        assert_eq!(rpa.deck.nbandsexact, Some(23_506));
    }

    #[test]
    fn bad_lines_report_position() {
        let e = parse_incar("ALGO = Damped\nNELM = soon").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("NELM"));
        let e = parse_incar("just words").unwrap_err();
        assert!(e.message.contains("TAG = VALUE"));
    }

    #[test]
    fn invalid_deck_is_rejected_after_parse() {
        let e = parse_incar("ENCUT = 10").unwrap_err();
        assert!(e.message.contains("validation"));
        // KPAR alone is fine — the mesh arrives via KPOINTS later.
        assert!(parse_incar("KPAR = 2").is_ok());
    }

    #[test]
    fn kpoints_gamma_and_mp() {
        let text = "Automatic mesh\n0\nGamma\n4 4 4\n0 0 0\n";
        assert_eq!(parse_kpoints(text).unwrap(), [4, 4, 4]);
        let text = "k\n0\nMonkhorst-Pack\n3 3 1\n";
        assert_eq!(parse_kpoints(text).unwrap(), [3, 3, 1]);
    }

    #[test]
    fn kpoints_rejects_explicit_lists() {
        let text = "explicit\n2\nReciprocal\n0 0 0 1\n0.5 0 0 1\n";
        assert!(parse_kpoints(text).is_err());
    }

    #[test]
    fn poscar_round_trips_into_params() {
        let text = "\
GaAsBi-64
1.0
17.55 0.0 0.0
0.0 17.55 0.0
0.0 0.0 17.55
Ga As Bi
32 31 1
Direct
";
        let cell = parse_poscar(text).unwrap();
        assert_eq!(cell.name, "GaAsBi-64");
        assert_eq!(cell.n_ions(), 64);
        assert_eq!(cell.n_electrons(), 266);
        let p = SystemParams::derive(&cell, &Incar::default_deck());
        assert!(p.nplwv > 0);
    }

    #[test]
    fn poscar_scale_multiplies_lattice() {
        let text = "\
Si8
2.0
2.715 0.0 0.0
0.0 2.715 0.0
0.0 0.0 2.715
Si
8
Direct
";
        let cell = parse_poscar(text).unwrap();
        assert!((cell.lattice_a[0] - 5.43).abs() < 1e-9);
    }

    #[test]
    fn poscar_non_orthogonal_uses_row_lengths() {
        let text = "\
hex-ish
1.0
3.0 4.0 0.0
0.0 5.0 0.0
0.0 0.0 6.0
Si
2
Direct
";
        let cell = parse_poscar(text).unwrap();
        assert!((cell.lattice_a[0] - 5.0).abs() < 1e-9, "|(3,4,0)| = 5");
    }

    #[test]
    fn poscar_errors_are_positioned() {
        let e = parse_poscar("t\n1.0\nbad lattice row\n").unwrap_err();
        assert!(e.line <= 3);
        let text = "t\n1.0\n1 0 0\n0 1 0\n0 0 1\nXx\n4\nDirect\n";
        let e = parse_poscar(text).unwrap_err();
        assert!(e.message.contains("unsupported element"));
        let text = "t\n1.0\n1 0 0\n0 1 0\n0 0 1\nSi O\n4\nDirect\n";
        let e = parse_poscar(text).unwrap_err();
        assert!(e.message.contains("2 species but 1 counts"));
    }

    #[test]
    fn full_deck_reproduces_benchmark_parameters() {
        // Assemble the PdO2 benchmark from text inputs only.
        let incar = parse_incar("ALGO = VeryFast\nGGA = CA\nNELM = 60\nNBANDS = 1024\nENCUT = 400")
            .unwrap()
            .deck;
        let lat = crate::cell::Supercell::lattice_from_grid([80, 60, 54], 400.0);
        let poscar = format!(
            "PdO2\n1.0\n{} 0 0\n0 {} 0\n0 0 {}\nPd O\n150 24\nDirect\n",
            lat[0], lat[1], lat[2]
        );
        let cell = parse_poscar(&poscar).unwrap();
        let p = SystemParams::derive(&cell, &incar);
        assert_eq!(p.fft_grid, [80, 60, 54]);
        assert_eq!(p.nplwv, 259_200);
        assert_eq!(p.nelect, 1644);
    }
}
