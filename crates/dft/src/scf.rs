//! Lowering the SCF cycle to a per-rank op stream.
//!
//! This encodes VASP's parallelisation structure — the property the paper's
//! power analysis hinges on (§IV-B, §IV-C):
//!
//! * bands are distributed across MPI ranks (GPUs) and processed
//!   **sequentially** in NSIM-sized blocks → more bands = more blocks =
//!   longer runtime at unchanged power;
//! * plane waves are distributed across the cores **within** each GPU →
//!   more plane waves = wider kernels = higher power, up to saturation;
//! * k-points are distributed across KPAR groups and processed sequentially
//!   within each group, with per-k-point host work that dilutes GPU power
//!   for k-point-heavy workloads (GaAsBi-64);
//! * higher-order methods add their own stages: HSE exact exchange inside
//!   every H·ψ, ACFDT/RPA a CPU-side exact diagonalisation plus GPU χ₀
//!   contractions.

use crate::costs::{eig_flops_n, fft_pair_flops, CostModel};
use crate::params::SystemParams;
use crate::plan::{CollectiveKind, Op, PhaseKind, PlanPhase, ScfPlan};
use vpp_gpu::{Kernel, KernelKind};

/// Where the job's ranks live: `nodes × gpus_per_node`, one MPI rank per
/// GPU (the paper's §III-B configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelLayout {
    pub nodes: usize,
    pub gpus_per_node: usize,
}

impl ParallelLayout {
    /// One to `n` Perlmutter nodes, 4 GPUs each.
    #[must_use]
    pub fn nodes(n: usize) -> Self {
        assert!(n > 0, "need at least one node");
        Self {
            nodes: n,
            gpus_per_node: 4,
        }
    }

    /// Total MPI ranks (= GPUs).
    #[must_use]
    pub fn ranks(&self) -> usize {
        self.nodes * self.gpus_per_node
    }
}

/// Derived distribution of the workload over a layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Distribution {
    /// Effective KPAR (capped by ranks and k-points).
    pub kpar: usize,
    /// Ranks per k-point group.
    pub ranks_per_group: usize,
    /// k-points each group processes sequentially.
    pub nk_local: usize,
    /// Bands per rank.
    pub bands_per_rank: usize,
    /// NSIM-blocks per band sweep.
    pub blocks: usize,
}

impl Distribution {
    /// Distribute `p` over `layout`.
    #[must_use]
    pub fn derive(p: &SystemParams, layout: &ParallelLayout) -> Self {
        let ranks = layout.ranks();
        let kpar = p.kpar.min(ranks).min(p.nk).max(1);
        let ranks_per_group = (ranks / kpar).max(1);
        let nk_local = p.nk.div_ceil(kpar);
        let bands_per_rank = p.nbands.div_ceil(ranks_per_group).max(1);
        let blocks = bands_per_rank.div_ceil(p.nsim);
        Self {
            kpar,
            ranks_per_group,
            nk_local,
            bands_per_rank,
            blocks,
        }
    }
}

/// Host-stage activity fractions while GPUs run (launch queues, MPI
/// progress) — kept here so the plan is self-contained.
const HOST_CPU_LIGHT: f64 = 0.22;
const HOST_MEM_LIGHT: f64 = 0.30;
/// CPU exact diagonalisation stage (all cores on the dense solver).
const HOST_CPU_DIAG: f64 = 0.82;
const HOST_MEM_DIAG: f64 = 0.55;

/// Build the complete per-rank plan for `p` on `layout`.
#[must_use]
pub fn build_plan(p: &SystemParams, layout: &ParallelLayout, cm: &CostModel) -> ScfPlan {
    let dist = Distribution::derive(p, layout);
    let mut ops: Vec<Op> = Vec::new();
    let mut phases: Vec<PlanPhase> = Vec::new();

    for iter in 0..p.nelm {
        // NELMDL "delay" iterations run non-self-consistently: the charge
        // density is frozen, so density mixing and its reduction are
        // skipped.
        let start = ops.len();
        emit_iteration(p, &dist, cm, &mut ops, iter < p.nelmdl);
        phases.push(PlanPhase {
            kind: PhaseKind::ScfIter,
            index: iter,
            start,
            end: ops.len(),
        });
    }

    if matches!(p.xc, crate::incar::Xc::Rpa) {
        let start = ops.len();
        let chi0_start = emit_rpa_epilogue(p, layout, &dist, cm, &mut ops);
        phases.push(PlanPhase {
            kind: PhaseKind::RpaDiag,
            index: 0,
            start,
            end: chi0_start,
        });
        phases.push(PlanPhase {
            kind: PhaseKind::RpaChi0,
            index: 0,
            start: chi0_start,
            end: ops.len(),
        });
    }

    ScfPlan {
        name: p.name.clone(),
        ops,
        iterations: p.nelm,
        phases,
    }
}

fn emit_iteration(
    p: &SystemParams,
    dist: &Distribution,
    cm: &CostModel,
    ops: &mut Vec<Op>,
    delay: bool,
) {
    // The binary build scales the fundamental work items (§II-C): vasp_gam
    // halves them through Γ-only real wavefunctions, vasp_ncl doubles the
    // spinor basis and quadruples subspace blocks.
    let hpsi = p.algo.hpsi_per_band() * p.binary.hpsi_factor();
    let subspace = p.binary.subspace_factor();
    let nplwv = p.nplwv as f64;
    let npw = p.npw as f64;

    // Per-k-point host work: wavefunction rotations, symmetrisation,
    // k-dependent setup. Γ-only runs take the gamma-optimised path and skip
    // it entirely; for k-meshes it is partially rank-parallel. This is the
    // mechanism that starves the GPUs on k-point-heavy workloads
    // (GaAsBi-64, §III-C: "insufficient workload to fully utilize").
    let host_k = if p.nk > 1 {
        cm.host_per_kpoint_s * (0.3 + 0.7 / (dist.ranks_per_group as f64).sqrt())
    } else {
        0.0
    };
    // 70 % of the per-k host work manifests as sub-window launch gaps
    // *inside* the band sweep: both the telemetry and the power regulator
    // average over them, so they dilute kernel power (and make k-point
    // heavy workloads cap-tolerant, Fig. 12) without appearing as separate
    // idle stages. The remaining 30 % is a genuine host stage.
    let gap_per_block = if dist.blocks > 0 {
        0.7 * host_k / dist.blocks as f64
    } else {
        0.0
    };

    // Subspace projection/rotation GEMM budget: accumulated per block (the
    // NSIM blocking folds the Gram/projection updates into the sweep), so
    // it raises the sweep's average power instead of forming a separate
    // spike.
    let g = p.algo.subspace_gemms_per_iter() * subspace;
    let t_gemm_total =
        g * p.nbands as f64 * dist.bands_per_rank as f64 * npw * 8.0 / cm.gemm_flops;
    let t_gemm_block = if dist.blocks > 0 {
        t_gemm_total / dist.blocks as f64
    } else {
        0.0
    };

    for _k in 0..dist.nk_local {
        if host_k > 0.0 {
            ops.push(Op::Host {
                duration_s: 0.3 * host_k,
                cpu_active: HOST_CPU_LIGHT,
                mem_active: HOST_MEM_LIGHT,
            });
        }

        // Band sweep in NSIM blocks.
        let mut bands_left = dist.bands_per_rank;
        for _b in 0..dist.blocks {
            let bands = bands_left.min(p.nsim) as f64;
            bands_left = bands_left.saturating_sub(p.nsim);

            // H·ψ grid part: FFTs + local potential passes.
            let grid_flops = hpsi * bands * (cm.fft_passes / 2.0) * fft_pair_flops(p.nplwv);
            let t_fft = grid_flops / cm.fft_flops;
            let fft_launches = (hpsi * cm.fft_passes).max(1.0);
            let fft_gap = 0.6 * gap_per_block;
            let fft_duty = cm.duty(t_fft / fft_launches) * t_fft / (t_fft + fft_gap);
            ops.push(Op::Gpu(Kernel::with_duty(
                KernelKind::Fft3d,
                nplwv * bands * cm.width_pipeline,
                t_fft + fft_gap,
                fft_duty,
            )));

            // H·ψ projector / vector-update part (bandwidth-bound).
            let proj_flops = hpsi * bands * (npw * p.n_ions as f64 * 8.0 + npw * 24.0);
            let t_proj = proj_flops / cm.mem_flops;
            let proj_launches = (hpsi * 2.0).max(1.0);
            let proj_gap = 0.4 * gap_per_block;
            let proj_duty =
                cm.duty(t_proj / proj_launches) * t_proj / (t_proj + proj_gap);
            ops.push(Op::Gpu(Kernel::with_duty(
                KernelKind::MemBound,
                nplwv * bands * cm.width_pipeline,
                t_proj + proj_gap,
                proj_duty,
            )));

            // HSE: screened exact exchange inside every H·ψ. Large batched
            // FFT+GEMM contractions over the occupied manifold — the
            // hottest kernels in the study.
            if matches!(p.xc, crate::incar::Xc::Hse) {
                // The action/contraction steps are batched GEMMs on tensor
                // cores (85 % of the time); the pair FFTs between them keep
                // occupancy high, so the whole stage runs near TDP.
                let points = hpsi * 0.5 * bands * p.nbands_occ as f64 * nplwv;
                let t_x = points / cm.exchange_pts_per_s;
                let launches = (hpsi * 2.0).max(1.0);
                let width = nplwv * bands * cm.width_pipeline * 3.0;
                ops.push(Op::Gpu(Kernel::with_duty(
                    KernelKind::TensorGemm,
                    width,
                    0.85 * t_x,
                    cm.duty(0.85 * t_x / launches),
                )));
                ops.push(Op::Gpu(Kernel::with_duty(
                    KernelKind::Fft3d,
                    width,
                    0.15 * t_x,
                    cm.duty(0.15 * t_x / launches),
                )));
            }

            // Per-block subspace projection/rotation GEMM slice.
            if t_gemm_block > 0.0 {
                ops.push(Op::Gpu(Kernel::with_duty(
                    KernelKind::TensorGemm,
                    dist.bands_per_rank as f64 * npw * cm.width_pipeline,
                    t_gemm_block,
                    cm.duty(t_gemm_block / 2.0),
                )));
            }
        }

        // Projected Hamiltonian slab reduction after the sweep.
        if t_gemm_total > 0.0 {
            ops.push(Op::Collective {
                bytes: p.nbands as f64 * dist.bands_per_rank as f64 * 16.0,
                kind: CollectiveKind::AllReduce,
            });
        }

        // Dense subspace eigensolve (partially distributed over the group).
        let e = p.algo.eigensolves_per_iter() * subspace;
        if e > 0.0 {
            let t_eig = e * eig_flops_n(p.nbands)
                / (cm.eig_flops * (dist.ranks_per_group as f64).powf(0.7));
            ops.push(Op::Gpu(Kernel::with_duty(
                KernelKind::Eigensolver,
                (p.nbands as f64).powi(2) * 2.0,
                t_eig,
                cm.duty(t_eig / 4.0),
            )));
            // Rotation matrix slab broadcast.
            ops.push(Op::Collective {
                bytes: p.nbands as f64 * dist.bands_per_rank as f64 * 16.0,
                kind: CollectiveKind::Broadcast,
            });
        }

        // Per-k orthonormalisation reduction (latency-bound at scale).
        ops.push(Op::Collective {
            bytes: p.nbands as f64 * 16.0,
            kind: CollectiveKind::AllReduce,
        });
    }

    // Van der Waals nonlocal correlation: an extra double-grid pass.
    if matches!(p.xc, crate::incar::Xc::VdwDf) {
        let t_vdw = 2000.0 * nplwv / cm.mem_flops;
        ops.push(Op::Gpu(Kernel::with_duty(
            KernelKind::MemBound,
            nplwv * 4.0,
            t_vdw,
            cm.duty(t_vdw / 8.0),
        )));
    }

    // Density mixing: grid FFTs + charge reduction (skipped while the
    // density is frozen during the NELMDL delay).
    if !delay {
        let t_mix = 4.0 * fft_pair_flops(p.nplwv) / cm.fft_flops;
        ops.push(Op::Gpu(Kernel::with_duty(
            KernelKind::Fft3d,
            nplwv * cm.width_pipeline,
            t_mix,
            cm.duty(t_mix / 8.0),
        )));
        ops.push(Op::Collective {
            bytes: nplwv * 16.0,
            kind: CollectiveKind::AllReduce,
        });
    }

    // Per-iteration host stage (mixer setup, convergence checks).
    ops.push(Op::Host {
        duration_s: cm.host_per_iter_s,
        cpu_active: HOST_CPU_LIGHT,
        mem_active: HOST_MEM_LIGHT,
    });
}

/// ACFDT/RPA epilogue: the CPU-side exact diagonalisation VASP 6.4.1 had
/// not yet ported to GPUs (the flat mid-timeline of Fig. 3) followed by the
/// χ₀ frequency-quadrature contractions on the GPUs. Returns the op index
/// where the χ₀ stage begins (the diag/chi0 phase boundary).
fn emit_rpa_epilogue(
    p: &SystemParams,
    layout: &ParallelLayout,
    _dist: &Distribution,
    cm: &CostModel,
    ops: &mut Vec<Op>,
) -> usize {
    let nbe = p
        .nbandsexact
        .expect("RPA params always carry NBANDSEXACT");
    assert!(nbe > p.nbands_occ, "exact bands must cover the occupied set");

    // Exact diagonalisation: ScaLAPACK across node CPUs, GPUs idle.
    let t_diag =
        eig_flops_n(nbe) / (cm.cpu_flops_per_node * (layout.nodes as f64).powf(0.85));
    ops.push(Op::Host {
        duration_s: t_diag,
        cpu_active: HOST_CPU_DIAG,
        mem_active: HOST_MEM_DIAG,
    });
    let chi0_start = ops.len();

    // χ₀(iω) contractions: occupied × virtual × plane-wave GEMMs, the most
    // intense kernels in the suite.
    let ranks = layout.ranks() as f64;
    let nocc = p.nbands_occ as f64;
    let nvirt = (nbe - p.nbands_occ) as f64;
    for _f in 0..cm.rpa_freq_points {
        let flops = nocc * nvirt * (p.npw as f64).powi(2) * cm.rpa_chi0_flops / ranks;
        let t = flops / cm.gemm_flops;
        ops.push(Op::Gpu(Kernel::with_duty(
            KernelKind::TensorGemm,
            nocc * p.npw as f64 * 8.0,
            t,
            cm.duty(t / 16.0),
        )));
        ops.push(Op::Collective {
            bytes: p.npw as f64 * 16.0,
            kind: CollectiveKind::AllReduce,
        });
    }
    chi0_start
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Supercell;
    use crate::incar::{Algo, Incar, Xc};
    use crate::params::SystemParams;

    fn si256(deck_mut: impl FnOnce(&mut Incar)) -> SystemParams {
        let mut deck = Incar::default_deck();
        deck_mut(&mut deck);
        SystemParams::derive(&Supercell::silicon(256), &deck)
    }

    #[test]
    fn layout_ranks() {
        assert_eq!(ParallelLayout::nodes(4).ranks(), 16);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let _ = ParallelLayout::nodes(0);
    }

    #[test]
    fn distribution_splits_bands_evenly() {
        let p = si256(|_| {});
        let d = Distribution::derive(&p, &ParallelLayout::nodes(1));
        assert_eq!(d.kpar, 1);
        assert_eq!(d.ranks_per_group, 4);
        assert_eq!(d.bands_per_rank, p.nbands / 4);
        assert_eq!(d.blocks, d.bands_per_rank.div_ceil(4));
    }

    #[test]
    fn distribution_caps_kpar_by_ranks() {
        let mut deck = Incar::default_deck();
        deck.kpoints = [4, 4, 4];
        deck.kpar = 8;
        let p = SystemParams::derive(&Supercell::silicon(64), &deck);
        let d = Distribution::derive(&p, &ParallelLayout::nodes(1));
        assert_eq!(d.kpar, 4, "kpar limited by 4 ranks");
        assert_eq!(d.nk_local, 16);
    }

    #[test]
    fn more_bands_means_more_runtime_same_kernel_width() {
        // §IV-B: NBANDS scales runtime/energy but not power (width).
        let base = si256(|_| {});
        let wide = si256(|d| d.nbands = Some(1280));
        let l = ParallelLayout::nodes(1);
        let cm = CostModel::calibrated();
        let plan_base = build_plan(&base, &l, &cm);
        let plan_wide = build_plan(&wide, &l, &cm);
        assert!(plan_wide.gpu_time_s() > 1.5 * plan_base.gpu_time_s());
        // Kernel widths of the band-sweep FFTs are unchanged.
        let max_fft_width = |plan: &ScfPlan| {
            plan.ops
                .iter()
                .filter_map(|op| match op {
                    Op::Gpu(k) if k.kind == KernelKind::Fft3d => Some(k.width),
                    _ => None,
                })
                .fold(0.0, f64::max)
        };
        assert_eq!(max_fft_width(&plan_base), max_fft_width(&plan_wide));
    }

    #[test]
    fn more_planewaves_means_wider_kernels() {
        // §IV-B: ENCUT (→ NPLWV) scales kernel width → power.
        let lo = si256(|d| d.encut_ev = Some(245.0));
        let hi = si256(|d| d.encut_ev = Some(500.0));
        let l = ParallelLayout::nodes(1);
        let cm = CostModel::calibrated();
        let w = |p: &SystemParams| {
            build_plan(p, &l, &cm)
                .ops
                .iter()
                .filter_map(|op| match op {
                    Op::Gpu(k) if k.kind == KernelKind::Fft3d => Some(k.width),
                    _ => None,
                })
                .fold(0.0, f64::max)
        };
        assert!(w(&hi) > w(&lo));
    }

    #[test]
    fn hse_adds_exchange_kernels() {
        let dft = si256(|_| {});
        let hse = si256(|d| {
            d.xc = Xc::Hse;
            d.algo = Algo::Damped;
        });
        let l = ParallelLayout::nodes(1);
        let cm = CostModel::calibrated();
        let gemm_time = |p: &SystemParams| {
            build_plan(p, &l, &cm)
                .ops
                .iter()
                .filter_map(|op| match op {
                    Op::Gpu(k) if k.kind == KernelKind::TensorGemm => Some(k.duration_s),
                    _ => None,
                })
                .sum::<f64>()
        };
        assert!(
            gemm_time(&hse) > 10.0 * gemm_time(&dft),
            "exchange dominates HSE GPU time"
        );
    }

    #[test]
    fn rpa_has_cpu_diag_stage() {
        let p = si256(|d| {
            d.xc = Xc::Rpa;
            d.nelm = 10;
        });
        let plan = build_plan(&p, &ParallelLayout::nodes(1), &CostModel::calibrated());
        let diag: Vec<_> = plan
            .ops
            .iter()
            .filter_map(|op| match op {
                Op::Host {
                    duration_s,
                    cpu_active,
                    ..
                } if *cpu_active > 0.5 => Some(*duration_s),
                _ => None,
            })
            .collect();
        assert_eq!(diag.len(), 1, "exactly one exact-diagonalisation stage");
        assert!(
            diag[0] > 10.0,
            "diag stage is long enough to show up in timelines: {}s",
            diag[0]
        );
    }

    #[test]
    fn rpa_diag_shrinks_with_nodes() {
        let p = si256(|d| {
            d.xc = Xc::Rpa;
            d.nelm = 5;
        });
        let cm = CostModel::calibrated();
        let diag_time = |n: usize| {
            build_plan(&p, &ParallelLayout::nodes(n), &cm)
                .ops
                .iter()
                .filter_map(|op| match op {
                    Op::Host {
                        duration_s,
                        cpu_active,
                        ..
                    } if *cpu_active > 0.5 => Some(*duration_s),
                    _ => None,
                })
                .sum::<f64>()
        };
        assert!(diag_time(4) < diag_time(1));
    }

    #[test]
    fn kpoint_meshes_multiply_host_stages() {
        let mut deck = Incar::default_deck();
        deck.kpoints = [4, 4, 4];
        deck.kpar = 2;
        let p = SystemParams::derive(&Supercell::silicon(64), &deck);
        let plan = build_plan(&p, &ParallelLayout::nodes(1), &CostModel::calibrated());
        let gamma = SystemParams::derive(&Supercell::silicon(64), &Incar::default_deck());
        let plan_gamma =
            build_plan(&gamma, &ParallelLayout::nodes(1), &CostModel::calibrated());
        assert!(plan.host_time_s() > 5.0 * plan_gamma.host_time_s());
    }

    #[test]
    fn scaling_out_shrinks_per_rank_gpu_time() {
        let p = si256(|_| {});
        let cm = CostModel::calibrated();
        let t1 = build_plan(&p, &ParallelLayout::nodes(1), &cm).gpu_time_s();
        let t4 = build_plan(&p, &ParallelLayout::nodes(4), &cm).gpu_time_s();
        assert!(t4 < t1, "per-rank GPU work must shrink with more nodes");
        assert!(t4 > t1 / 8.0, "but not super-linearly");
    }

    #[test]
    fn phases_tile_the_op_stream() {
        let p = si256(|d| {
            d.xc = Xc::Rpa;
            d.nelm = 6;
        });
        let plan = build_plan(&p, &ParallelLayout::nodes(1), &CostModel::calibrated());
        assert_eq!(plan.phases.first().unwrap().start, 0);
        assert_eq!(plan.phases.last().unwrap().end, plan.ops.len());
        for w in plan.phases.windows(2) {
            assert_eq!(w[0].end, w[1].start, "phases must tile without gaps");
        }
        let count = |kind| plan.phases.iter().filter(|ph| ph.kind == kind).count();
        assert_eq!(count(PhaseKind::ScfIter), 6);
        assert_eq!(count(PhaseKind::RpaDiag), 1);
        assert_eq!(count(PhaseKind::RpaChi0), 1);
        // phase_of maps every op back to exactly the tile that owns it.
        for (i, _) in plan.ops.iter().enumerate() {
            let ph = plan.phase_of(i).expect("every op belongs to a phase");
            assert!(ph.start <= i && i < ph.end);
        }
    }

    #[test]
    fn plans_are_deterministic() {
        let p = si256(|_| {});
        let cm = CostModel::calibrated();
        let a = build_plan(&p, &ParallelLayout::nodes(2), &cm);
        let b = build_plan(&p, &ParallelLayout::nodes(2), &cm);
        assert_eq!(a, b);
    }

    #[test]
    fn nelmdl_delay_iterations_skip_density_mixing() {
        let with_delay = si256(|d| {
            d.nelm = 10;
            d.nelmdl = 5;
        });
        let without = si256(|d| d.nelm = 10);
        let l = ParallelLayout::nodes(1);
        let cm = CostModel::calibrated();
        let collectives = |p: &SystemParams| build_plan(p, &l, &cm).collective_count();
        assert_eq!(
            collectives(&without) - collectives(&with_delay),
            5,
            "one mixing reduction skipped per delay iteration"
        );
        assert!(
            build_plan(&with_delay, &l, &cm).gpu_time_s()
                < build_plan(&without, &l, &cm).gpu_time_s()
        );
    }

    #[test]
    fn binary_builds_scale_work_as_documented() {
        use crate::incar::Binary;
        let l = ParallelLayout::nodes(1);
        let cm = CostModel::calibrated();
        let time = |binary: Binary| {
            let mut deck = Incar::default_deck();
            deck.nelm = 4;
            deck.binary = binary;
            let p = SystemParams::derive(&Supercell::silicon(128), &deck);
            build_plan(&p, &l, &cm).gpu_time_s()
        };
        let gam = time(Binary::Gamma);
        let std = time(Binary::Standard);
        let ncl = time(Binary::NonCollinear);
        assert!(gam < 0.75 * std, "vasp_gam must be cheaper: {gam} vs {std}");
        assert!(ncl > 1.6 * std, "vasp_ncl must be dearer: {ncl} vs {std}");
    }

    #[test]
    fn vdw_adds_membound_work() {
        let plain = si256(|d| d.algo = Algo::VeryFast);
        let vdw = si256(|d| {
            d.algo = Algo::VeryFast;
            d.xc = Xc::VdwDf;
        });
        let l = ParallelLayout::nodes(1);
        let cm = CostModel::calibrated();
        let mem_time = |p: &SystemParams| {
            build_plan(p, &l, &cm)
                .ops
                .iter()
                .filter_map(|op| match op {
                    Op::Gpu(k) if k.kind == KernelKind::MemBound => Some(k.duration_s),
                    _ => None,
                })
                .sum::<f64>()
        };
        assert!(mem_time(&vdw) > mem_time(&plain));
    }
}
