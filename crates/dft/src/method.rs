//! The seven computation methods compared in §IV-D (Fig. 9).

use crate::incar::{Algo, Incar, Xc};

/// Types of computation (method) selectable within the single VASP binary.
/// Fig. 9 compares these seven on Si128/Si256 supercells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Basic DFT, blocked-Davidson (`ALGO = Normal`).
    DftNormal,
    /// Basic DFT, Davidson + RMM-DIIS (`ALGO = Fast`).
    DftFast,
    /// Basic DFT, RMM-DIIS (`ALGO = VeryFast`).
    DftVeryFast,
    /// Basic DFT, damped orbital dynamics (`ALGO = Damped`).
    DftDamped,
    /// DFT with van der Waals density functional corrections.
    Vdw,
    /// Hybrid HSE06 (higher-order).
    Hse,
    /// ACFDT/RPA total energy (higher-order).
    Acfdtr,
}

impl Method {
    /// All seven, in Fig. 9 display order.
    #[must_use]
    pub fn all() -> [Method; 7] {
        [
            Method::DftNormal,
            Method::DftFast,
            Method::DftVeryFast,
            Method::DftDamped,
            Method::Vdw,
            Method::Hse,
            Method::Acfdtr,
        ]
    }

    /// Display label used in figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Method::DftNormal => "dft_normal",
            Method::DftFast => "dft_fast",
            Method::DftVeryFast => "dft_veryfast",
            Method::DftDamped => "dft_damped",
            Method::Vdw => "vdw",
            Method::Hse => "hse",
            Method::Acfdtr => "acfdtr",
        }
    }

    /// True for the computationally heavier-than-DFT methods.
    #[must_use]
    pub fn is_higher_order(self) -> bool {
        matches!(self, Method::Hse | Method::Acfdtr)
    }

    /// The INCAR deck implementing this method (Γ-point, default NELM).
    #[must_use]
    pub fn deck(self) -> Incar {
        let mut d = Incar::default_deck();
        match self {
            Method::DftNormal => {
                d.algo = Algo::Normal;
                d.xc = Xc::Gga;
            }
            Method::DftFast => {
                d.algo = Algo::Fast;
                d.xc = Xc::Gga;
            }
            Method::DftVeryFast => {
                d.algo = Algo::VeryFast;
                d.xc = Xc::Lda;
            }
            Method::DftDamped => {
                d.algo = Algo::Damped;
                d.xc = Xc::Gga;
            }
            Method::Vdw => {
                d.algo = Algo::VeryFast;
                d.xc = Xc::VdwDf;
            }
            Method::Hse => {
                d.algo = Algo::Damped;
                d.xc = Xc::Hse;
                d.nelm = 30;
            }
            Method::Acfdtr => {
                d.algo = Algo::Normal;
                d.xc = Xc::Rpa;
                d.nelm = 12;
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_methods() {
        assert_eq!(Method::all().len(), 7);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            Method::all().iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), 7);
    }

    #[test]
    fn higher_order_split_matches_paper() {
        let higher: Vec<_> = Method::all()
            .into_iter()
            .filter(|m| m.is_higher_order())
            .collect();
        assert_eq!(higher, vec![Method::Hse, Method::Acfdtr]);
    }

    #[test]
    fn decks_validate() {
        for m in Method::all() {
            assert_eq!(m.deck().validate(), Ok(()), "{m:?}");
        }
    }

    #[test]
    fn hse_uses_damped_cg_like_table1() {
        // Table I: both HSE benchmarks run ALGO = Damped.
        assert_eq!(Method::Hse.deck().algo, Algo::Damped);
        assert_eq!(Method::Hse.deck().xc, Xc::Hse);
    }
}
