//! Cost-model calibration constants.
//!
//! Effective throughputs (not peaks — these fold in strided access, small
//! batch sizes, and library overheads) plus host-side overheads. They are
//! chosen so that simulated runtimes land in the minutes range the NERSC
//! benchmarks report and, more importantly, so that the *mix* of kernel
//! kinds per method reproduces the paper's per-workload power ordering
//! (Fig. 5). `EXPERIMENTS.md` documents the calibration.

/// Throughputs and overheads of the execution substrate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Effective fp64 tensor-core GEMM throughput per GPU, flop/s.
    pub gemm_flops: f64,
    /// Effective batched strided 3-D z2z FFT throughput per GPU, flop/s.
    pub fft_flops: f64,
    /// Effective throughput of bandwidth-bound kernels, flop/s.
    pub mem_flops: f64,
    /// Effective dense eigensolver throughput per GPU, flop/s.
    pub eig_flops: f64,
    /// Effective CPU throughput per node (all cores), flop/s.
    pub cpu_flops_per_node: f64,
    /// Exact-exchange effective throughput, grid-points/s (folds the
    /// reduced FOCK grid and pair screening into one constant).
    pub exchange_pts_per_s: f64,
    /// Kernel launch + host synchronisation overhead per launch, seconds.
    pub launch_overhead_s: f64,
    /// Host work per k-point per iteration (rotations, symmetrisation,
    /// bookkeeping), seconds. This is what dilutes GPU power for k-point
    /// heavy workloads like GaAsBi-64.
    pub host_per_kpoint_s: f64,
    /// Host work per SCF iteration (mixing setup, I/O-free bookkeeping).
    pub host_per_iter_s: f64,
    /// Grid passes per H·ψ application (FFT forward/back + local potential
    /// + gradient passes), multiplying the FFT cost.
    pub fft_passes: f64,
    /// Concurrency factor applied to kernel widths (pipelining across the
    /// NSIM block and async queues).
    pub width_pipeline: f64,
    /// Frequency-quadrature points in the ACFDT/RPA χ₀ stage.
    pub rpa_freq_points: usize,
    /// Effective flops per (occ, virt, G, G') element of the χ₀ build
    /// (complex MAC with symmetry folding).
    pub rpa_chi0_flops: f64,
}

impl CostModel {
    /// The calibration used throughout the reproduction.
    #[must_use]
    pub fn calibrated() -> Self {
        Self {
            gemm_flops: 15.0e12,
            fft_flops: 0.10e12,
            mem_flops: 2.0e12,
            eig_flops: 1.5e12,
            cpu_flops_per_node: 1.2e12,
            exchange_pts_per_s: 1.5e9,
            launch_overhead_s: 30.0e-6,
            host_per_kpoint_s: 0.40,
            host_per_iter_s: 0.06,
            fft_passes: 3.0,
            width_pipeline: 2.0,
            rpa_freq_points: 8,
            rpa_chi0_flops: 1.3,
        }
    }

    /// Duty cycle of a kernel block whose busy time per launch is
    /// `busy_per_launch_s`: `busy / (busy + overhead)`.
    #[must_use]
    pub fn duty(&self, busy_per_launch_s: f64) -> f64 {
        debug_assert!(busy_per_launch_s >= 0.0);
        if busy_per_launch_s <= 0.0 {
            return 0.0;
        }
        busy_per_launch_s / (busy_per_launch_s + self.launch_overhead_s)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// Flops of one 3-D complex-to-complex FFT over `n` grid points
/// (`5 n log2 n`), doubled for the forward/backward pair.
#[must_use]
pub fn fft_pair_flops(n: usize) -> f64 {
    let n = n.max(2) as f64;
    2.0 * 5.0 * n * n.log2()
}

/// Flops of a dense Hermitian eigensolve of dimension `n` (`≈ 9 n³`).
#[must_use]
pub fn eig_flops_n(n: usize) -> f64 {
    9.0 * (n as f64).powi(3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duty_limits() {
        let cm = CostModel::calibrated();
        assert_eq!(cm.duty(0.0), 0.0);
        assert!(cm.duty(1.0) > 0.999, "long launches are fully busy");
        // At exactly the overhead scale, duty is one half.
        let d = cm.duty(cm.launch_overhead_s);
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duty_is_monotone() {
        let cm = CostModel::calibrated();
        let mut last = -1.0;
        for t in [1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2] {
            let d = cm.duty(t);
            assert!(d > last);
            assert!((0.0..=1.0).contains(&d));
            last = d;
        }
    }

    #[test]
    fn fft_flops_scale_superlinearly() {
        assert!(fft_pair_flops(1 << 20) > 2.0 * fft_pair_flops(1 << 19));
    }

    #[test]
    fn eig_flops_cubic() {
        let r = eig_flops_n(200) / eig_flops_n(100);
        assert!((r - 8.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_ordering_is_physical() {
        let cm = CostModel::calibrated();
        assert!(cm.gemm_flops > cm.mem_flops);
        assert!(cm.mem_flops > cm.fft_flops);
        assert!(cm.cpu_flops_per_node < cm.fft_flops * 16.0);
    }
}
