//! The input deck: the INCAR-level controls the paper varies.

/// Electronic minimisation algorithm (the `ALGO` tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// Blocked-Davidson (`ALGO = Normal`).
    Normal,
    /// Davidson for the first iterations, then RMM-DIIS (`ALGO = Fast`).
    Fast,
    /// RMM-DIIS only (`ALGO = VeryFast`).
    VeryFast,
    /// Damped velocity-friction MD on orbitals (`ALGO = Damped`) — the
    /// paper's HSE runs use this (Table I).
    Damped,
    /// Conjugate-gradient over all bands (`ALGO = All`).
    All,
}

impl Algo {
    /// Average H·ψ applications per band per SCF iteration — the main
    /// per-iteration cost knob distinguishing the schemes.
    #[must_use]
    pub fn hpsi_per_band(self) -> f64 {
        match self {
            Algo::Normal => 3.6,
            Algo::Fast => 2.8,
            Algo::VeryFast => 2.0,
            Algo::Damped => 2.2,
            Algo::All => 3.0,
        }
    }

    /// Amortised full `NBANDS²·NPW` subspace GEMMs per iteration. RMM-DIIS
    /// optimises bands independently and only re-orthonormalises rarely,
    /// which is why `VeryFast` workloads (PdO2/PdO4) are FFT- rather than
    /// GEMM-dominated and run at much lower power (Fig. 5).
    #[must_use]
    pub fn subspace_gemms_per_iter(self) -> f64 {
        match self {
            Algo::Normal => 1.0,
            Algo::Fast => 0.7,
            Algo::VeryFast => 0.3,
            Algo::Damped => 0.8,
            Algo::All => 1.2,
        }
    }

    /// Dense subspace eigensolves per iteration.
    #[must_use]
    pub fn eigensolves_per_iter(self) -> f64 {
        match self {
            Algo::Normal => 1.0,
            Algo::Fast => 0.7,
            Algo::VeryFast => 0.1,
            Algo::Damped => 0.7,
            Algo::All => 1.0,
        }
    }
}

/// Exchange-correlation treatment (functional family + post-processing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Xc {
    /// Local density approximation (CA).
    Lda,
    /// Generalised gradient approximation (PBE).
    Gga,
    /// Hybrid HSE06: adds screened exact exchange to every H·ψ.
    Hse,
    /// Van der Waals density functional (adds a nonlocal correlation grid
    /// pass per iteration).
    VdwDf,
    /// ACFDT/RPA total energies (adds exact diagonalisation + χ₀ stages
    /// after the SCF).
    Rpa,
}

impl Xc {
    /// True for the computationally heavier-than-DFT methods (paper §IV-D).
    #[must_use]
    pub fn is_higher_order(self) -> bool {
        matches!(self, Xc::Hse | Xc::Rpa)
    }
}

/// Which VASP binary runs the deck (§II-C): `vasp_gam` exploits Γ-only
/// symmetry with real-valued wavefunctions, `vasp_std` handles general
/// k-points, `vasp_ncl` treats non-collinear spin with spinor
/// wavefunctions (roughly 2× the basis and 4× the subspace work).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Binary {
    /// Γ-point-only build (`vasp_gam`).
    Gamma,
    /// Standard k-point build (`vasp_std`) — what the paper benchmarks.
    #[default]
    Standard,
    /// Non-collinear build (`vasp_ncl`).
    NonCollinear,
}

impl Binary {
    /// Multiplier on per-band H·ψ (grid + projector) work.
    #[must_use]
    pub fn hpsi_factor(self) -> f64 {
        match self {
            Binary::Gamma => 0.55,
            Binary::Standard => 1.0,
            Binary::NonCollinear => 2.0,
        }
    }

    /// Multiplier on subspace GEMM/eigensolver work.
    #[must_use]
    pub fn subspace_factor(self) -> f64 {
        match self {
            Binary::Gamma => 0.5,
            Binary::Standard => 1.0,
            Binary::NonCollinear => 4.0,
        }
    }

    /// Executable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Binary::Gamma => "vasp_gam",
            Binary::Standard => "vasp_std",
            Binary::NonCollinear => "vasp_ncl",
        }
    }
}

/// The subset of INCAR controls the power study exercises.
#[derive(Debug, Clone, PartialEq)]
pub struct Incar {
    pub binary: Binary,
    pub algo: Algo,
    pub xc: Xc,
    /// Plane-wave cutoff override, eV (`ENCUT`); `None` = potential default.
    pub encut_ev: Option<f64>,
    /// Band count override (`NBANDS`); `None` = VASP default formula.
    pub nbands: Option<usize>,
    /// Max SCF iterations (`NELM`).
    pub nelm: usize,
    /// Initial non-self-consistent ("delay") iterations (`NELMDL`).
    pub nelmdl: usize,
    /// Monkhorst-Pack k-mesh (`KPOINTS`).
    pub kpoints: [usize; 3],
    /// k-point parallelisation groups (`KPAR`).
    pub kpar: usize,
    /// Bands blocked together per kernel batch (`NSIM`).
    pub nsim: usize,
    /// Bands treated exactly in ACFDT/RPA (`NBANDSEXACT`); ignored for
    /// other functionals. `None` = derived from the basis size.
    pub nbandsexact: Option<usize>,
}

impl Incar {
    /// VASP-like defaults: `ALGO = Normal`, GGA, Γ-point, `NELM = 60`,
    /// `NSIM = 4`.
    #[must_use]
    pub fn default_deck() -> Self {
        Self {
            binary: Binary::Standard,
            algo: Algo::Normal,
            xc: Xc::Gga,
            encut_ev: None,
            nbands: None,
            nelm: 60,
            nelmdl: 0,
            kpoints: [1, 1, 1],
            kpar: 1,
            nsim: 4,
            nbandsexact: None,
        }
    }

    /// Validate the deck, returning a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.nelm == 0 {
            return Err("NELM must be at least 1".into());
        }
        if self.nelmdl > self.nelm {
            return Err("NELMDL cannot exceed NELM".into());
        }
        if self.kpoints.contains(&0) {
            return Err("KPOINTS entries must be positive".into());
        }
        if self.kpar == 0 {
            return Err("KPAR must be positive".into());
        }
        let nk: usize = self.kpoints.iter().product();
        if self.kpar > nk {
            return Err(format!("KPAR = {} exceeds {} k-points", self.kpar, nk));
        }
        if self.nsim == 0 {
            return Err("NSIM must be positive".into());
        }
        if let Some(e) = self.encut_ev {
            if !(50.0..=2000.0).contains(&e) {
                return Err(format!("ENCUT = {e} eV outside sane range"));
            }
        }
        if self.nbands == Some(0) {
            return Err("NBANDS must be positive".into());
        }
        if self.binary == Binary::Gamma && self.n_kpoints() != 1 {
            return Err("vasp_gam supports only the Γ point".into());
        }
        Ok(())
    }

    /// Total k-points in the mesh.
    #[must_use]
    pub fn n_kpoints(&self) -> usize {
        self.kpoints.iter().product()
    }
}

impl Default for Incar {
    fn default() -> Self {
        Self::default_deck()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_deck_is_valid() {
        assert_eq!(Incar::default_deck().validate(), Ok(()));
    }

    #[test]
    fn algo_costs_are_ordered() {
        // Davidson does the most H·ψ work per iteration, RMM-DIIS the least.
        assert!(Algo::Normal.hpsi_per_band() > Algo::Fast.hpsi_per_band());
        assert!(Algo::Fast.hpsi_per_band() > Algo::VeryFast.hpsi_per_band());
    }

    #[test]
    fn higher_order_classification() {
        assert!(Xc::Hse.is_higher_order());
        assert!(Xc::Rpa.is_higher_order());
        assert!(!Xc::Lda.is_higher_order());
        assert!(!Xc::VdwDf.is_higher_order());
    }

    #[test]
    fn validation_catches_bad_decks() {
        let mut d = Incar::default_deck();
        d.nelm = 0;
        assert!(d.validate().is_err());

        let mut d = Incar::default_deck();
        d.nelmdl = 100;
        assert!(d.validate().is_err());

        let mut d = Incar::default_deck();
        d.kpoints = [0, 1, 1];
        assert!(d.validate().is_err());

        let mut d = Incar::default_deck();
        d.kpar = 2; // only 1 k-point in the default mesh
        assert!(d.validate().is_err());

        let mut d = Incar::default_deck();
        d.encut_ev = Some(10.0);
        assert!(d.validate().is_err());

        let mut d = Incar::default_deck();
        d.nbands = Some(0);
        assert!(d.validate().is_err());
    }

    #[test]
    fn gamma_binary_rejects_k_meshes() {
        let mut d = Incar::default_deck();
        d.binary = Binary::Gamma;
        assert_eq!(d.validate(), Ok(()));
        d.kpoints = [2, 2, 2];
        assert!(d.validate().unwrap_err().contains("vasp_gam"));
    }

    #[test]
    fn binary_factors_are_ordered() {
        assert!(Binary::Gamma.hpsi_factor() < Binary::Standard.hpsi_factor());
        assert!(Binary::Standard.hpsi_factor() < Binary::NonCollinear.hpsi_factor());
        assert!(Binary::NonCollinear.subspace_factor() > 2.0);
        assert_eq!(Binary::Standard.name(), "vasp_std");
    }

    #[test]
    fn kpar_within_mesh_is_valid() {
        let mut d = Incar::default_deck();
        d.kpoints = [4, 4, 4];
        d.kpar = 2;
        assert_eq!(d.validate(), Ok(()));
        assert_eq!(d.n_kpoints(), 64);
    }
}
