//! DGEMM / STREAM / idle prologue phases.
//!
//! The paper's protocol (§III-B.1) runs DGEMM and STREAM before VASP in the
//! same job script "to exclude the runs manifesting relatively larger
//! manufactural differences in hardware devices", then leaves the node idle
//! briefly. Fig. 1 shows this prologue in each node's power timeline. These
//! generators produce the corresponding component traces for one node.

use crate::cpu::CpuModel;
use crate::memory::MemoryModel;
use crate::node::{ComponentTraces, NodeInstance};
use vpp_gpu::{Kernel, KernelKind};
use vpp_sim::PowerTrace;

/// Which prologue phase to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProloguePhase {
    /// GPU + host DGEMM: saturated tensor GEMMs, CPU busy.
    Dgemm,
    /// STREAM: bandwidth-bound on GPU and host.
    Stream,
    /// Idle gap between the screen and the application run.
    Idle,
}

impl ProloguePhase {
    fn gpu_kernel(self, duration_s: f64) -> Kernel {
        match self {
            // Width far above capacity: fully saturated.
            ProloguePhase::Dgemm => Kernel::new(KernelKind::TensorGemm, 2.5e7, duration_s),
            ProloguePhase::Stream => Kernel::new(KernelKind::MemBound, 2.5e7, duration_s),
            ProloguePhase::Idle => Kernel::idle(duration_s),
        }
    }

    fn cpu_active(self) -> f64 {
        match self {
            ProloguePhase::Dgemm => CpuModel::DGEMM,
            ProloguePhase::Stream => CpuModel::STREAM,
            ProloguePhase::Idle => 0.0,
        }
    }

    fn mem_active(self) -> f64 {
        match self {
            ProloguePhase::Dgemm => MemoryModel::DGEMM,
            ProloguePhase::Stream => MemoryModel::STREAM,
            ProloguePhase::Idle => 0.0,
        }
    }
}

/// Generate one prologue phase of `duration_s` seconds on `node`, starting
/// at absolute time `t0`.
#[must_use]
pub fn run_phase(
    node: &NodeInstance,
    phase: ProloguePhase,
    t0: f64,
    duration_s: f64,
) -> ComponentTraces {
    assert!(duration_s >= 0.0);
    let cpu = PowerTrace::from_segments(t0, [(duration_s, node.cpu.power(phase.cpu_active()))]);
    let mem = PowerTrace::from_segments(t0, [(duration_s, node.mem.power(phase.mem_active()))]);
    let periph_w = if matches!(phase, ProloguePhase::Idle) {
        node.periph_idle_w
    } else {
        node.periph_active_w
    };
    let periph = PowerTrace::from_segments(t0, [(duration_s, periph_w)]);
    // Prologue phases are time-boxed (run for a fixed wall time), so the
    // board's speed variability changes achieved FLOP/s, not the duration.
    let gpus = node
        .gpus
        .iter()
        .map(|g| {
            let k = phase.gpu_kernel(duration_s);
            let p = g.uncapped_power(&k).min(g.effective_ceiling());
            PowerTrace::from_segments(t0, [(duration_s, p)])
        })
        .collect();
    ComponentTraces::assemble(cpu, mem, gpus, periph)
}

/// The full screening prologue: DGEMM, STREAM, then an idle gap, in the
/// order visible in Fig. 1. Returns the concatenated traces.
#[must_use]
pub fn full_prologue(
    node: &NodeInstance,
    t0: f64,
    dgemm_s: f64,
    stream_s: f64,
    idle_s: f64,
) -> ComponentTraces {
    let mut out = run_phase(node, ProloguePhase::Dgemm, t0, dgemm_s);
    let t1 = out.node.end();
    out.append(&run_phase(node, ProloguePhase::Stream, t1, stream_s));
    let t2 = out.node.end();
    out.append(&run_phase(node, ProloguePhase::Idle, t2, idle_s));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpp_sim::Rng;

    #[test]
    fn dgemm_pushes_gpus_near_tdp() {
        let node = NodeInstance::nominal();
        let c = run_phase(&node, ProloguePhase::Dgemm, 0.0, 10.0);
        for g in &c.gpus {
            assert!(g.max_power().unwrap() > 370.0);
        }
        // Node power under DGEMM approaches but does not exceed node TDP.
        let peak = c.node.max_power().unwrap();
        assert!(peak > 1900.0 && peak < 2350.0, "peak = {peak}");
    }

    #[test]
    fn stream_draws_less_than_dgemm() {
        let node = NodeInstance::nominal();
        let d = run_phase(&node, ProloguePhase::Dgemm, 0.0, 5.0);
        let s = run_phase(&node, ProloguePhase::Stream, 0.0, 5.0);
        assert!(s.node.max_power().unwrap() < d.node.max_power().unwrap());
        // ...but clearly more than idle.
        assert!(s.node.max_power().unwrap() > node.idle_w() + 200.0);
    }

    #[test]
    fn idle_phase_draws_idle_power() {
        let node = NodeInstance::nominal();
        let c = run_phase(&node, ProloguePhase::Idle, 0.0, 5.0);
        assert!((c.node.power_at(1.0) - node.idle_w()).abs() < 1e-9);
    }

    #[test]
    fn full_prologue_ordering_and_duration() {
        let node = NodeInstance::nominal();
        let c = full_prologue(&node, 0.0, 10.0, 8.0, 4.0);
        assert!((c.node.duration() - 22.0).abs() < 1e-9);
        // Power order over the three windows: dgemm > stream > idle.
        let p_dgemm = c.node.mean_power(0.0, 10.0);
        let p_stream = c.node.mean_power(10.0, 18.0);
        let p_idle = c.node.mean_power(18.0, 22.0);
        assert!(p_dgemm > p_stream && p_stream > p_idle);
    }

    #[test]
    fn identical_phases_differ_across_sampled_nodes() {
        // Fig. 1: identical DGEMM/STREAM on different nodes shows visible
        // power offsets (manufacturing variability).
        let a = NodeInstance::sample(&mut Rng::new(100));
        let b = NodeInstance::sample(&mut Rng::new(101));
        let pa = run_phase(&a, ProloguePhase::Dgemm, 0.0, 5.0)
            .node
            .mean_power(0.0, 5.0);
        let pb = run_phase(&b, ProloguePhase::Dgemm, 0.0, 5.0)
            .node
            .mean_power(0.0, 5.0);
        assert!((pa - pb).abs() > 1.0, "nodes should differ: {pa} vs {pb}");
    }
}
