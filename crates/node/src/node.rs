//! Node assembly: components → the power channels Cray PM reports.

use crate::cpu::CpuModel;
use crate::memory::MemoryModel;
use vpp_gpu::{A100Spec, Gpu, GpuVariability};
use vpp_sim::{PowerTrace, Rng};

/// Static node-level specification (paper §II-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    /// CPU TDP, watts.
    pub cpu_tdp_w: f64,
    /// Per-GPU TDP, watts.
    pub gpu_tdp_w: f64,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// Peripheral (DDR + NIC + misc) TDP, watts.
    pub periph_tdp_w: f64,
}

impl NodeSpec {
    /// The Perlmutter 40 GB GPU node.
    #[must_use]
    pub fn perlmutter() -> Self {
        Self {
            cpu_tdp_w: 280.0,
            gpu_tdp_w: 400.0,
            gpus_per_node: 4,
            periph_tdp_w: 470.0,
        }
    }

    /// Node TDP: 280 + 4×400 + 470 = 2350 W (paper §II-A).
    #[must_use]
    pub fn node_tdp_w(&self) -> f64 {
        self.cpu_tdp_w + self.gpus_per_node as f64 * self.gpu_tdp_w + self.periph_tdp_w
    }
}

impl Default for NodeSpec {
    fn default() -> Self {
        Self::perlmutter()
    }
}

/// One concrete node: per-component variability samples and its four GPUs.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeInstance {
    pub spec: NodeSpec,
    pub cpu: CpuModel,
    pub mem: MemoryModel,
    pub gpus: Vec<Gpu>,
    /// Baseline power of NICs, fans, VRM losses etc., watts.
    pub periph_idle_w: f64,
    /// Peripheral power while a job is resident (NIC links up, fans high).
    pub periph_active_w: f64,
}

impl NodeInstance {
    /// A nominal node (no variability), default spec.
    #[must_use]
    pub fn nominal() -> Self {
        let spec = NodeSpec::default();
        Self {
            spec,
            cpu: CpuModel::nominal(),
            mem: MemoryModel::nominal(),
            gpus: (0..spec.gpus_per_node).map(|_| Gpu::nominal()).collect(),
            periph_idle_w: 128.0,
            periph_active_w: 168.0,
        }
    }

    /// Draw a node from the fleet distribution. Distinct seeds model
    /// distinct physical nodes (§III-B.2, Fig. 1).
    #[must_use]
    pub fn sample(rng: &mut Rng) -> Self {
        let spec = NodeSpec::default();
        let gpu_spec = A100Spec::default();
        // A node-level quality factor shared by its boards and peripherals:
        // the same node that idles hot also runs DGEMM and VASP hot
        // (Fig. 1's consistent per-node offsets).
        let node_quality = rng.fork(0x7175_616c).normal_clamped(0.0, 0.8, -2.0, 2.0);
        let gpus = (0..spec.gpus_per_node)
            .map(|i| {
                let mut grng = rng.fork(0x6770_7500 + i as u64);
                Gpu::new(
                    gpu_spec,
                    vpp_gpu::calib::ThrottleCalib::default(),
                    GpuVariability::sample_with_quality(&mut grng, node_quality),
                )
            })
            .collect();
        Self {
            spec,
            cpu: CpuModel::sample(&mut rng.fork(0x63_7075)),
            mem: MemoryModel::sample(&mut rng.fork(0x6d_656d)),
            gpus,
            periph_idle_w: (128.0
                + 4.0 * node_quality
                + rng.normal_clamped(0.0, 5.0, -15.0, 15.0))
            .clamp(100.0, 160.0),
            periph_active_w: (168.0
                + 4.0 * node_quality
                + rng.normal_clamped(0.0, 5.0, -15.0, 15.0))
            .clamp(140.0, 200.0),
        }
    }

    /// Set the same power limit on all four GPUs (what `nvidia-smi -pl`
    /// without an index does). Returns the applied limit.
    pub fn set_gpu_power_limit(&mut self, watts: f64) -> f64 {
        let mut applied = watts;
        for g in &mut self.gpus {
            applied = g.set_power_limit(watts);
        }
        applied
    }

    /// Reset all GPU power limits to the default.
    pub fn reset_gpu_power_limits(&mut self) {
        for g in &mut self.gpus {
            g.reset_power_limit();
        }
    }

    /// Idle power of the whole node, watts.
    #[must_use]
    pub fn idle_w(&self) -> f64 {
        self.cpu.power(0.0)
            + self.mem.power(0.0)
            + self.gpus.iter().map(Gpu::idle_w).sum::<f64>()
            + self.periph_idle_w
    }
}

impl Default for NodeInstance {
    fn default() -> Self {
        Self::nominal()
    }
}

/// The per-node power channels the monitoring stack exposes (§II-B): total
/// node power, CPU, DDR, and each GPU. Node total includes peripherals the
/// other channels do not cover — the "gap" visible in Fig. 3.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentTraces {
    pub node: PowerTrace,
    pub cpu: PowerTrace,
    pub mem: PowerTrace,
    pub gpus: Vec<PowerTrace>,
}

impl ComponentTraces {
    /// Assemble the node-total channel from component traces plus the
    /// peripheral envelope (not individually metered).
    #[must_use]
    pub fn assemble(
        cpu: PowerTrace,
        mem: PowerTrace,
        gpus: Vec<PowerTrace>,
        periph: PowerTrace,
    ) -> Self {
        let mut parts: Vec<&PowerTrace> = vec![&cpu, &mem, &periph];
        parts.extend(gpus.iter());
        let node = PowerTrace::sum(&parts);
        Self {
            node,
            cpu,
            mem,
            gpus,
        }
    }

    /// Sum of the four GPU channels (Fig. 6 reports "per four GPUs").
    #[must_use]
    pub fn gpu_total(&self) -> PowerTrace {
        PowerTrace::sum(&self.gpus.iter().collect::<Vec<_>>())
    }

    /// Concatenate two channel sets in time (e.g. prologue ‖ VASP).
    ///
    /// # Panics
    /// If `later` starts before `self` ends or GPU counts differ.
    pub fn append(&mut self, later: &ComponentTraces) {
        assert_eq!(self.gpus.len(), later.gpus.len(), "GPU count mismatch");
        self.node.append(&later.node);
        self.cpu.append(&later.cpu);
        self.mem.append(&later.mem);
        for (a, b) in self.gpus.iter_mut().zip(later.gpus.iter()) {
            a.append(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_tdp_matches_paper() {
        assert_eq!(NodeSpec::perlmutter().node_tdp_w(), 2350.0);
    }

    #[test]
    fn nominal_idle_in_observed_range() {
        // Paper §III-B.2: idle node power observed between 410 and 510 W.
        let n = NodeInstance::nominal();
        let idle = n.idle_w();
        assert!((410.0..510.0).contains(&idle), "idle = {idle}");
    }

    #[test]
    fn sampled_idle_spread_matches_paper() {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for seed in 0..32 {
            let n = NodeInstance::sample(&mut Rng::new(seed));
            let idle = n.idle_w();
            min = min.min(idle);
            max = max.max(idle);
        }
        assert!(min > 395.0, "min idle = {min}");
        assert!(max < 525.0, "max idle = {max}");
        assert!(max - min > 25.0, "fleet should spread visibly: {}", max - min);
    }

    #[test]
    fn sample_is_deterministic() {
        let a = NodeInstance::sample(&mut Rng::new(5));
        let b = NodeInstance::sample(&mut Rng::new(5));
        assert_eq!(a, b);
    }

    #[test]
    fn four_gpus_per_node() {
        assert_eq!(NodeInstance::nominal().gpus.len(), 4);
    }

    #[test]
    fn power_limit_fans_out_to_all_gpus() {
        let mut n = NodeInstance::nominal();
        let applied = n.set_gpu_power_limit(250.0);
        assert_eq!(applied, 250.0);
        assert!(n.gpus.iter().all(|g| g.power_limit_w() == 250.0));
        n.reset_gpu_power_limits();
        assert!(n.gpus.iter().all(|g| g.power_limit_w() == 400.0));
    }

    #[test]
    fn assemble_sums_components() {
        let cpu = PowerTrace::from_segments(0.0, [(2.0, 100.0)]);
        let mem = PowerTrace::from_segments(0.0, [(2.0, 30.0)]);
        let gpus = vec![
            PowerTrace::from_segments(0.0, [(2.0, 200.0)]),
            PowerTrace::from_segments(0.0, [(2.0, 210.0)]),
        ];
        let periph = PowerTrace::from_segments(0.0, [(2.0, 130.0)]);
        let c = ComponentTraces::assemble(cpu, mem, gpus, periph);
        assert!((c.node.power_at(1.0) - 670.0).abs() < 1e-9);
        assert!((c.gpu_total().power_at(1.0) - 410.0).abs() < 1e-9);
    }

    #[test]
    fn node_channel_exceeds_metered_components() {
        // The "gap" of Fig. 3: node > cpu + mem + gpus because peripherals
        // are not individually metered.
        let cpu = PowerTrace::from_segments(0.0, [(1.0, 100.0)]);
        let mem = PowerTrace::from_segments(0.0, [(1.0, 30.0)]);
        let gpus = vec![PowerTrace::from_segments(0.0, [(1.0, 300.0)])];
        let periph = PowerTrace::from_segments(0.0, [(1.0, 150.0)]);
        let c = ComponentTraces::assemble(cpu, mem, gpus, periph);
        let metered = c.cpu.power_at(0.5) + c.mem.power_at(0.5) + c.gpus[0].power_at(0.5);
        assert!(c.node.power_at(0.5) > metered);
    }

    #[test]
    fn append_concatenates_all_channels() {
        let mk = |t0: f64, w: f64| {
            ComponentTraces::assemble(
                PowerTrace::from_segments(t0, [(1.0, w)]),
                PowerTrace::from_segments(t0, [(1.0, 10.0)]),
                vec![PowerTrace::from_segments(t0, [(1.0, 50.0)])],
                PowerTrace::from_segments(t0, [(1.0, 20.0)]),
            )
        };
        let mut a = mk(0.0, 100.0);
        let b = mk(1.0, 200.0);
        a.append(&b);
        assert!((a.node.duration() - 2.0).abs() < 1e-9);
        assert_eq!(a.cpu.power_at(1.5), 200.0);
    }
}
