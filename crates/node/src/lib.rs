//! Perlmutter GPU-node model.
//!
//! A 40 GB GPU node (paper §II-A): one AMD EPYC 7763 "Milan" CPU, 256 GB
//! DDR4, four NVIDIA A100 GPUs, four Slingshot NICs. Component TDPs: 280 W
//! CPU + 4 × 400 W GPU + 470 W peripherals (DDR + NICs) = 2350 W node TDP.
//!
//! This crate models the non-GPU components (CPU, DDR, NIC/peripheral
//! envelope), assembles per-component power traces into the node-level trace
//! that NERSC's Cray PM counters expose (node total = components + the NIC /
//! miscellaneous gap the paper notes under Fig. 3), and provides the
//! DGEMM / STREAM / idle prologue phases the measurement protocol runs
//! before VASP (§III-B.1).

pub mod cpu;
pub mod memory;
pub mod node;
pub mod prologue;

pub use cpu::CpuModel;
pub use memory::MemoryModel;
pub use node::{ComponentTraces, NodeInstance, NodeSpec};
