//! DDR4 memory subsystem power model.
//!
//! The Cray PM interface reports DDR power as its own channel (§II-B). DDR
//! power is a small, activity-dependent slice: ~20 W refresh floor rising
//! with host-side bandwidth. During GPU-resident phases the host touches
//! memory for MPI staging and launch bookkeeping; during STREAM it is the
//! dominant active component.

use vpp_sim::Rng;

/// DDR4 memory subsystem instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    /// Refresh/background power, watts.
    pub idle_w: f64,
    /// Power at full sustained bandwidth, watts.
    pub max_w: f64,
    /// Board-to-board scale.
    pub power_scale: f64,
}

impl MemoryModel {
    /// Nominal 256 GB DDR4 configuration.
    #[must_use]
    pub fn nominal() -> Self {
        Self {
            idle_w: 20.0,
            max_w: 85.0,
            power_scale: 1.0,
        }
    }

    /// Draw an instance with fleet variability.
    #[must_use]
    pub fn sample(rng: &mut Rng) -> Self {
        Self {
            power_scale: rng.normal_clamped(1.0, 0.03, 0.92, 1.08),
            ..Self::nominal()
        }
    }

    /// Power at the given bandwidth fraction.
    #[must_use]
    pub fn power(&self, bandwidth: f64) -> f64 {
        let b = bandwidth.clamp(0.0, 1.0);
        (self.idle_w + b * (self.max_w - self.idle_w)) * self.power_scale
    }

    /// Bandwidth fraction while hosting GPU-resident DFT phases.
    pub const GPU_HOST_DRIVE: f64 = 0.28;
    /// Bandwidth fraction during CPU exact diagonalisation.
    pub const EXACT_DIAG: f64 = 0.55;
    /// Bandwidth fraction during STREAM.
    pub const STREAM: f64 = 1.0;
    /// Bandwidth fraction during host DGEMM (cache-resident blocks).
    pub const DGEMM: f64 = 0.35;
}

impl Default for MemoryModel {
    fn default() -> Self {
        Self::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints() {
        let m = MemoryModel::nominal();
        assert_eq!(m.power(0.0), 20.0);
        assert_eq!(m.power(1.0), 85.0);
    }

    #[test]
    fn clamping() {
        let m = MemoryModel::nominal();
        assert_eq!(m.power(-1.0), 20.0);
        assert_eq!(m.power(3.0), 85.0);
    }

    #[test]
    fn ddr_stays_a_small_slice() {
        // Fig. 3: CPU + memory together < 10 % of node power.
        let m = MemoryModel::nominal();
        assert!(m.power(MemoryModel::GPU_HOST_DRIVE) < 60.0);
    }

    #[test]
    fn deterministic_sampling() {
        assert_eq!(
            MemoryModel::sample(&mut Rng::new(7)),
            MemoryModel::sample(&mut Rng::new(7))
        );
    }
}
