//! AMD EPYC 7763 "Milan" CPU power model.
//!
//! During GPU-resident VASP phases the host CPU runs the OpenACC runtime,
//! MPI progress engines, and kernel launches — a light, fairly flat load
//! (Fig. 3: CPU + memory < 10 % of node power, "primarily flat"). During
//! the ACFDT/RPA exact-diagonalisation stage the CPU runs the dense solver
//! alone and pulls near its TDP (the mid-timeline hump/flat of Fig. 3,
//! bottom panel).

use vpp_sim::Rng;

/// Milan CPU instance with its variability sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Idle package power, watts.
    pub idle_w: f64,
    /// Package TDP, watts (§II-A: 280 W).
    pub tdp_w: f64,
    /// Multiplicative board-to-board power offset.
    pub power_scale: f64,
}

impl CpuModel {
    /// Nominal Milan part.
    #[must_use]
    pub fn nominal() -> Self {
        Self {
            idle_w: 85.0,
            tdp_w: 280.0,
            power_scale: 1.0,
        }
    }

    /// Draw an instance with fleet variability.
    #[must_use]
    pub fn sample(rng: &mut Rng) -> Self {
        Self {
            power_scale: rng.normal_clamped(1.0, 0.02, 0.94, 1.06),
            ..Self::nominal()
        }
    }

    /// Package power at the given active fraction (0 = idle, 1 = all cores
    /// at full tilt).
    #[must_use]
    pub fn power(&self, active: f64) -> f64 {
        let a = active.clamp(0.0, 1.0);
        (self.idle_w + a * (self.tdp_w - self.idle_w)) * self.power_scale
    }

    /// Active fraction while the node hosts GPU-resident DFT work: launch
    /// queues, MPI progress, one OpenMP thread per rank.
    pub const GPU_HOST_DRIVE: f64 = 0.16;
    /// Active fraction during the CPU-side exact diagonalisation (ScaLAPACK
    /// path, all cores).
    pub const EXACT_DIAG: f64 = 0.82;
    /// Active fraction during STREAM (bandwidth-bound, cores mostly waiting).
    pub const STREAM: f64 = 0.45;
    /// Active fraction during host DGEMM.
    pub const DGEMM: f64 = 0.95;
}

impl Default for CpuModel {
    fn default() -> Self {
        Self::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_and_tdp_endpoints() {
        let c = CpuModel::nominal();
        assert_eq!(c.power(0.0), 85.0);
        assert_eq!(c.power(1.0), 280.0);
    }

    #[test]
    fn active_fraction_clamps() {
        let c = CpuModel::nominal();
        assert_eq!(c.power(-0.5), c.power(0.0));
        assert_eq!(c.power(2.0), c.power(1.0));
    }

    #[test]
    fn host_drive_power_is_small_share() {
        // Fig. 3: CPU < 10 % of an ~1800 W node during GPU phases.
        let c = CpuModel::nominal();
        let p = c.power(CpuModel::GPU_HOST_DRIVE);
        assert!(p < 130.0, "host-drive CPU power too high: {p}");
    }

    #[test]
    fn exact_diag_pulls_near_tdp() {
        let c = CpuModel::nominal();
        let p = c.power(CpuModel::EXACT_DIAG);
        assert!(p > 220.0, "exact diagonalisation should load the CPU: {p}");
    }

    #[test]
    fn sampling_is_bounded_and_deterministic() {
        let a = CpuModel::sample(&mut Rng::new(4));
        let b = CpuModel::sample(&mut Rng::new(4));
        assert_eq!(a, b);
        assert!((0.94..=1.06).contains(&a.power_scale));
    }
}
