//! Campaign-scale DES throughput: the calendar event queue against the
//! retained binary-heap reference, and end-to-end power-cap campaigns of
//! thousands of heterogeneous jobs under each policy.
//!
//! `des_throughput_1e6` is the PR's acceptance comparison: schedule and
//! drain one million uniformly distributed events through both engines.
//! The heap pays an O(log n) sift per operation on a cache-hostile array;
//! the ladder pays an O(1) unsorted append and amortised batch
//! scatter/sort work, so the ratio widens as the pending set grows.
//! `des_hold_1e6` is the classic hold model (pop one, push one slightly
//! ahead, pending pinned at 10⁶): the steady-state figure, with no
//! fill/drain edge effects in either direction.

use std::hint::black_box;
use vpp_powercap::policy::{ClassAware, SweetSpot, Uncapped};
use vpp_powercap::{campaign, CampaignSpec, CapPolicy, TcoAware};
use vpp_sim::des::reference::HeapQueue;
use vpp_sim::{EventQueue, Rng};
use vpp_substrate::Harness;

const PENDING: usize = 1_000_000;

/// Pre-generated timestamps so neither engine's figure includes the RNG.
fn timestamps(n: usize) -> Vec<f64> {
    let mut rng = Rng::new(42);
    (0..n).map(|_| rng.uniform(0.0, 1e6)).collect()
}

fn bench_des_throughput(h: &mut Harness) {
    let at = timestamps(PENDING);
    h.compare(
        "des_throughput_1e6",
        || {
            let mut q: HeapQueue<u32> = HeapQueue::new();
            for (i, &t) in black_box(&at).iter().enumerate() {
                q.schedule(t, i as u32);
            }
            let mut n = 0u64;
            while q.next().is_some() {
                n += 1;
            }
            n
        },
        || {
            let mut q: EventQueue<u32> = EventQueue::new();
            for (i, &t) in black_box(&at).iter().enumerate() {
                q.schedule(t, i as u32);
            }
            let mut n = 0u64;
            while q.next().is_some() {
                n += 1;
            }
            n
        },
    );
}

/// Pairs per timed call of the hold-model closures.
const HOLD_PAIRS: usize = 100_000;

fn bench_des_hold(h: &mut Harness) {
    // Pre-generated increments so neither leg's figure includes the RNG;
    // both queues consume the identical sequence.
    let inc: Vec<f64> = {
        let mut rng = Rng::new(9);
        (0..8192).map(|_| rng.uniform(0.0, 2.0)).collect()
    };
    let at = timestamps(PENDING);
    let mut heap: HeapQueue<u32> = HeapQueue::new();
    let mut cal: EventQueue<u32> = EventQueue::new();
    for (i, &t) in at.iter().enumerate() {
        heap.schedule(t % 2.0, i as u32);
        cal.schedule(t % 2.0, i as u32);
    }
    let (mut hk, mut ck) = (0usize, 0usize);
    let inc2 = inc.clone();
    h.compare(
        "des_hold_1e6",
        move || {
            for _ in 0..HOLD_PAIRS {
                let (t, e) = heap.next().expect("queue pinned at PENDING");
                heap.schedule(t + inc[hk & 8191], e);
                hk += 1;
            }
            black_box(heap.len())
        },
        move || {
            for _ in 0..HOLD_PAIRS {
                let (t, e) = cal.next().expect("queue pinned at PENDING");
                cal.schedule(t + inc2[ck & 8191], e);
                ck += 1;
            }
            black_box(cal.len())
        },
    );
}

/// The acceptance campaign: 2000 seeded jobs over the default 8-partition
/// machine, one entry per policy, sharded across the substrate pool.
fn bench_campaign(h: &mut Harness) {
    let spec = CampaignSpec::new(2000, 7);
    let policies: [(&str, &dyn CapPolicy); 3] = [
        ("uncapped", &Uncapped),
        ("class_aware", &ClassAware),
        ("sweet_spot", &SweetSpot),
    ];
    for (name, policy) in policies {
        h.bench(&format!("campaign_2000_jobs_{name}"), || {
            campaign::run(black_box(&spec), policy, spec.partitions).merged.makespan_s
        });
    }
}

/// The site-coupled engine under contention: the same 2000 jobs squeezed
/// to 60 % of the summed envelope, one serial global-backfill event loop
/// (the path `vpp campaign --site-budget` exercises).
fn bench_campaign_site(h: &mut Harness) {
    let spec = CampaignSpec {
        site_budget_w: Some(0.6 * 8.0 * 40_000.0),
        ..CampaignSpec::new(2000, 7)
    };
    let policies: [(&str, &dyn CapPolicy); 2] =
        [("uncapped", &Uncapped), ("tco_aware", &TcoAware::DEFAULT)];
    for (name, policy) in policies {
        h.bench(&format!("campaign_2000_jobs_site_{name}"), || {
            campaign::run(black_box(&spec), policy, spec.partitions).merged.makespan_s
        });
    }
}

fn main() {
    let mut h = Harness::new("campaign");
    bench_des_throughput(&mut h);
    bench_des_hold(&mut h);
    bench_campaign(&mut h);
    bench_campaign_site(&mut h);
    h.finish();
}
