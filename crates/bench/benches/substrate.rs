//! Micro-benchmarks of the simulation substrate's hot paths: trace algebra,
//! the event queue, sampling, KDE/mode extraction, and plan lowering.
//!
//! The `*_before_after` entries pit the superseded algorithms (kept in
//! `vpp_sim::trace::reference` and `Kde::grid_exact`) against the shipping
//! fast paths; their speedups land in the `comparisons` array of
//! `BENCH_results.json`.

use std::hint::black_box;
use vpp_sim::trace::reference;
use vpp_sim::{EventQueue, PowerTrace, Rng};
use vpp_stats::kde::{Bandwidth, Kde};
use vpp_substrate::Harness;
use vpp_telemetry::Sampler;

fn long_trace(segments: usize) -> PowerTrace {
    let mut rng = Rng::new(7);
    let mut t = PowerTrace::new(0.0);
    for _ in 0..segments {
        t.push(rng.uniform(0.005, 0.5), rng.uniform(50.0, 2000.0));
    }
    t
}

/// A one-hour trace with sub-second structure (~72k segments).
fn hour_trace() -> PowerTrace {
    let mut rng = Rng::new(13);
    let mut t = PowerTrace::new(0.0);
    while t.duration() < 3600.0 {
        t.push(rng.uniform(0.01, 0.1), rng.uniform(50.0, 2000.0));
    }
    t
}

fn bench_trace_ops(h: &mut Harness) {
    let a = long_trace(50_000);
    let b = long_trace(50_000);
    h.bench("trace_build_100k_segments", || long_trace(100_000).len());
    h.bench("trace_energy_50k", || a.energy());
    h.bench("trace_sum_two_50k", || PowerTrace::sum(&[&a, &b]).len());
    h.bench("trace_window_mean_50k", || a.mean_power(100.0, 500.0));

    // 64 offset traces of 2k segments each: the fleet-aggregation shape.
    let fleet: Vec<PowerTrace> = (0..64)
        .map(|i| {
            let mut rng = Rng::new(100 + i);
            let mut t = PowerTrace::new(i as f64 * 0.37);
            for _ in 0..2_000 {
                t.push(rng.uniform(0.01, 0.5), rng.uniform(50.0, 2000.0));
            }
            t
        })
        .collect();
    let refs: Vec<&PowerTrace> = fleet.iter().collect();
    h.compare(
        "sum_64_traces_before_after",
        || reference::sum_cut_union(black_box(&refs)).len(),
        || PowerTrace::sum(black_box(&refs)).len(),
    );
}

fn bench_event_queue(h: &mut Harness) {
    h.bench("event_queue_10k_schedule_drain", || {
        let mut q = EventQueue::new();
        let mut rng = Rng::new(3);
        for i in 0..10_000 {
            q.schedule(rng.uniform(0.0, 1e6), i);
        }
        let mut n = 0;
        q.drain(|_, _| n += 1);
        n
    });
}

fn bench_sampling(h: &mut Harness) {
    let trace = long_trace(50_000);
    h.bench("sampler_2s_over_50k_segments", || {
        Sampler::ideal(2.0).sample(&trace).len()
    });
    h.bench("sampler_high_rate_over_50k_segments", || {
        Sampler::high_rate().sample(&trace).len()
    });

    // One hour at the production 1-s cadence: sweep vs per-query windows.
    let hour = hour_trace();
    let n_windows = (hour.duration() / 1.0).floor() as usize;
    h.compare(
        "sample_1h_trace_before_after",
        || reference::window_means_per_query(black_box(&hour), hour.start(), 1.0, n_windows).len(),
        || black_box(&hour).window_means(hour.start(), 1.0, n_windows).len(),
    );
}

fn bench_stats(h: &mut Harness) {
    let mut rng = Rng::new(11);
    let bimodal = |n: usize, rng: &mut Rng| -> Vec<f64> {
        (0..n)
            .map(|_| {
                if rng.bool(0.7) {
                    rng.normal(1700.0, 40.0)
                } else {
                    rng.normal(700.0, 60.0)
                }
            })
            .collect()
    };
    let data = bimodal(4_000, &mut rng);
    h.bench("kde_fit_and_grid_4k_samples", || {
        let kde = Kde::fit(&data, Bandwidth::Silverman);
        kde.grid(512).1[256]
    });
    h.bench("high_power_mode_4k_samples", || {
        vpp_stats::high_power_mode(&data).x
    });
    h.bench("fwhm_4k_samples", {
        let mode = vpp_stats::high_power_mode(&data);
        move || vpp_stats::fwhm(&data, mode)
    });

    // The acceptance workload: a 512-point grid over 10k samples.
    let data10k = bimodal(10_000, &mut rng);
    let kde = Kde::fit(&data10k, Bandwidth::Silverman);
    h.compare(
        "kde_grid_10k_samples_before_after",
        || black_box(&kde).grid_exact(512).1[256],
        || black_box(&kde).grid(512).1[256],
    );
}

fn bench_plan_lowering(h: &mut Harness) {
    let p = vpp_core::benchmarks::pdo4().params();
    let cost = vpp_dft::CostModel::calibrated();
    h.bench("lower_pdo4_plan", || {
        vpp_dft::build_plan(&p, &vpp_dft::ParallelLayout::nodes(2), &cost)
            .ops
            .len()
    });
}

fn bench_parsers(h: &mut Harness) {
    let incar = "ALGO = Damped\nLHFCALC = .TRUE.\nNELM = 41\nNBANDS = 640\nENCUT = 400\nNSIM = 4\n";
    h.bench("parse_incar", || {
        vpp_dft::parse_incar(black_box(incar)).unwrap().deck.nelm
    });
    let poscar = "Si256\n1.0\n17.24 0 0\n0 17.24 0\n0 0 17.24\nSi\n255\nDirect\n";
    h.bench("parse_poscar", || {
        vpp_dft::parse_poscar(black_box(poscar)).unwrap().n_ions()
    });
}

fn bench_lqcd_lowering(h: &mut Harness) {
    let w = vpp_lqcd::MilcWorkload {
        lattice: [32, 32, 32, 48],
        trajectories: 2,
        md_steps: 6,
        solver: vpp_lqcd::SolverParams {
            cg_iters: 400,
            solves_per_step: 2,
        },
    };
    let net = vpp_cluster::NetworkModel::perlmutter();
    let cm = vpp_dft::CostModel::calibrated();
    h.bench("lower_milc_plan", || {
        w.build_plan(&vpp_dft::ParallelLayout::nodes(1), &net, &cm)
            .ops
            .len()
    });
}

fn bench_fleet(h: &mut Harness) {
    let mut deck = vpp_dft::Incar::default_deck();
    deck.nelm = 6;
    let p = vpp_dft::SystemParams::derive(&vpp_dft::Supercell::silicon(128), &deck);
    let plan = vpp_dft::build_plan(
        &p,
        &vpp_dft::ParallelLayout::nodes(1),
        &vpp_dft::CostModel::calibrated(),
    );
    let requests: Vec<vpp_fleet::JobRequest> = (0..4)
        .map(|id| vpp_fleet::JobRequest {
            id,
            name: format!("j{id}"),
            plan: plan.clone(),
            nodes: 1,
            arrival_s: id as f64 * 5.0,
            cap_w: None,
            est_node_power_w: 1100.0,
        })
        .collect();
    let spec = vpp_fleet::FleetSpec::new(2);
    let net = vpp_cluster::NetworkModel::perlmutter();
    h.bench("fleet_four_jobs_two_nodes", || {
        vpp_fleet::simulate(&spec, &requests, &net).makespan_s
    });
}

fn main() {
    let mut h = Harness::new("substrate");
    bench_trace_ops(&mut h);
    bench_event_queue(&mut h);
    bench_sampling(&mut h);
    bench_stats(&mut h);
    bench_plan_lowering(&mut h);
    bench_parsers(&mut h);
    bench_lqcd_lowering(&mut h);
    bench_fleet(&mut h);
    h.finish();
}
