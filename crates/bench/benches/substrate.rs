//! Micro-benchmarks of the simulation substrate's hot paths: trace algebra,
//! the event queue, sampling, KDE/mode extraction, and plan lowering.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vpp_sim::{EventQueue, PowerTrace, Rng};
use vpp_stats::kde::{Bandwidth, Kde};
use vpp_telemetry::Sampler;

fn configured(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("substrate");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g
}

fn long_trace(segments: usize) -> PowerTrace {
    let mut rng = Rng::new(7);
    let mut t = PowerTrace::new(0.0);
    for _ in 0..segments {
        t.push(rng.uniform(0.005, 0.5), rng.uniform(50.0, 2000.0));
    }
    t
}

fn bench_trace_ops(c: &mut Criterion) {
    let mut g = configured(c);
    let a = long_trace(50_000);
    let b = long_trace(50_000);
    g.bench_function("trace_build_100k_segments", |bch| {
        bch.iter(|| black_box(long_trace(100_000).len()))
    });
    g.bench_function("trace_energy_50k", |bch| {
        bch.iter(|| black_box(a.energy()))
    });
    g.bench_function("trace_sum_two_50k", |bch| {
        bch.iter(|| black_box(PowerTrace::sum(&[&a, &b]).len()))
    });
    g.bench_function("trace_window_mean_50k", |bch| {
        bch.iter(|| black_box(a.mean_power(100.0, 500.0)))
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = configured(c);
    g.bench_function("event_queue_10k_schedule_drain", |bch| {
        bch.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = Rng::new(3);
            for i in 0..10_000 {
                q.schedule(rng.uniform(0.0, 1e6), i);
            }
            let mut n = 0;
            q.drain(|_, _| n += 1);
            black_box(n)
        })
    });
    g.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut g = configured(c);
    let trace = long_trace(50_000);
    g.bench_function("sampler_2s_over_50k_segments", |bch| {
        bch.iter(|| black_box(Sampler::ideal(2.0).sample(&trace).len()))
    });
    g.bench_function("sampler_high_rate_over_50k_segments", |bch| {
        bch.iter(|| black_box(Sampler::high_rate().sample(&trace).len()))
    });
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut g = configured(c);
    let mut rng = Rng::new(11);
    let data: Vec<f64> = (0..4000)
        .map(|_| {
            if rng.bool(0.7) {
                rng.normal(1700.0, 40.0)
            } else {
                rng.normal(700.0, 60.0)
            }
        })
        .collect();
    g.bench_function("kde_fit_and_grid_4k_samples", |bch| {
        bch.iter(|| {
            let kde = Kde::fit(&data, Bandwidth::Silverman);
            black_box(kde.grid(512).1[256])
        })
    });
    g.bench_function("high_power_mode_4k_samples", |bch| {
        bch.iter(|| black_box(vpp_stats::high_power_mode(&data).x))
    });
    g.bench_function("fwhm_4k_samples", |bch| {
        let mode = vpp_stats::high_power_mode(&data);
        bch.iter(|| black_box(vpp_stats::fwhm(&data, mode)))
    });
    g.finish();
}

fn bench_plan_lowering(c: &mut Criterion) {
    let mut g = configured(c);
    g.bench_function("lower_pdo4_plan", |bch| {
        let p = vpp_core::benchmarks::pdo4().params();
        let cost = vpp_dft::CostModel::calibrated();
        bch.iter(|| {
            black_box(
                vpp_dft::build_plan(&p, &vpp_dft::ParallelLayout::nodes(2), &cost)
                    .ops
                    .len(),
            )
        })
    });
    g.finish();
}

fn bench_parsers(c: &mut Criterion) {
    let mut g = configured(c);
    let incar = "ALGO = Damped\nLHFCALC = .TRUE.\nNELM = 41\nNBANDS = 640\nENCUT = 400\nNSIM = 4\n";
    g.bench_function("parse_incar", |bch| {
        bch.iter(|| black_box(vpp_dft::parse_incar(black_box(incar)).unwrap().deck.nelm))
    });
    let poscar = "Si256\n1.0\n17.24 0 0\n0 17.24 0\n0 0 17.24\nSi\n255\nDirect\n";
    g.bench_function("parse_poscar", |bch| {
        bch.iter(|| black_box(vpp_dft::parse_poscar(black_box(poscar)).unwrap().n_ions()))
    });
    g.finish();
}

fn bench_lqcd_lowering(c: &mut Criterion) {
    let mut g = configured(c);
    let w = vpp_lqcd::MilcWorkload {
        lattice: [32, 32, 32, 48],
        trajectories: 2,
        md_steps: 6,
        solver: vpp_lqcd::SolverParams {
            cg_iters: 400,
            solves_per_step: 2,
        },
    };
    let net = vpp_cluster::NetworkModel::perlmutter();
    let cm = vpp_dft::CostModel::calibrated();
    g.bench_function("lower_milc_plan", |bch| {
        bch.iter(|| {
            black_box(
                w.build_plan(&vpp_dft::ParallelLayout::nodes(1), &net, &cm)
                    .ops
                    .len(),
            )
        })
    });
    g.finish();
}

fn bench_fleet(c: &mut Criterion) {
    let mut g = configured(c);
    let mut deck = vpp_dft::Incar::default_deck();
    deck.nelm = 6;
    let p = vpp_dft::SystemParams::derive(&vpp_dft::Supercell::silicon(128), &deck);
    let plan = vpp_dft::build_plan(
        &p,
        &vpp_dft::ParallelLayout::nodes(1),
        &vpp_dft::CostModel::calibrated(),
    );
    let requests: Vec<vpp_fleet::JobRequest> = (0..4)
        .map(|id| vpp_fleet::JobRequest {
            id,
            name: format!("j{id}"),
            plan: plan.clone(),
            nodes: 1,
            arrival_s: id as f64 * 5.0,
            cap_w: None,
            est_node_power_w: 1100.0,
        })
        .collect();
    let spec = vpp_fleet::FleetSpec::new(2);
    let net = vpp_cluster::NetworkModel::perlmutter();
    g.bench_function("fleet_four_jobs_two_nodes", |bch| {
        bch.iter(|| black_box(vpp_fleet::simulate(&spec, &requests, &net).makespan_s))
    });
    g.finish();
}

criterion_group!(
    substrate,
    bench_trace_ops,
    bench_event_queue,
    bench_sampling,
    bench_stats,
    bench_plan_lowering,
    bench_parsers,
    bench_lqcd_lowering,
    bench_fleet
);
criterion_main!(substrate);
