//! Flight-recorder baselines: per-benchmark per-phase trace aggregates
//! stored under the `trace_baselines` group of `BENCH_results.json`.
//!
//! Each entry is timed untraced as usual; the stored baseline comes from
//! one traced run of the identical pinned recipe
//! (`vpp_core::flight::baseline_ctx` / `baseline_cfg`), rolled up into a
//! whole-run aggregate plus one sample per `protocol.repeat` subtree.
//! `vpp trace diff <benchmark>` re-runs that recipe and compares against
//! what this bench stored.

use std::hint::black_box;
use vpp_core::benchmarks;
use vpp_core::flight;
use vpp_core::protocol::measure;
use vpp_powercap::campaign;
use vpp_substrate::Harness;

fn main() {
    let mut h = Harness::new(flight::BASELINE_GROUP);
    let ctx = flight::baseline_ctx();
    let cfg = flight::baseline_cfg();

    for bench in [benchmarks::si256_hse(), benchmarks::b_hr105_hse()] {
        let name = bench.name().to_string();
        h.bench_traced(&name, flight::SAMPLE_SPAN, move || {
            black_box(measure(&bench, &cfg, &ctx).runtime_s)
        });
    }

    // The sharded campaign hot path (calendar queue + event-driven
    // scheduler), guarded by the same trace-diff machinery.
    h.bench_traced(campaign::BASELINE_NAME, campaign::SAMPLE_SPAN, || {
        campaign::baseline_body();
    });

    h.finish();
}
