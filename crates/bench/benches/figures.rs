//! One Criterion bench per paper table/figure.
//!
//! Each bench regenerates its table/figure at reduced scale (one protocol
//! repeat, trimmed sweeps). The measured quantity is the end-to-end cost of
//! the regeneration pipeline — workload lowering, cluster simulation,
//! telemetry, and statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vpp_bench::{bench_ctx, plan, run};
use vpp_core::benchmarks;
use vpp_core::experiments::{fig02, fig11, table1};
use vpp_core::protocol::{measure, RunConfig};

fn configured(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));
    g
}

fn bench_table1(c: &mut Criterion) {
    let mut g = configured(c);
    g.bench_function("table1_regenerate", |b| {
        b.iter(|| black_box(table1::run().to_string()))
    });
    g.finish();
}

fn bench_fig01(c: &mut Criterion) {
    // Four-node prologue + job, single fleet.
    let mut g = configured(c);
    let p = plan(&benchmarks::si256_hse(), 4);
    g.bench_function("fig01_multinode_job", |b| {
        b.iter(|| black_box(run(&p, 4, None).runtime_s))
    });
    g.finish();
}

fn bench_fig02(c: &mut Criterion) {
    let mut g = configured(c);
    let ctx = bench_ctx();
    g.bench_function("fig02_sampling_rates", |b| {
        b.iter(|| black_box(fig02::run(&ctx).mode_stability_w()))
    });
    g.finish();
}

fn bench_fig03(c: &mut Criterion) {
    let mut g = configured(c);
    let ctx = bench_ctx();
    let bench = benchmarks::gaasbi64();
    g.bench_function("fig03_timeline_panel", |b| {
        b.iter(|| {
            let m = measure(&bench, &RunConfig::nodes(1), &ctx);
            black_box(m.node_summary.high_mode_w)
        })
    });
    g.finish();
}

fn bench_fig04_fig05(c: &mut Criterion) {
    // The shared scaling sweep, reduced to two benchmarks × {1, 2} nodes.
    let mut g = configured(c);
    let ctx = bench_ctx();
    let suite = [benchmarks::pdo2(), benchmarks::b_hr105_hse()];
    g.bench_function("fig04_fig05_scaling_sweep", |b| {
        b.iter(|| {
            let data =
                vpp_core::experiments::scaling::measure_suite(&suite, &[1, 2], &ctx);
            black_box(data[0].efficiencies())
        })
    });
    g.finish();
}

fn bench_fig06(c: &mut Criterion) {
    // One representative size point of the sweep.
    let mut g = configured(c);
    let deck = vpp_dft::Incar::default_deck();
    let p = vpp_dft::SystemParams::derive(&vpp_dft::Supercell::silicon(512), &deck);
    let plan = vpp_dft::build_plan(
        &p,
        &vpp_dft::ParallelLayout::nodes(1),
        &bench_ctx().cost,
    );
    g.bench_function("fig06_size_point_si512", |b| {
        b.iter(|| black_box(run(&plan, 1, None).energy_j()))
    });
    g.finish();
}

fn bench_fig07(c: &mut Criterion) {
    let mut g = configured(c);
    let ctx = bench_ctx();
    g.bench_function("fig07_parameter_sweeps", |b| {
        b.iter(|| {
            let fig = vpp_core::experiments::fig07::run_with_nelm(&ctx, Some(3));
            black_box(fig.nplwv_rows.len())
        })
    });
    g.finish();
}

fn bench_fig08(c: &mut Criterion) {
    let mut g = configured(c);
    let ctx = bench_ctx();
    let bench = benchmarks::si256_hse();
    g.bench_function("fig08_concurrency_point", |b| {
        b.iter(|| black_box(measure(&bench, &RunConfig::nodes(4), &ctx).energy_j))
    });
    g.finish();
}

fn bench_fig09(c: &mut Criterion) {
    let mut g = configured(c);
    let cost = bench_ctx().cost;
    g.bench_function("fig09_method_violin_si128", |b| {
        b.iter(|| {
            let deck = vpp_dft::Method::DftVeryFast.deck();
            let p = vpp_dft::SystemParams::derive(&vpp_dft::Supercell::silicon(128), &deck);
            let plan = vpp_dft::build_plan(&p, &vpp_dft::ParallelLayout::nodes(1), &cost);
            let res = run(&plan, 1, None);
            let series =
                vpp_telemetry::Sampler::ideal(0.5).sample(&res.node_traces[0].node);
            black_box(vpp_stats::ViolinStats::from_samples(series.values(), 64).median)
        })
    });
    g.finish();
}

fn bench_fig10_fig12(c: &mut Criterion) {
    // One benchmark through the full four-cap sweep.
    let mut g = configured(c);
    let ctx = bench_ctx();
    let suite = [benchmarks::pdo2()];
    g.bench_function("fig10_fig12_cap_sweep", |b| {
        b.iter(|| {
            let data = vpp_core::experiments::capping::measure_caps(&suite, &ctx);
            black_box(data[0].normalised_perf())
        })
    });
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let mut g = configured(c);
    let ctx = bench_ctx();
    g.bench_function("fig11_cap_timeline_pair", |b| {
        b.iter(|| black_box(fig11::run(&ctx).peak_reduction()))
    });
    g.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let mut g = configured(c);
    let ctx = bench_ctx();
    g.bench_function("fig13_caps_at_two_node_counts", |b| {
        b.iter(|| {
            black_box(
                vpp_core::experiments::fig13::run_with_nodes(&ctx, &[1, 2]).max_spread(),
            )
        })
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_table1,
    bench_fig01,
    bench_fig02,
    bench_fig03,
    bench_fig04_fig05,
    bench_fig06,
    bench_fig07,
    bench_fig08,
    bench_fig09,
    bench_fig10_fig12,
    bench_fig11,
    bench_fig13
);
criterion_main!(figures);
