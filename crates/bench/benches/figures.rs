//! One bench entry per paper table/figure.
//!
//! Each bench regenerates its table/figure at reduced scale (one protocol
//! repeat, trimmed sweeps). The measured quantity is the end-to-end cost of
//! the regeneration pipeline — workload lowering, cluster simulation,
//! telemetry, and statistics.

use std::hint::black_box;
use vpp_bench::{bench_ctx, plan, run};
use vpp_core::benchmarks;
use vpp_core::experiments::{fig02, fig11, table1};
use vpp_core::protocol::{measure, RunConfig};
use vpp_substrate::Harness;

fn main() {
    let mut h = Harness::new("figures");
    let ctx = bench_ctx();

    h.bench("table1_regenerate", || table1::run().to_string().len());

    // Four-node prologue + job, single fleet.
    let p1 = plan(&benchmarks::si256_hse(), 4);
    h.bench("fig01_multinode_job", move || run(&p1, 4, None).runtime_s);

    h.bench("fig02_sampling_rates", move || {
        fig02::run(&ctx).mode_stability_w()
    });

    let b3 = benchmarks::gaasbi64();
    h.bench("fig03_timeline_panel", move || {
        measure(&b3, &RunConfig::nodes(1), &ctx).node_summary.high_mode_w
    });

    // The shared scaling sweep, reduced to two benchmarks × {1, 2} nodes.
    let suite45 = [benchmarks::pdo2(), benchmarks::b_hr105_hse()];
    h.bench("fig04_fig05_scaling_sweep", move || {
        let data = vpp_core::experiments::scaling::measure_suite(&suite45, &[1, 2], &ctx);
        black_box(data[0].efficiencies()).len()
    });

    // One representative size point of the sweep.
    let deck = vpp_dft::Incar::default_deck();
    let p6 = vpp_dft::SystemParams::derive(&vpp_dft::Supercell::silicon(512), &deck);
    let plan6 = vpp_dft::build_plan(&p6, &vpp_dft::ParallelLayout::nodes(1), &ctx.cost);
    h.bench("fig06_size_point_si512", move || {
        run(&plan6, 1, None).energy_j()
    });

    h.bench("fig07_parameter_sweeps", move || {
        vpp_core::experiments::fig07::run_with_nelm(&ctx, Some(3))
            .nplwv_rows
            .len()
    });

    let b8 = benchmarks::si256_hse();
    h.bench("fig08_concurrency_point", move || {
        measure(&b8, &RunConfig::nodes(4), &ctx).energy_j
    });

    let cost9 = ctx.cost;
    h.bench("fig09_method_violin_si128", move || {
        let deck = vpp_dft::Method::DftVeryFast.deck();
        let p = vpp_dft::SystemParams::derive(&vpp_dft::Supercell::silicon(128), &deck);
        let plan = vpp_dft::build_plan(&p, &vpp_dft::ParallelLayout::nodes(1), &cost9);
        let res = run(&plan, 1, None);
        let series = vpp_telemetry::Sampler::ideal(0.5).sample(&res.node_traces[0].node);
        vpp_stats::ViolinStats::from_samples(series.values(), 64).median
    });

    // One benchmark through the full four-cap sweep.
    let suite1012 = [benchmarks::pdo2()];
    h.bench("fig10_fig12_cap_sweep", move || {
        let data = vpp_core::experiments::capping::measure_caps(&suite1012, &ctx);
        black_box(data[0].normalised_perf()).len()
    });

    h.bench("fig11_cap_timeline_pair", move || {
        fig11::run(&ctx).peak_reduction()
    });

    h.bench("fig13_caps_at_two_node_counts", move || {
        vpp_core::experiments::fig13::run_with_nodes(&ctx, &[1, 2]).max_spread()
    });

    h.finish();
}
