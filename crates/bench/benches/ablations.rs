//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each ablation runs the same workload under two model variants and
//! reports both the runtime cost and (via eprintln at setup) the modelled
//! quantity that changes, so `cargo bench` output documents the effect:
//!
//! * calibrated throttle response vs the physically-derived DVFS curve;
//! * window-averaged sampling vs instantaneous point sampling;
//! * manufacturing variability on vs off;
//! * duty-cycle modelling on vs off.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vpp_bench::{run, small_workload};
use vpp_gpu::{DvfsCurve, Gpu, Kernel, KernelKind};
use vpp_telemetry::Sampler;

fn configured(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));
    g
}

/// Throttle response: the calibrated `(1-(1-r)^γ)` curve vs solving the
/// DVFS voltage/frequency model directly (time ∝ 1/f).
fn ablation_throttle_model(c: &mut Criterion) {
    let kernel = Kernel::new(KernelKind::TensorGemm, 5e7, 1.0);
    let gpu = Gpu::nominal();
    let p0 = gpu.uncapped_power(&kernel);
    let dvfs = DvfsCurve::a100();
    // Document the modelled difference at the paper's 200 W point.
    let mut capped = Gpu::nominal();
    capped.set_power_limit(200.0);
    let calibrated = capped.throttle_perf(p0, KernelKind::TensorGemm);
    let phi = (200.0 - 52.0) / (p0 - 52.0);
    let dvfs_perf = dvfs.clock_for_power(phi);
    eprintln!(
        "[ablation] 200 W on a {p0:.0} W kernel: calibrated perf {calibrated:.3}, \
         raw DVFS perf {dvfs_perf:.3}"
    );

    let mut g = configured(c);
    g.bench_function("throttle_calibrated", |b| {
        b.iter(|| black_box(capped.throttle_perf(black_box(p0), KernelKind::TensorGemm)))
    });
    g.bench_function("throttle_dvfs_solve", |b| {
        b.iter(|| black_box(dvfs.clock_for_power(black_box(phi))))
    });
    g.finish();
}

/// Sampling: window-averaged (Cray PM semantics) vs instantaneous points.
fn ablation_sampling(c: &mut Criterion) {
    let plan = small_workload();
    let res = run(&plan, 1, None);
    let trace = res.node_traces[0].node.clone();
    let windowed = Sampler::ideal(2.0).sample(&trace);
    let instant = trace.sample_instant(2.0);
    let w_mode = vpp_stats::high_power_mode(windowed.values()).x;
    let i_mode = vpp_stats::high_power_mode(&instant).x;
    eprintln!(
        "[ablation] high power mode: window-averaged {w_mode:.0} W vs instantaneous \
         {i_mode:.0} W (Fig. 2's merging only happens with window averaging)"
    );

    let mut g = configured(c);
    g.bench_function("sampling_window_averaged", |b| {
        b.iter(|| black_box(Sampler::ideal(2.0).sample(&trace).mean()))
    });
    g.bench_function("sampling_instantaneous", |b| {
        b.iter(|| black_box(trace.sample_instant(2.0).len()))
    });
    g.finish();
}

/// Variability: sampled fleets vs nominal hardware.
fn ablation_variability(c: &mut Criterion) {
    let plan = small_workload();
    let mut g = configured(c);
    g.bench_function("fleet_sampled_nodes", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut spec = vpp_cluster::JobSpec::new(1);
            spec.seed = seed;
            black_box(
                vpp_cluster::execute(&plan, &spec, &vpp_cluster::NetworkModel::perlmutter())
                    .runtime_s,
            )
        })
    });
    g.bench_function("fleet_fixed_node", |b| {
        let spec = vpp_cluster::JobSpec::new(1);
        b.iter(|| {
            black_box(
                vpp_cluster::execute(&plan, &spec, &vpp_cluster::NetworkModel::perlmutter())
                    .runtime_s,
            )
        })
    });
    g.finish();
}

/// Duty cycling: with vs without the launch-gap duty model.
fn ablation_duty(c: &mut Criterion) {
    let gpu = Gpu::nominal();
    let with = Kernel::with_duty(KernelKind::Fft3d, 2e6, 1.0, 0.5);
    let without = Kernel::new(KernelKind::Fft3d, 2e6, 1.0);
    eprintln!(
        "[ablation] Fft3d power: duty 0.5 → {:.0} W, duty 1.0 → {:.0} W \
         (duty is what keeps k-point-bound workloads cool)",
        gpu.uncapped_power(&with),
        gpu.uncapped_power(&without)
    );
    let mut g = configured(c);
    g.bench_function("execute_with_duty", |b| {
        b.iter(|| black_box(gpu.execute(&with).watts))
    });
    g.bench_function("execute_full_duty", |b| {
        b.iter(|| black_box(gpu.execute(&without).watts))
    });
    g.finish();
}

criterion_group!(
    ablations,
    ablation_throttle_model,
    ablation_sampling,
    ablation_variability,
    ablation_duty
);
criterion_main!(ablations);
