//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each ablation runs the same workload under two model variants and
//! reports both the runtime cost and (via eprintln at setup) the modelled
//! quantity that changes, so the bench output documents the effect:
//!
//! * calibrated throttle response vs the physically-derived DVFS curve;
//! * window-averaged sampling vs instantaneous point sampling;
//! * manufacturing variability on vs off;
//! * duty-cycle modelling on vs off.

use std::hint::black_box;
use vpp_bench::{run, small_workload};
use vpp_gpu::{DvfsCurve, Gpu, Kernel, KernelKind};
use vpp_substrate::Harness;
use vpp_telemetry::Sampler;

/// Throttle response: the calibrated `(1-(1-r)^γ)` curve vs solving the
/// DVFS voltage/frequency model directly (time ∝ 1/f).
fn ablation_throttle_model(h: &mut Harness) {
    let kernel = Kernel::new(KernelKind::TensorGemm, 5e7, 1.0);
    let gpu = Gpu::nominal();
    let p0 = gpu.uncapped_power(&kernel);
    let dvfs = DvfsCurve::a100();
    // Document the modelled difference at the paper's 200 W point.
    let mut capped = Gpu::nominal();
    capped.set_power_limit(200.0);
    let calibrated = capped.throttle_perf(p0, KernelKind::TensorGemm);
    let phi = (200.0 - 52.0) / (p0 - 52.0);
    let dvfs_perf = dvfs.clock_for_power(phi);
    eprintln!(
        "[ablation] 200 W on a {p0:.0} W kernel: calibrated perf {calibrated:.3}, \
         raw DVFS perf {dvfs_perf:.3}"
    );

    h.bench("throttle_calibrated", move || {
        capped.throttle_perf(black_box(p0), KernelKind::TensorGemm)
    });
    h.bench("throttle_dvfs_solve", move || {
        dvfs.clock_for_power(black_box(phi))
    });
}

/// Sampling: window-averaged (Cray PM semantics) vs instantaneous points.
fn ablation_sampling(h: &mut Harness) {
    let plan = small_workload();
    let res = run(&plan, 1, None);
    let trace = res.node_traces[0].node.clone();
    let windowed = Sampler::ideal(2.0).sample(&trace);
    let instant = trace.sample_instant(2.0);
    let w_mode = vpp_stats::high_power_mode(windowed.values()).x;
    let i_mode = vpp_stats::high_power_mode(&instant).x;
    eprintln!(
        "[ablation] high power mode: window-averaged {w_mode:.0} W vs instantaneous \
         {i_mode:.0} W (Fig. 2's merging only happens with window averaging)"
    );

    let t2 = trace.clone();
    h.bench("sampling_window_averaged", move || {
        Sampler::ideal(2.0).sample(&trace).mean()
    });
    h.bench("sampling_instantaneous", move || t2.sample_instant(2.0).len());
}

/// Variability: sampled fleets vs nominal hardware.
fn ablation_variability(h: &mut Harness) {
    let plan = small_workload();
    let p2 = plan.clone();
    let mut seed = 0u64;
    h.bench("fleet_sampled_nodes", move || {
        seed += 1;
        let mut spec = vpp_cluster::JobSpec::new(1);
        spec.seed = seed;
        vpp_cluster::execute(&plan, &spec, &vpp_cluster::NetworkModel::perlmutter()).runtime_s
    });
    let spec = vpp_cluster::JobSpec::new(1);
    h.bench("fleet_fixed_node", move || {
        vpp_cluster::execute(&p2, &spec, &vpp_cluster::NetworkModel::perlmutter()).runtime_s
    });
}

/// Duty cycling: with vs without the launch-gap duty model.
fn ablation_duty(h: &mut Harness) {
    let gpu = Gpu::nominal();
    let with = Kernel::with_duty(KernelKind::Fft3d, 2e6, 1.0, 0.5);
    let without = Kernel::new(KernelKind::Fft3d, 2e6, 1.0);
    eprintln!(
        "[ablation] Fft3d power: duty 0.5 → {:.0} W, duty 1.0 → {:.0} W \
         (duty is what keeps k-point-bound workloads cool)",
        gpu.uncapped_power(&with),
        gpu.uncapped_power(&without)
    );
    let g2 = gpu.clone();
    h.bench("execute_with_duty", move || gpu.execute(&with).watts);
    h.bench("execute_full_duty", move || g2.execute(&without).watts);
}

fn main() {
    let mut h = Harness::new("ablations");
    ablation_throttle_model(&mut h);
    ablation_sampling(&mut h);
    ablation_variability(&mut h);
    ablation_duty(&mut h);
    h.finish();
}
