//! Overhead guard for the structured tracing substrate.
//!
//! The contract is "near-zero overhead when disabled": every instrumented
//! hot path (the executor's per-op loop, the DES queue, the protocol) runs
//! with `trace::enabled()` false in production, so the disabled primitives
//! must cost a branch, and a fully instrumented job execution without a
//! session must be indistinguishable from the pre-instrumentation numbers.
//! The `execute_small_job_untraced_vs_traced` comparison records what a
//! live session costs on top, keeping the enabled path honest too.

use std::hint::black_box;
use vpp_bench::{run, small_workload};
use vpp_core::{benchmarks, protocol};
use vpp_substrate::{span, trace, Harness};

fn main() {
    let mut h = Harness::new("trace_overhead");

    // Primitive costs with no recorder installed: one relaxed atomic load
    // each. The field closures must not run at all.
    h.bench("span_open_close_disabled", || {
        let mut s = span!("bench.span", payload = 42u64);
        s.record("exit_payload", 1.0);
        trace::enabled()
    });
    h.bench("counter_disabled", || {
        trace::counter("bench.counter", 1);
    });
    h.bench("mark_with_disabled", || {
        trace::mark_with("bench.mark", || vec![("x", 1.0.into())]);
    });
    h.bench("histogram_disabled", || {
        trace::histogram("bench.hist_watts", 250.0);
    });

    // Per-event cost with a live recorder, in the steady-state shape the
    // simulator produces: short spans nested under a long-lived root
    // (`job.execute`, `powercap.cycle`, …), so staged events batch-flush
    // instead of flushing at every span exit. The session recycles
    // (finish + reopen) every 2^18 calls, well before its 2^20-event
    // budget fills; the recycle lands in ~1% of timed batches and the
    // harness reports a median over batches, so the steady-state append
    // cost is what's recorded.
    {
        let open = || {
            let session = trace::session(1 << 20);
            let root = span!("bench.root");
            (session, root)
        };
        let mut state = Some(open());
        let mut n = 0u64;
        h.bench("span_open_close_enabled", || {
            n += 1;
            if n.is_multiple_of(1 << 18) {
                let (session, root) = state.take().expect("live session");
                drop(root);
                let report = session.finish();
                assert_eq!(report.dropped, 0, "budget must outlast the recycle cadence");
                state = Some(open());
            }
            let mut s = span!("bench.span", payload = 42u64);
            s.record("exit_payload", 1.0);
        });
        h.bench("counter_enabled", || {
            trace::counter("bench.counter", 1);
        });
        // The histogram acceptance bound: recording into a live
        // per-thread shard must cost no more than 2x a counter increment
        // (one bucket scan + three relaxed atomics vs one map update
        // behind the staging lock).
        let mut v = 0u64;
        h.bench("histogram_enabled", || {
            v = (v + 37) % 520;
            trace::histogram("bench.hist_watts", v as f64);
        });
        if let Some((session, root)) = state.take() {
            drop(root);
            let _ = session.finish();
        }
        black_box(n);
    }

    // The contended case the buffered appends exist for: 8 workers each
    // recording 4096 nested spans concurrently. With per-thread staging
    // the workers only meet at batch-flush boundaries instead of on
    // every event.
    {
        let mut session = Some(trace::session(1 << 20));
        let mut n = 0u64;
        h.bench("span_storm_8_threads", || {
            n += 1;
            if n.is_multiple_of(4) {
                let report = session.take().expect("live session").finish();
                assert_eq!(report.dropped, 0, "budget must outlast the recycle cadence");
                session = Some(trace::session(1 << 20));
            }
            let _: Vec<()> = vpp_substrate::par_map((0..8u64).collect(), |w| {
                let _root = span!("bench.worker", worker = w);
                for _ in 0..4096 {
                    let mut s = span!("bench.span", payload = 42u64);
                    s.record("exit_payload", 1.0);
                }
            });
        });
        let _ = session.take().map(trace::Session::finish);
        black_box(n);
    }

    // End-to-end: the fully instrumented executor with tracing disabled
    // ("before") against the same run inside a live session ("after").
    // The disabled number is the one that must match the seed baseline;
    // the ratio documents the cost of turning tracing on.
    let plan = small_workload();
    h.compare(
        "execute_small_job_untraced_vs_traced",
        || run(black_box(&plan), 1, None).runtime_s,
        || {
            let session = trace::session(1 << 18);
            let r = run(black_box(&plan), 1, None).runtime_s;
            let report = session.finish();
            assert_eq!(report.dropped, 0, "ring must hold a full small job");
            r
        },
    );

    // The acceptance workload: a full Si256_hse protocol measurement
    // (single repeat) with tracing disabled vs inside a session. The
    // "before" side is the production configuration — its number is the
    // one that must sit within noise of the pre-instrumentation baseline.
    let bench = benchmarks::si256_hse();
    let ctx = protocol::StudyContext::single();
    let cfg = protocol::RunConfig::nodes(1);
    h.compare(
        "measure_si256_untraced_vs_traced",
        || protocol::measure(black_box(&bench), &cfg, &ctx).runtime_s,
        || {
            let session = trace::session(1 << 20);
            let r = protocol::measure(black_box(&bench), &cfg, &ctx).runtime_s;
            let report = session.finish();
            assert_eq!(report.dropped, 0, "ring must hold a full protocol run");
            r
        },
    );

    h.finish();
}
