//! Shared fixtures for the in-tree benchmark harness ([`vpp_substrate::Harness`]).
//!
//! Each bench in `benches/figures.rs` regenerates one paper table/figure at
//! a *reduced scale* (single protocol repeat, trimmed sweeps) so the whole
//! suite completes in minutes; the `repro` binary runs the full-scale
//! versions. `benches/ablations.rs` measures the design alternatives
//! DESIGN.md calls out, and `benches/substrate.rs` covers the hot paths of
//! the simulation substrate itself.

use vpp_cluster::{execute, JobResult, JobSpec, NetworkModel};
use vpp_core::benchmarks::Benchmark;
use vpp_core::protocol::StudyContext;
use vpp_dft::{build_plan, ParallelLayout, ScfPlan};

/// Single-repeat context used by every figure bench.
#[must_use]
pub fn bench_ctx() -> StudyContext {
    StudyContext::single()
}

/// Build a benchmark's plan at a node count with the bench context.
#[must_use]
pub fn plan(bench: &Benchmark, nodes: usize) -> ScfPlan {
    build_plan(
        &bench.params(),
        &ParallelLayout::nodes(nodes),
        &bench_ctx().cost,
    )
}

/// Run a plan once on a fresh fleet.
#[must_use]
pub fn run(plan: &ScfPlan, nodes: usize, cap_w: Option<f64>) -> JobResult {
    let mut spec = JobSpec::new(nodes);
    spec.gpu_power_cap_w = cap_w;
    execute(plan, &spec, &NetworkModel::perlmutter())
}

/// A compact silicon workload used where the benchmark identity is not the
/// point (substrate and ablation benches).
#[must_use]
pub fn small_workload() -> ScfPlan {
    let mut deck = vpp_dft::Incar::default_deck();
    deck.nelm = 8;
    let p = vpp_dft::SystemParams::derive(&vpp_dft::Supercell::silicon(128), &deck);
    build_plan(&p, &ParallelLayout::nodes(1), &bench_ctx().cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_produce_runnable_plans() {
        let p = small_workload();
        assert!(!p.ops.is_empty());
        let r = run(&p, 1, None);
        assert!(r.runtime_s > 0.0);
    }

    #[test]
    fn capped_fixture_run_applies_cap() {
        let p = small_workload();
        let r = run(&p, 1, Some(150.0));
        let max = r.node_traces[0]
            .gpus
            .iter()
            .filter_map(|g| g.max_power())
            .fold(0.0, f64::max);
        assert!(max <= 150.0 + 1e-9);
    }
}
