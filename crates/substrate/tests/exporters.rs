//! Exporter contracts at the crate boundary: the Prometheus exposition,
//! the JSONL event stream, and the RFC-4180 CSV export of a trace
//! captured across real pool threads.

use vpp_substrate::json;
use vpp_substrate::{par_map, span, trace};

/// A session exercising every exporter-relevant feature: nested spans on
/// several threads, exit fields with CSV/prom-hostile characters,
/// counters, gauges, and marks.
fn recorded() -> trace::TraceReport {
    let session = trace::session(1 << 16);
    {
        let mut root = span!("export.root", benchmark = "Si256_hse", nodes = 4);
        let _: Vec<()> = par_map(vec![0u64, 1, 2, 3], |i| {
            let mut s = span!("export.worker", index = i);
            trace::counter("export.items", 1);
            s.record("note", "quoted \"value\", with, commas\nand a newline");
            trace::gauge("export.last_index", i as f64);
        });
        trace::mark_with("export.mark", || {
            vec![("detail", trace::FieldValue::from("a,b"))]
        });
        root.record("ok", true);
    }
    let report = session.finish();
    report.well_formed().expect("well-formed trace");
    report
}

#[test]
fn prom_exposition_follows_the_text_format() {
    let report = recorded();
    let prom = report.metrics_snapshot().to_prom();
    let name_ok = |n: &str| {
        !n.is_empty()
            && !n.starts_with(|c: char| c.is_ascii_digit())
            && n.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    };
    let mut seen_type_for: Vec<String> = Vec::new();
    for line in prom.lines() {
        assert!(!line.is_empty(), "no blank lines in the exposition");
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let metric = it.next().expect("metric name");
            let kind = it.next().expect("metric kind");
            assert!(name_ok(metric), "bad metric name {metric}");
            assert!(
                ["counter", "gauge", "summary"].contains(&kind),
                "bad kind {kind}"
            );
            seen_type_for.push(metric.to_string());
        } else {
            let metric = line
                .split(['{', ' '])
                .next()
                .expect("sample metric");
            assert!(name_ok(metric), "bad sample name {metric}");
            // Summary samples use the base name plus `_sum` / `_count`.
            assert!(
                seen_type_for.iter().any(|m| {
                    metric == m
                        || metric == format!("{m}_sum")
                        || metric == format!("{m}_count")
                }),
                "sample {metric} appears before its TYPE line"
            );
            let value = line.rsplit(' ').next().expect("sample value");
            assert!(
                value.parse::<f64>().is_ok() || ["+Inf", "-Inf", "NaN"].contains(&value),
                "unparseable sample value {value}"
            );
        }
    }
    assert!(prom.contains("vpp_export_items_total 4"));
    assert!(prom.contains("vpp_export_last_index"));
    assert!(prom.contains("vpp_span_duration_seconds"));
}

#[test]
fn live_counters_are_monotone_while_the_session_runs() {
    let session = trace::session(1 << 12);
    trace::counter("export.ticks", 1);
    let first = session.metrics_snapshot();
    trace::counter("export.ticks", 2);
    let second = session.metrics_snapshot();
    assert_eq!(first.counters["export.ticks"], 1);
    assert_eq!(second.counters["export.ticks"], 3);
    assert!(second.counters["export.ticks"] >= first.counters["export.ticks"]);
    let _ = session.finish();
}

#[test]
fn jsonl_lines_roundtrip_through_the_in_tree_parser() {
    let report = recorded();
    let jsonl = report.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), report.events.len(), "one line per event");
    for (line, event) in lines.iter().zip(&report.events) {
        let parsed = json::parse(line).expect("every line is valid JSON");
        assert_eq!(parsed, event.to_json(), "line differs from the encoding");
        assert_eq!(
            parsed.compact(),
            *line,
            "re-serialising the parse must reproduce the line"
        );
    }
}

/// Minimal RFC-4180 reader: fields separated by commas, quoted fields may
/// contain commas, newlines, and doubled quotes.
fn parse_csv(text: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut row = Vec::new();
    let mut cell = String::new();
    let mut chars = text.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        if quoted {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cell.push('"');
                } else {
                    quoted = false;
                }
            } else {
                cell.push(c);
            }
        } else {
            match c {
                '"' => quoted = true,
                ',' => row.push(std::mem::take(&mut cell)),
                '\n' => {
                    row.push(std::mem::take(&mut cell));
                    rows.push(std::mem::take(&mut row));
                }
                _ => cell.push(c),
            }
        }
    }
    if !cell.is_empty() || !row.is_empty() {
        row.push(cell);
        rows.push(row);
    }
    rows
}

#[test]
fn csv_export_survives_quotes_commas_and_newlines() {
    let report = recorded();
    let csv = report.to_csv();
    let rows = parse_csv(&csv);
    assert_eq!(rows[0][0], "kind", "header row first");
    let ncol = rows[0].len();
    for row in &rows {
        assert_eq!(row.len(), ncol, "ragged row: {row:?}");
    }
    // One span row per span, one mark row per mark — nothing split by the
    // embedded newline in the worker exit field.
    let spans = rows.iter().filter(|r| r[0] == "span").count();
    let marks = rows.iter().filter(|r| r[0] == "mark").count();
    assert_eq!(spans, report.spans().len());
    assert_eq!(marks, report.marks().len());
    let worker = rows
        .iter()
        .find(|r| r[1] == "export.worker")
        .expect("worker row");
    let fields = &worker[ncol - 1];
    assert!(
        fields.contains("quoted \"value\", with, commas\nand a newline"),
        "lossless field payload, got: {fields}"
    );
}
