//! Round-trip property for the JSON value model: `parse(v.pretty()) == v`
//! for arbitrary finite values, including strings full of escapes and
//! astral characters (the `\uXXXX` surrogate-pair path).

use vpp_substrate::json::{parse, Value};
use vpp_substrate::prop::{self, Rng};
use vpp_substrate::properties;

/// Arbitrary string biased toward the characters the serializer must
/// escape and the parser must reassemble: quotes, backslashes, control
/// chars, BMP text, and astral code points (emoji, musical symbols).
fn arb_string(rng: &mut Rng, max_len: usize) -> String {
    let n = rng.index(max_len + 1);
    (0..n)
        .map(|_| match rng.index(12) {
            0 => '"',
            1 => '\\',
            2 => '\n',
            3 => '\t',
            4 => *['\r', '\0', '\x1b', '\u{7f}'].get(rng.index(4)).unwrap(),
            // Just below the surrogate range.
            5 => '\u{d7ff}',
            // Astral plane: exercises the surrogate-pair escape path.
            6 => char::from_u32(0x1_0000 + (rng.next_u64() as u32) % 0xF_0000)
                .unwrap_or('\u{1f600}'),
            7 => '\u{1f600}',
            8 => 'é',
            _ => char::from(b' ' + rng.index(95) as u8),
        })
        .collect()
}

/// Finite numbers spanning integers (the `i64` fast path in `write_num`),
/// small fractions, and large magnitudes near the 1e15 integer cutoff.
fn arb_num(rng: &mut Rng) -> f64 {
    match rng.index(5) {
        0 => rng.index(2_000_001) as f64 - 1_000_000.0,
        1 => rng.uniform(-1.0, 1.0),
        2 => rng.uniform(-1e18, 1e18),
        3 => rng.uniform(0.9e15, 1.1e15) * if rng.index(2) == 0 { -1.0 } else { 1.0 },
        _ => rng.uniform(-2500.0, 2500.0),
    }
}

/// Arbitrary JSON value with bounded depth and fanout.
fn arb_value(rng: &mut Rng, depth: usize) -> Value {
    let choices = if depth == 0 { 4 } else { 6 };
    match rng.index(choices) {
        0 => Value::Null,
        1 => Value::Bool(rng.index(2) == 1),
        2 => Value::Num(arb_num(rng)),
        3 => Value::Str(arb_string(rng, 24)),
        4 => {
            let n = rng.index(5);
            Value::Arr((0..n).map(|_| arb_value(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.index(5);
            Value::Obj(
                (0..n)
                    .map(|i| {
                        // Distinct keys: `get`-based assertions stay
                        // unambiguous and `set` semantics irrelevant.
                        let key = format!("k{i}_{}", arb_string(rng, 8).replace('\0', ""));
                        (key, arb_value(rng, depth - 1))
                    })
                    .collect(),
            )
        }
    }
}

properties! {
    fn parse_pretty_is_identity(rng) {
        let depth = prop::usize_in(rng, 0, 4);
        let v = arb_value(rng, depth);
        let text = v.pretty();
        let back = parse(&text).unwrap_or_else(|e| panic!("failed to re-parse {text:?}: {e}"));
        assert_eq!(back, v, "document was:\n{text}");
    }

    fn parse_pretty_is_identity_for_hostile_strings(rng) {
        let v = Value::Str(arb_string(rng, 200));
        assert_eq!(parse(&v.pretty()).unwrap(), v);
    }
}

#[test]
fn non_finite_numbers_serialize_as_null() {
    // JSON has no NaN/Inf: the writer substitutes null, so the round trip
    // normalises rather than errors. Documented, directed, not part of
    // the identity property.
    for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        assert_eq!(parse(&Value::Num(x).pretty()).unwrap(), Value::Null);
    }
}

#[test]
fn astral_heavy_document_round_trips() {
    let doc = Value::Obj(vec![
        ("emoji".into(), Value::Str("😀🚀🧪".into())),
        ("clef".into(), Value::Str("\u{1d11e}".into())),
        ("mixed".into(), Value::Arr(vec![
            Value::Str("a\"b\\c\n\u{1f600}d".into()),
            Value::Num(-0.125),
        ])),
    ]);
    assert_eq!(parse(&doc.pretty()).unwrap(), doc);
}
