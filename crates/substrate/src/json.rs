//! A minimal JSON value model (no serde).
//!
//! Just enough JSON to write and re-read `BENCH_results.json`: objects keep
//! insertion order, numbers are `f64`, strings escape the mandatory set.
//! DESIGN.md's "no serde" stance stands; this is ~150 lines of std.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Insertion-ordered object.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` elsewhere.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric payload, if any.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// String payload, if any.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array payload, if any.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Insert or replace a member (objects only).
    ///
    /// # Panics
    /// If `self` is not an object.
    pub fn set(&mut self, key: &str, value: Value) {
        let Value::Obj(members) = self else {
            panic!("Value::set on a non-object");
        };
        if let Some(slot) = members.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            members.push((key.to_string(), value));
        }
    }

    /// Serialise with 2-space indentation and a trailing newline.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serialise on one line with no whitespace — the JSONL record shape.
    #[must_use]
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => write_num(out, *x),
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => write_num(out, *x),
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) if items.is_empty() => out.push_str("[]"),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push(']');
            }
            Value::Obj(members) if members.is_empty() => out.push_str("{}"),
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

fn write_num(out: &mut String, x: f64) {
    if x.is_finite() {
        if x == x.trunc() && x.abs() < 1e15 {
            let _ = write!(out, "{}", x as i64);
        } else {
            let _ = write!(out, "{x}");
        }
    } else {
        out.push_str("null"); // JSON has no NaN/Inf
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Accepts exactly one top-level value.
///
/// # Errors
/// A human-readable message with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", char::from(b)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("bad literal at byte {start}"))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = bytes.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = parse_hex4(bytes, pos)?;
                        match hex {
                            // A high surrogate must pair with a following
                            // \uDC00..DFFF to form one astral code point
                            // (JSON strings are UTF-16-escaped; "😀" is
                            // "😀"). The old code fed each half
                            // to char::from_u32 alone, mangling every
                            // astral character into two U+FFFD.
                            0xD800..=0xDBFF => {
                                let paired = bytes.get(*pos) == Some(&b'\\')
                                    && bytes.get(*pos + 1) == Some(&b'u');
                                if paired {
                                    let rewind = *pos;
                                    *pos += 2;
                                    let lo = parse_hex4(bytes, pos)?;
                                    if (0xDC00..=0xDFFF).contains(&lo) {
                                        let cp = 0x10000
                                            + ((hex - 0xD800) << 10)
                                            + (lo - 0xDC00);
                                        out.push(
                                            char::from_u32(cp).unwrap_or('\u{fffd}'),
                                        );
                                    } else {
                                        // Unpaired high surrogate: replace
                                        // it and let the loop re-parse the
                                        // second escape on its own.
                                        *pos = rewind;
                                        out.push('\u{fffd}');
                                    }
                                } else {
                                    out.push('\u{fffd}');
                                }
                            }
                            // A lone low surrogate is not a scalar value.
                            0xDC00..=0xDFFF => out.push('\u{fffd}'),
                            _ => out.push(char::from_u32(hex).unwrap_or('\u{fffd}')),
                        }
                    }
                    other => return Err(format!("unknown escape '\\{}'", char::from(other))),
                }
            }
            _ => {
                // Re-sync on UTF-8 boundaries: walk back one, take the char.
                *pos -= 1;
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err("unterminated string".to_string())
}

/// Read four hex digits at `pos` (the payload of a `\u` escape).
fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let hex = bytes
        .get(*pos..*pos + 4)
        .and_then(|h| std::str::from_utf8(h).ok())
        .and_then(|h| u32::from_str_radix(h, 16).ok())
        .ok_or(format!("bad \\u escape at byte {pos}"))?;
    *pos += 4;
    Ok(hex)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_report_shaped_document() {
        let doc = Value::Obj(vec![
            ("schema".into(), Value::Str("vpp-bench/1".into())),
            (
                "groups".into(),
                Value::Obj(vec![(
                    "substrate".into(),
                    Value::Arr(vec![Value::Obj(vec![
                        ("name".into(), Value::Str("kde_grid".into())),
                        ("median_ns".into(), Value::Num(1234.5)),
                        ("ok".into(), Value::Bool(true)),
                    ])]),
                )]),
            ),
        ]);
        let text = doc.pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(
            back.get("groups")
                .and_then(|g| g.get("substrate"))
                .and_then(Value::as_arr)
                .unwrap()[0]
                .get("median_ns")
                .and_then(Value::as_f64),
            Some(1234.5)
        );
    }

    #[test]
    fn integers_serialize_without_fraction() {
        assert_eq!(Value::Num(42.0).pretty(), "42\n");
        assert_eq!(Value::Num(0.5).pretty(), "0.5\n");
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = Value::Str("a\"b\\c\nd\u{1}é".into());
        assert_eq!(parse(&s.pretty()).unwrap(), s);
    }

    #[test]
    fn surrogate_pairs_decode_to_one_astral_char() {
        // Regression: each half of the pair used to be passed to
        // char::from_u32 on its own, turning every astral character into
        // two U+FFFD.
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Value::Str("\u{1f600}".into())
        );
        assert_eq!(
            parse(r#""x\ud834\udd1ey""#).unwrap(),
            Value::Str("x\u{1d11e}y".into())
        );
        // Astral chars written raw by the serializer re-parse unchanged.
        let s = Value::Str("emoji \u{1f600} and clef \u{1d11e}".into());
        assert_eq!(parse(&s.pretty()).unwrap(), s);
    }

    #[test]
    fn lone_surrogates_become_replacement_chars() {
        // Unpaired low surrogate.
        assert_eq!(
            parse(r#""\ude00""#).unwrap(),
            Value::Str("\u{fffd}".into())
        );
        // Unpaired high surrogate at end of string.
        assert_eq!(
            parse(r#""\ud83d""#).unwrap(),
            Value::Str("\u{fffd}".into())
        );
        // High surrogate followed by a plain char.
        assert_eq!(
            parse(r#""\ud83dz""#).unwrap(),
            Value::Str("\u{fffd}z".into())
        );
        // High surrogate followed by a non-surrogate escape: the second
        // escape must still decode on its own.
        assert_eq!(
            parse(r#""\ud83d\u0041""#).unwrap(),
            Value::Str("\u{fffd}A".into())
        );
        // Two high surrogates then a low one: the first is lone, the
        // second pairs into U+1F600.
        assert_eq!(
            parse(r#""\ud83d\ud83d\ude00""#).unwrap(),
            Value::Str("\u{fffd}\u{1f600}".into())
        );
    }

    #[test]
    fn compact_is_single_line_and_reparses() {
        let doc = Value::Obj(vec![
            ("name".into(), Value::Str("a\"b\nc".into())),
            ("xs".into(), Value::Arr(vec![Value::Num(1.0), Value::Null])),
            ("obj".into(), Value::Obj(vec![("k".into(), Value::Bool(true))])),
            ("empty".into(), Value::Arr(vec![])),
        ]);
        let line = doc.compact();
        assert!(!line.contains('\n'), "compact must be one line: {line}");
        assert_eq!(parse(&line).unwrap(), doc);
        assert_eq!(
            Value::Arr(vec![]).compact() + &Value::Obj(vec![]).compact(),
            "[]{}"
        );
    }

    #[test]
    fn set_replaces_and_appends() {
        let mut obj = Value::Obj(vec![]);
        obj.set("a", Value::Num(1.0));
        obj.set("a", Value::Num(2.0));
        obj.set("b", Value::Null);
        assert_eq!(obj.get("a").unwrap().as_f64(), Some(2.0));
        assert_eq!(obj, parse(r#"{"a": 2, "b": null}"#).unwrap());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
    }
}
