//! Std-only execution substrate for the workspace.
//!
//! The reproduction must build and run with **no external crates** (the
//! target environments resolve dependencies offline), yet the experiment
//! harness wants data parallelism, the test suite wants property-based
//! testing, and the perf trajectory wants a benchmark harness with
//! machine-readable output. This crate provides all three on `std` alone:
//!
//! * [`pool`] — a scoped-thread work pool ([`par_map`] / [`par_map_ref`])
//!   that replaces rayon in the experiment harness. Nested calls degrade to
//!   serial execution so fan-out never oversubscribes the machine.
//! * [`prop`] — a minimal property-test harness and the [`properties!`]
//!   macro that replace proptest: deterministic per-case RNG streams,
//!   failing-case seed reporting, `prop_assume!`-style discards.
//! * [`bench`] — a warmup/iterations/median benchmark harness that replaces
//!   criterion and emits `BENCH_results.json` so before/after numbers are
//!   tracked in-tree.
//! * [`json`] — the tiny JSON value model backing the bench reports.
//! * [`rng`] — the deterministic SplitMix64 generator every stochastic
//!   model ingredient draws from (re-exported by `vpp-sim` for its
//!   historical `vpp_sim::Rng` path).
//! * [`trace`] — a structured tracing + metrics substrate: a thread-safe
//!   bounded recorder (installed per [`trace::session`]) collecting typed
//!   spans ([`span!`]), marks, counters and gauges, with a near-zero-cost
//!   no-op path when no recorder is installed.
//! * [`serve`] — a std-only HTTP/1.1 observability server exposing the
//!   live session over `GET /metrics` (Prometheus text), `/healthz` and
//!   `/trace?format=json|jsonl|csv`, with a leak-free shutdown handle.

pub mod bench;
pub mod json;
pub mod pool;
pub mod prop;
pub mod rng;
pub mod serve;
pub mod trace;

pub use bench::Harness;
pub use pool::{par_map, par_map_ref};
pub use rng::Rng;
