//! Warmup/iterations/median benchmark harness with JSON reporting.
//!
//! The in-tree replacement for criterion: each `[[bench]]` target builds a
//! [`Harness`], registers functions with [`Harness::bench`] (single timing)
//! or [`Harness::compare`] (before/after pair with speedup), and calls
//! [`Harness::finish`], which prints a human-readable table and merges the
//! group's results into a machine-readable `BENCH_results.json`.
//!
//! Methodology: each function is warmed up for a fixed wall budget, then
//! timed in adaptive batches (batch size grows until one batch costs at
//! least ~100 µs, amortising `Instant` overhead for nanosecond-scale
//! bodies); the reported figure is the **median** per-call time over all
//! batches, which is robust to scheduler noise in shared CI. Before/after
//! pairs registered via [`Harness::compare`] are measured in alternating
//! A/B windows so slow machine drift (thermal throttling, a neighbour
//! starting up) cancels between the legs instead of biasing one of them,
//! and the residual first-half/second-half shift is reported as a drift
//! bound next to each speedup.
//!
//! Environment knobs:
//! * `VPP_BENCH_OUT` — path of the JSON report (default
//!   `BENCH_results.json` in the current directory).
//! * `VPP_BENCH_SMOKE` — when set, shrink warmup/measure budgets ~20x so a
//!   full bench binary completes in seconds (used by `scripts/verify.sh`).

use crate::json::{self, Value};
use crate::trace::{self, TraceAggregate};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// One timed entry.
#[derive(Debug, Clone)]
pub struct Entry {
    pub name: String,
    /// Median per-call time, nanoseconds.
    pub median_ns: f64,
    /// Total calls measured (across all batches).
    pub calls: u64,
}

/// A per-benchmark flight-recorder baseline: the whole-run trace aggregate
/// (per-phase wall/sim/energy totals plus counters) and one aggregate per
/// repeat subtree, so a later `vpp trace diff` can bootstrap a paired CI
/// over repeats instead of comparing two opaque top-line numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceBaseline {
    /// Whole-report aggregate (includes session counters).
    pub aggregate: TraceAggregate,
    /// Per-repeat subtree aggregates, ordered by the repeat's `rep` field.
    pub samples: Vec<TraceAggregate>,
    /// Per-span-name relative noise floors (fraction, e.g. `0.05` = ±5 %)
    /// blessed via `vpp trace accept --tolerance`. Trace-diff uses the
    /// override instead of its global floor for that span's continuous
    /// metrics — a deliberate, persisted allowance for a phase that is
    /// expected to drift.
    pub tolerances: BTreeMap<String, f64>,
}

impl TraceBaseline {
    /// Serialise for the `baselines` member of a bench group.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut obj = Value::Obj(vec![
            ("aggregate".into(), self.aggregate.to_json()),
            (
                "samples".into(),
                Value::Arr(self.samples.iter().map(TraceAggregate::to_json).collect()),
            ),
        ]);
        if !self.tolerances.is_empty() {
            obj.set(
                "tolerances",
                Value::Obj(
                    self.tolerances
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Num(*v)))
                        .collect(),
                ),
            );
        }
        obj
    }

    /// Parse a baseline previously written by [`TraceBaseline::to_json`].
    /// The `tolerances` member is optional, so baselines stored before it
    /// existed still load.
    ///
    /// # Errors
    /// Describes the first missing or mistyped member.
    pub fn from_json(v: &Value) -> Result<TraceBaseline, String> {
        let aggregate = TraceAggregate::from_json(
            v.get("aggregate").ok_or("baseline: missing 'aggregate'")?,
        )?;
        let samples = v
            .get("samples")
            .and_then(Value::as_arr)
            .ok_or("baseline: missing 'samples' array")?
            .iter()
            .map(TraceAggregate::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let mut tolerances = BTreeMap::new();
        if let Some(Value::Obj(members)) = v.get("tolerances") {
            for (k, t) in members {
                let n = t
                    .as_f64()
                    .ok_or_else(|| format!("baseline tolerance '{k}': not a number"))?;
                tolerances.insert(k.clone(), n);
            }
        }
        Ok(TraceBaseline {
            aggregate,
            samples,
            tolerances,
        })
    }
}

/// Load one benchmark's stored [`TraceBaseline`] from a bench report
/// written by [`Harness::finish`].
///
/// # Errors
/// If the file is missing/unparseable or the group/benchmark has no
/// baseline recorded.
pub fn load_baseline(path: &str, group: &str, name: &str) -> Result<TraceBaseline, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let report = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let entry = report
        .get("groups")
        .and_then(|g| g.get(group))
        .and_then(|g| g.get("baselines"))
        .and_then(|b| b.get(name))
        .ok_or_else(|| {
            format!("{path}: no baseline for '{name}' in group '{group}' — run the baselines bench first")
        })?;
    TraceBaseline::from_json(entry)
}

/// Write (or overwrite) one benchmark's [`TraceBaseline`] inside a bench
/// report, creating the file, the group and its `baselines` member as
/// needed — the in-place blessing behind `vpp trace accept`, sharing the
/// merge-don't-clobber discipline of [`Harness::finish`].
///
/// # Errors
/// If an existing file is unreadable/invalid JSON or the write fails.
pub fn store_baseline(
    path: &str,
    group: &str,
    name: &str,
    baseline: &TraceBaseline,
) -> Result<(), String> {
    let mut report = match std::fs::read_to_string(path) {
        Ok(text) => json::parse(&text).map_err(|e| format!("existing {path}: {e}"))?,
        Err(_) => Value::Obj(vec![
            ("schema".into(), Value::Str("vpp-bench/1".into())),
            ("groups".into(), Value::Obj(vec![])),
        ]),
    };
    if report.get("groups").is_none() {
        report.set("groups", Value::Obj(vec![]));
    }
    let Value::Obj(members) = &mut report else {
        return Err(format!("{path}: report is not a JSON object"));
    };
    let groups = members
        .iter_mut()
        .find(|(k, _)| k == "groups")
        .map(|(_, v)| v)
        .expect("inserted above");
    let Value::Obj(groups) = groups else {
        return Err(format!("{path}: 'groups' is not an object"));
    };
    if !groups.iter().any(|(k, _)| k == group) {
        groups.push((group.to_string(), Value::Obj(vec![])));
    }
    let slot = groups
        .iter_mut()
        .find(|(k, _)| k == group)
        .map(|(_, v)| v)
        .expect("inserted above");
    let Value::Obj(group_members) = slot else {
        return Err(format!("{path}: group '{group}' is not an object"));
    };
    if !group_members.iter().any(|(k, _)| k == "baselines") {
        group_members.push(("baselines".to_string(), Value::Obj(vec![])));
    }
    let baselines = group_members
        .iter_mut()
        .find(|(k, _)| k == "baselines")
        .map(|(_, v)| v)
        .expect("inserted above");
    let Value::Obj(baselines) = baselines else {
        return Err(format!("{path}: '{group}.baselines' is not an object"));
    };
    if let Some(entry) = baselines.iter_mut().find(|(k, _)| k == name) {
        entry.1 = baseline.to_json();
    } else {
        baselines.push((name.to_string(), baseline.to_json()));
    }
    std::fs::write(path, report.pretty()).map_err(|e| format!("cannot write {path}: {e}"))
}

/// One before/after comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    pub name: String,
    pub before_ns: f64,
    pub after_ns: f64,
    /// `before / after` — >1 means the new path is faster.
    pub speedup: f64,
    /// Machine-drift bound: the worse of the two legs' relative shift
    /// between the first and second half of its interleaved measurement
    /// windows (fraction of the leg median). A speedup is only as
    /// trustworthy as this is small — a 1.3x on a machine drifting ±40 %
    /// is noise, the same 1.3x at ±2 % is real.
    pub drift: f64,
}

/// A named benchmark group being recorded.
pub struct Harness {
    group: String,
    warmup: Duration,
    measure: Duration,
    entries: Vec<Entry>,
    comparisons: Vec<Comparison>,
    baselines: Vec<(String, TraceBaseline)>,
}

impl Harness {
    /// Start a group, reading budgets from the environment.
    #[must_use]
    pub fn new(group: &str) -> Self {
        let smoke = std::env::var_os("VPP_BENCH_SMOKE").is_some();
        let (warmup_ms, measure_ms) = if smoke { (15, 60) } else { (300, 1200) };
        eprintln!(
            "bench group '{group}' ({} mode: {warmup_ms} ms warmup, {measure_ms} ms measure)",
            if smoke { "smoke" } else { "full" }
        );
        Self {
            group: group.to_string(),
            warmup: Duration::from_millis(warmup_ms),
            measure: Duration::from_millis(measure_ms),
            entries: Vec::new(),
            comparisons: Vec::new(),
            baselines: Vec::new(),
        }
    }

    /// Time one function and record it.
    pub fn bench<R, F: FnMut() -> R>(&mut self, name: &str, f: F) {
        let (median_ns, calls) = self.time(f);
        eprintln!("  {name:<44} {:>12}", fmt_ns(median_ns));
        self.entries.push(Entry {
            name: name.to_string(),
            median_ns,
            calls,
        });
    }

    /// Time one function and additionally record its flight-recorder
    /// baseline: `f` is timed untraced as usual, then run once inside a
    /// trace session whose report is rolled up into a [`TraceBaseline`]
    /// (whole-run aggregate plus one per-repeat sample for every
    /// `sample_span` subtree, e.g. `"protocol.repeat"`). The baseline is
    /// written under the group's `baselines` member by
    /// [`Harness::finish`], where `vpp trace diff` finds it.
    pub fn bench_traced<R, F: FnMut() -> R>(
        &mut self,
        name: &str,
        sample_span: &'static str,
        mut f: F,
    ) {
        self.bench(name, &mut f);
        let session = trace::session(1 << 22);
        std::hint::black_box(f());
        let report = session.finish();
        assert_eq!(
            report.dropped, 0,
            "baseline trace for '{name}' overflowed its event budget"
        );
        let baseline = TraceBaseline {
            aggregate: report.aggregate(),
            samples: report.aggregates_under(sample_span),
            tolerances: BTreeMap::new(),
        };
        eprintln!(
            "  {name:<44} baseline: {} span kinds, {} repeat sample(s)",
            baseline.aggregate.spans.len(),
            baseline.samples.len()
        );
        self.baselines.push((name.to_string(), baseline));
    }

    /// Time a before/after pair and record the speedup.
    ///
    /// The two legs are **interleaved**: after a per-leg warmup, the
    /// measurement budget is split into [`COMPARE_WINDOWS`] alternating
    /// A/B windows (A B A B …) instead of timing all of `before` and then
    /// all of `after`. A frequency ramp, thermal throttle or noisy
    /// neighbour mid-run now hits both legs roughly equally rather than
    /// silently inflating whichever leg ran second. Each leg's figure is
    /// the median of its per-window medians, and the residual
    /// first-half/second-half shift is reported as [`Comparison::drift`]
    /// next to the speedup.
    pub fn compare<RB, RA>(
        &mut self,
        name: &str,
        mut before: impl FnMut() -> RB,
        mut after: impl FnMut() -> RA,
    ) {
        let before_batch = self.warm(&mut before);
        let after_batch = self.warm(&mut after);
        let window = self.measure / (2 * COMPARE_WINDOWS as u32);
        let mut before_windows = Vec::with_capacity(COMPARE_WINDOWS);
        let mut after_windows = Vec::with_capacity(COMPARE_WINDOWS);
        for _ in 0..COMPARE_WINDOWS {
            before_windows.push(measure_window(&mut before, before_batch, window));
            after_windows.push(measure_window(&mut after, after_batch, window));
        }
        let before_ns = median(before_windows.clone());
        let after_ns = median(after_windows.clone());
        let drift = half_drift(&before_windows).max(half_drift(&after_windows));
        let speedup = before_ns / after_ns;
        eprintln!(
            "  {name:<44} {:>12} -> {:>12}  ({speedup:.1}x, drift ±{:.1}%)",
            fmt_ns(before_ns),
            fmt_ns(after_ns),
            drift * 100.0,
        );
        self.comparisons.push(Comparison {
            name: name.to_string(),
            before_ns,
            after_ns,
            speedup,
            drift,
        });
    }

    /// Warm one function for the harness's warmup budget and return the
    /// batch size to amortise `Instant` overhead (grown until one batch
    /// costs at least ~100 µs).
    fn warm<R, F: FnMut() -> R>(&self, f: &mut F) -> u64 {
        let mut batch: u64 = 1;
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warmup {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            if t.elapsed() < Duration::from_micros(100) && batch < 1 << 24 {
                batch *= 2;
            }
        }
        batch
    }

    /// Median per-call nanoseconds and total call count.
    fn time<R, F: FnMut() -> R>(&self, mut f: F) -> (f64, u64) {
        // Warmup, establishing an initial batch size along the way.
        let batch = self.warm(&mut f);
        // Measure: per-batch mean per-call times; report their median.
        let mut per_call: Vec<f64> = Vec::new();
        let mut calls = 0u64;
        let run_start = Instant::now();
        while run_start.elapsed() < self.measure || per_call.len() < 5 {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            per_call.push(t.elapsed().as_nanos() as f64 / batch as f64);
            calls += batch;
            if per_call.len() > 10_000 {
                break; // pathological: body faster than the budget resolution
            }
        }
        per_call.sort_by(f64::total_cmp);
        (per_call[per_call.len() / 2], calls)
    }

    /// Print the group summary and merge it into the JSON report.
    ///
    /// # Panics
    /// If the report file exists but is unreadable or not valid JSON.
    pub fn finish(self) {
        let path = std::env::var("VPP_BENCH_OUT")
            .unwrap_or_else(|_| "BENCH_results.json".to_string());
        let mut report = match std::fs::read_to_string(&path) {
            Ok(text) => json::parse(&text)
                .unwrap_or_else(|e| panic!("existing {path} is not valid JSON: {e}")),
            Err(_) => Value::Obj(vec![
                ("schema".into(), Value::Str("vpp-bench/1".into())),
                ("groups".into(), Value::Obj(vec![])),
            ]),
        };
        let entries = Value::Arr(
            self.entries
                .iter()
                .map(|e| {
                    Value::Obj(vec![
                        ("name".into(), Value::Str(e.name.clone())),
                        ("median_ns".into(), Value::Num(e.median_ns)),
                        ("calls".into(), Value::Num(e.calls as f64)),
                    ])
                })
                .collect(),
        );
        let comparisons = Value::Arr(
            self.comparisons
                .iter()
                .map(|c| {
                    Value::Obj(vec![
                        ("name".into(), Value::Str(c.name.clone())),
                        ("before_ns".into(), Value::Num(c.before_ns)),
                        ("after_ns".into(), Value::Num(c.after_ns)),
                        ("speedup".into(), Value::Num(c.speedup)),
                        ("drift".into(), Value::Num(c.drift)),
                    ])
                })
                .collect(),
        );
        let mut group = Value::Obj(vec![
            ("entries".into(), entries),
            ("comparisons".into(), comparisons),
        ]);
        if !self.baselines.is_empty() {
            group.set(
                "baselines",
                Value::Obj(
                    self.baselines
                        .iter()
                        .map(|(name, b)| (name.clone(), b.to_json()))
                        .collect(),
                ),
            );
        }
        if report.get("groups").is_none() {
            report.set("groups", Value::Obj(vec![]));
        }
        let groups = match &mut report {
            Value::Obj(m) => m.iter_mut().find(|(k, _)| k == "groups").map(|(_, v)| v),
            _ => None,
        };
        let members = match groups {
            Some(Value::Obj(members)) => members,
            _ => panic!("{path}: 'groups' is not an object"),
        };
        if let Some(slot) = members.iter_mut().find(|(k, _)| *k == self.group) {
            slot.1 = group;
        } else {
            members.push((self.group.clone(), group));
        }
        std::fs::write(&path, report.pretty())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("bench group '{}' written to {path}", self.group);
    }
}

/// Alternating measurement windows per leg in [`Harness::compare`]. Even,
/// so the first-half/second-half drift split is balanced.
const COMPARE_WINDOWS: usize = 8;

/// Run batches of `f` until `budget` elapses (at least one) and return the
/// median per-call nanoseconds observed inside this window.
fn measure_window<R, F: FnMut() -> R>(f: &mut F, batch: u64, budget: Duration) -> f64 {
    let mut per_call: Vec<f64> = Vec::new();
    let start = Instant::now();
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        per_call.push(t.elapsed().as_nanos() as f64 / batch as f64);
        if start.elapsed() >= budget || per_call.len() > 2_000 {
            break;
        }
    }
    median(per_call)
}

fn median(mut xs: Vec<f64>) -> f64 {
    assert!(!xs.is_empty(), "median of no samples");
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Relative shift between the first and second half of a leg's window
/// medians, as a fraction of the leg's overall median: the residual
/// machine drift the interleaving did not cancel.
fn half_drift(windows: &[f64]) -> f64 {
    if windows.len() < 2 {
        return 0.0;
    }
    let mid = windows.len() / 2;
    let early = median(windows[..mid].to_vec());
    let late = median(windows[mid..].to_vec());
    let overall = median(windows.to_vec());
    if overall > 0.0 {
        (late - early).abs() / overall
    } else {
        0.0
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that point VPP_BENCH_OUT at their own temp file.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn smoke_harness(group: &str) -> Harness {
        Harness {
            group: group.to_string(),
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
            entries: Vec::new(),
            comparisons: Vec::new(),
            baselines: Vec::new(),
        }
    }

    #[test]
    fn timing_is_positive_and_ordered() {
        let mut h = smoke_harness("t");
        h.bench("cheap", || 1 + 1);
        h.bench("costly", || (0..20_000).map(|i| i as f64).sum::<f64>());
        assert!(h.entries[0].median_ns > 0.0);
        assert!(
            h.entries[1].median_ns > h.entries[0].median_ns,
            "20k-element sum must cost more than an add: {:?}",
            h.entries
        );
    }

    #[test]
    fn compare_reports_speedup_direction() {
        let mut h = smoke_harness("t");
        h.compare(
            "sum",
            || (0..50_000).map(|i| i as f64).sum::<f64>(),
            || (0..500).map(|i| i as f64).sum::<f64>(),
        );
        assert!(h.comparisons[0].speedup > 1.0, "{:?}", h.comparisons);
        let drift = h.comparisons[0].drift;
        assert!(drift.is_finite() && drift >= 0.0, "{:?}", h.comparisons);
    }

    #[test]
    fn half_drift_measures_relative_shift() {
        // Flat windows: no drift.
        assert!(half_drift(&[10.0, 10.0, 10.0, 10.0]) < 1e-12);
        // Second half 20 % slower than the first.
        let d = half_drift(&[10.0, 10.0, 12.0, 12.0]);
        assert!((d - 2.0 / 12.0).abs() < 1e-12, "{d}");
        assert_eq!(half_drift(&[10.0]), 0.0);
    }

    #[test]
    fn finish_merges_groups_into_one_report() {
        let dir = std::env::temp_dir().join(format!("vpp_bench_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_results.json");
        let _ = std::fs::remove_file(&path);
        let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::set_var("VPP_BENCH_OUT", &path);

        let mut a = smoke_harness("alpha");
        a.bench("x", || 0);
        a.finish();
        let mut b = smoke_harness("beta");
        b.compare("y", || 0, || 0);
        b.finish();
        // Re-running a group replaces it rather than duplicating.
        let mut a2 = smoke_harness("alpha");
        a2.bench("x", || 0);
        a2.finish();

        let report = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let groups = report.get("groups").unwrap();
        let Value::Obj(members) = groups else { panic!() };
        assert_eq!(members.len(), 2, "alpha replaced, beta kept");
        let alpha = groups.get("alpha").unwrap();
        assert_eq!(
            alpha.get("entries").unwrap().as_arr().unwrap()[0]
                .get("name")
                .unwrap()
                .as_str(),
            Some("x")
        );
        let beta = groups.get("beta").unwrap();
        assert!(
            beta.get("comparisons").unwrap().as_arr().unwrap()[0]
                .get("speedup")
                .unwrap()
                .as_f64()
                .is_some()
        );
        std::env::remove_var("VPP_BENCH_OUT");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bench_traced_stores_a_loadable_baseline() {
        let dir = std::env::temp_dir().join(format!("vpp_baseline_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_baseline.json");
        let _ = std::fs::remove_file(&path);

        let mut h = smoke_harness("trace_baselines");
        h.bench_traced("toy", "toy.rep", || {
            // Only the traced run records spans; the timing runs see a
            // disabled recorder and stay silent.
            for rep in 0..3u64 {
                let _r = crate::span!("toy.rep", rep = rep);
                let mut p = crate::span!("toy.phase", sim_t0 = 0.0);
                p.record("sim_t1", 2.0);
                p.record("energy_j", 5.0);
            }
            trace::counter("toy.ticks", 1);
        });
        assert_eq!(h.baselines.len(), 1);
        let b = &h.baselines[0].1;
        assert_eq!(b.samples.len(), 3);
        assert_eq!(b.aggregate.span("toy.phase").unwrap().count, 3);
        assert!((b.aggregate.span("toy.phase").unwrap().energy_j - 15.0).abs() < 1e-9);

        // Round-trips through finish() + load_baseline().
        let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::set_var("VPP_BENCH_OUT", &path);
        let expected = b.clone();
        h.finish();
        std::env::remove_var("VPP_BENCH_OUT");
        let loaded =
            load_baseline(path.to_str().unwrap(), "trace_baselines", "toy").unwrap();
        assert_eq!(loaded, expected);
        assert!(load_baseline(path.to_str().unwrap(), "trace_baselines", "missing").is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn store_baseline_blesses_in_place_with_tolerances() {
        let dir = std::env::temp_dir().join(format!("vpp_store_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_store.json");
        let _ = std::fs::remove_file(&path);
        let path = path.to_str().unwrap().to_string();

        let s = trace::session(256);
        {
            let mut p = crate::span!("phase.scf_iter", sim_t0 = 0.0);
            p.record("sim_t1", 2.5);
        }
        trace::counter("toy.ticks", 7);
        let agg = s.finish().aggregate();
        let mut baseline = TraceBaseline {
            aggregate: agg.clone(),
            samples: vec![agg],
            tolerances: BTreeMap::new(),
        };
        baseline
            .tolerances
            .insert("phase.scf_iter".to_string(), 0.05);

        // Creates file + group + member from nothing.
        store_baseline(&path, "trace_baselines", "toy", &baseline).unwrap();
        let loaded = load_baseline(&path, "trace_baselines", "toy").unwrap();
        assert_eq!(loaded, baseline);
        assert!((loaded.tolerances["phase.scf_iter"] - 0.05).abs() < 1e-12);

        // Re-blessing overwrites in place without duplicating members,
        // and leaves sibling baselines untouched.
        store_baseline(&path, "trace_baselines", "other", &baseline).unwrap();
        let mut updated = baseline.clone();
        updated.tolerances.insert("job.collective".to_string(), 0.10);
        store_baseline(&path, "trace_baselines", "toy", &updated).unwrap();
        assert_eq!(
            load_baseline(&path, "trace_baselines", "toy").unwrap(),
            updated
        );
        assert_eq!(
            load_baseline(&path, "trace_baselines", "other").unwrap(),
            baseline
        );
        let _ = std::fs::remove_file(&path);
    }
}
