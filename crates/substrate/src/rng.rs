//! Deterministic pseudo-random number generation.
//!
//! The experiment protocol in the paper runs every benchmark five times and
//! selects the fastest run (§III-B.1). To make those repeats — and every
//! stochastic model ingredient (manufacturing variability, telemetry sample
//! drops, network jitter) — reproducible independent of platform or external
//! crate versions, we use a self-contained SplitMix64 generator. SplitMix64
//! passes BigCrush, is trivially seedable, and supports cheap stream forking,
//! which we use to give each node/GPU/subsystem an independent substream.

/// SplitMix64 pseudo-random number generator.
///
/// Not cryptographically secure; used only for simulation stochasticity.
///
/// ```
/// use vpp_substrate::Rng;
///
/// let mut a = Rng::new(7);
/// let mut b = Rng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let x = a.uniform(0.0, 1.0);
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
    /// Cached second output of the Box-Muller transform.
    spare_normal: Option<u64>,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a seed. Equal seeds yield equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            state: mix(seed ^ GOLDEN_GAMMA),
            spare_normal: None,
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix(self.state)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`. Requires `lo <= hi` and both finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi && lo.is_finite() && hi.is_finite());
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng::index called with n = 0");
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // small `n` used in simulation (« 2^32).
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli trial with probability `p` of `true`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal via Box-Muller (polar-free form); deterministic.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(bits) = self.spare_normal.take() {
            return f64::from_bits(bits);
        }
        // Avoid u1 == 0 so ln is finite.
        let u1 = ((self.next_u64() >> 11) as f64 + 1.0) * (1.0 / (1u64 << 53) as f64);
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        let (s, c) = theta.sin_cos();
        self.spare_normal = Some((r * s).to_bits());
        r * c
    }

    /// Normal with mean `mu` and standard deviation `sigma >= 0`.
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        debug_assert!(sigma >= 0.0);
        mu + sigma * self.standard_normal()
    }

    /// Normal clamped to `[lo, hi]` (simple clipping; adequate for the mild
    /// variability distributions used by the hardware models).
    pub fn normal_clamped(&mut self, mu: f64, sigma: f64, lo: f64, hi: f64) -> f64 {
        self.normal(mu, sigma).clamp(lo, hi)
    }

    /// Log-normal with the given *underlying* normal parameters.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Fork an independent substream labelled by `stream`.
    ///
    /// Children with distinct labels (or from distinct parents) produce
    /// independent sequences; the parent's own stream is unaffected.
    #[must_use]
    pub fn fork(&self, stream: u64) -> Rng {
        Rng::new(mix(self.state ^ mix(stream ^ 0xA076_1D64_78BD_642F)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.uniform(-2.5, 9.0);
            assert!((-2.5..9.0).contains(&x));
        }
    }

    #[test]
    fn index_covers_range() {
        let mut r = Rng::new(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.index(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "n = 0")]
    fn index_zero_panics() {
        Rng::new(0).index(0);
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = Rng::new(99);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| r.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.02, "var = {var}");
    }

    #[test]
    fn normal_clamped_respects_bounds() {
        let mut r = Rng::new(5);
        for _ in 0..10_000 {
            let x = r.normal_clamped(0.0, 10.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn lognormal_is_positive() {
        let mut r = Rng::new(17);
        for _ in 0..1_000 {
            assert!(r.lognormal(0.0, 0.5) > 0.0);
        }
    }

    #[test]
    fn forked_streams_are_independent_and_stable() {
        let parent = Rng::new(1234);
        let mut c1 = parent.fork(0);
        let mut c2 = parent.fork(1);
        let mut c1_again = parent.fork(0);
        let a: Vec<u64> = (0..16).map(|_| c1.next_u64()).collect();
        let b: Vec<u64> = (0..16).map(|_| c2.next_u64()).collect();
        let a_again: Vec<u64> = (0..16).map(|_| c1_again.next_u64()).collect();
        assert_eq!(a, a_again, "same label must reproduce the same stream");
        assert_ne!(a, b, "distinct labels must differ");
    }

    #[test]
    fn bool_probability_roughly_matches() {
        let mut r = Rng::new(8);
        let hits = (0..100_000).filter(|_| r.bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac = {frac}");
    }
}
