//! Structured tracing and metrics for the simulator stack.
//!
//! Every layer of the reproduction — the DES engine, the cluster executor,
//! the SCF planner, the power-cap controller, the telemetry pipeline and the
//! §III-B measurement protocol — emits *typed spans*, *marks*, *counters*
//! and *gauges* through this module. Instrumentation is compiled in
//! unconditionally but costs a single relaxed atomic load when no recorder
//! is installed, so the hot paths (event delivery, per-op execution) stay at
//! their benchmarked throughput unless a trace session is active.
//!
//! # Model
//!
//! * A **span** is a named interval with enter/exit timestamps, a parent
//!   link (thread-local nesting) and a bag of typed fields. Open one with
//!   the [`span!`](crate::span) macro; it closes when the guard drops.
//! * A **mark** is a point event ([`mark`] / [`mark_with`]).
//! * A **counter** is a monotonically accumulated `u64` ([`counter`]);
//!   a **gauge** is a last-value-wins `f64` ([`gauge`]). Neither consumes
//!   ring-buffer capacity.
//! * A **histogram** is a fixed-bucket distribution ([`histogram`] /
//!   the [`histogram!`](crate::histogram) macro): per-metric static
//!   bucket bounds, lock-free per-thread shards folded at snapshot time,
//!   rendered as cumulative `_bucket`/`_sum`/`_count` Prometheus series.
//!   Like counters, histograms never consume ring-buffer capacity.
//!
//! Alongside the per-session recorder there is one process-wide,
//! budget-bounded **log journal** ([`log_event!`](crate::log_event)):
//! leveled records in severity-partitioned buffers with per-level drop
//! accounting, read back exactly-once via [`logs_after`] cursors (the
//! serve module's `GET /logs`).
//!
//! A session installs one process-global recorder with a bounded event
//! budget (overflow drops the newest events and counts them, so a
//! truncated trace is detectable rather than silently misleading).
//! Events are staged in **thread-local buffers** and flushed in bulk —
//! when a buffer fills, when a thread's outermost span for the session
//! closes, and at [`Session::finish`] — so the enabled path costs one
//! uncontended lock per event instead of serialising every instrumented
//! thread on a global ring mutex. Sessions are serialised on a static
//! mutex: parallel tests each get an exclusive, uncontaminated window.
//!
//! # Flight-recorder surface
//!
//! A finished session yields a [`TraceReport`]; beyond the raw events it
//! offers [`TraceReport::aggregate`] / [`TraceReport::aggregates_under`]
//! (per-phase wall/sim/energy roll-ups used as bench baselines and by the
//! `vpp trace diff` regression triage), [`TraceReport::to_jsonl`] (one
//! event per line, re-parseable by [`crate::json::parse`]) and
//! [`TraceReport::metrics_snapshot`] → [`MetricsSnapshot::to_prom`]
//! (Prometheus text exposition for scrapers).
//!
//! ```
//! use vpp_substrate::{span, trace};
//!
//! let session = trace::session(1024);
//! {
//!     let mut root = span!("demo.root", nodes = 4, cap_w = 400.0);
//!     trace::counter("demo.events", 3);
//!     root.record("converged", true);
//! }
//! let report = session.finish();
//! assert_eq!(report.spans().len(), 1);
//! assert_eq!(report.counters["demo.events"], 3);
//! assert!(report.well_formed().is_ok());
//! ```

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError, RwLock};
use std::time::Instant;

use crate::json::Value;

/// A typed field value attached to a span, mark, or report row.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Boolean flag.
    Bool(bool),
    /// Unsigned integer (counts, byte sizes, indices).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (seconds, watts, joules).
    F64(f64),
    /// Short free-form string (benchmark names, verdict labels).
    Str(String),
}

impl FieldValue {
    /// Numeric view of the value, if it has one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FieldValue::U64(x) => Some(*x as f64),
            FieldValue::I64(x) => Some(*x as f64),
            FieldValue::F64(x) => Some(*x),
            FieldValue::Bool(_) | FieldValue::Str(_) => None,
        }
    }

    /// String view of the value, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }

    fn to_json(&self) -> Value {
        match self {
            FieldValue::Bool(b) => Value::Bool(*b),
            FieldValue::U64(x) => Value::Num(*x as f64),
            FieldValue::I64(x) => Value::Num(*x as f64),
            FieldValue::F64(x) => Value::Num(*x),
            FieldValue::Str(s) => Value::Str(s.clone()),
        }
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::Bool(b) => write!(f, "{b}"),
            FieldValue::U64(x) => write!(f, "{x}"),
            FieldValue::I64(x) => write!(f, "{x}"),
            FieldValue::F64(x) => write!(f, "{x}"),
            FieldValue::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(i64::from(v))
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// A `(key, value)` pair attached to an event.
pub type Field = (&'static str, FieldValue);

/// What a raw [`Event`] records.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span opened. `parent` is the enclosing span on the same thread in
    /// the same session, if any.
    Enter {
        /// Process-unique span id.
        span: u64,
        /// Enclosing span id, if nested.
        parent: Option<u64>,
    },
    /// A span closed; `fields` on the event carry values recorded via
    /// [`SpanGuard::record`].
    Exit {
        /// Span id being closed.
        span: u64,
    },
    /// A point event.
    Mark,
}

/// One raw entry in the recorder's event log.
#[derive(Debug, Clone)]
pub struct Event {
    /// Static event name (dot-separated vocabulary, e.g. `"scf.iter"`).
    pub name: &'static str,
    /// Per-session admission sequence number (0-based, assigned from the
    /// recorder's admission ticket at [`Recorder::push`] time). Within a
    /// session, `seq` is unique and — below the event budget — dense, so a
    /// cursor (`/jobs/<id>/trace?after=SEQ`) can resume a stream exactly
    /// where the previous chunk stopped.
    pub seq: u64,
    /// Nanoseconds since the session started.
    pub t_ns: u64,
    /// Small per-session thread ordinal (0 = first thread seen).
    pub thread: u32,
    /// Enter / Exit / Mark.
    pub kind: EventKind,
    /// Typed payload.
    pub fields: Vec<Field>,
}

impl Event {
    /// Canonical JSON encoding — the line format of
    /// [`TraceReport::to_jsonl`]. Re-parsing the encoding with
    /// [`crate::json::parse`] yields a structurally equal value, so the
    /// JSONL stream round-trips through the in-tree parser.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let kind = match self.kind {
            EventKind::Enter { .. } => "enter",
            EventKind::Exit { .. } => "exit",
            EventKind::Mark => "mark",
        };
        let mut obj = vec![
            ("kind".to_string(), Value::Str(kind.to_string())),
            ("name".to_string(), Value::Str(self.name.to_string())),
            ("seq".to_string(), Value::Num(self.seq as f64)),
            ("t_ns".to_string(), Value::Num(self.t_ns as f64)),
            ("thread".to_string(), Value::Num(f64::from(self.thread))),
        ];
        match self.kind {
            EventKind::Enter { span, parent } => {
                obj.push(("span".to_string(), Value::Num(span as f64)));
                if let Some(p) = parent {
                    obj.push(("parent".to_string(), Value::Num(p as f64)));
                }
            }
            EventKind::Exit { span } => {
                obj.push(("span".to_string(), Value::Num(span as f64)));
            }
            EventKind::Mark => {}
        }
        obj.push((
            "fields".to_string(),
            Value::Obj(
                self.fields
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), v.to_json()))
                    .collect(),
            ),
        ));
        Value::Obj(obj)
    }
}

/// Events a thread stages before a bulk flush to the central log.
const FLUSH_BATCH: usize = 256;

type EventBuffer = Arc<Mutex<Vec<Event>>>;

/// The installed recorder backing one [`Session`].
struct Recorder {
    id: u64,
    start: Instant,
    /// Maximum events the session will admit.
    cap: usize,
    /// Events admitted so far (ticket counter; tickets ≥ `cap` drop).
    admitted: AtomicU64,
    dropped: AtomicU64,
    /// Flushed event batches (per-thread subsequences stay ordered).
    central: Mutex<Vec<Event>>,
    /// Every thread-local staging buffer opened for this session, so
    /// `finish` can drain stragglers without thread cooperation.
    buffers: Mutex<Vec<EventBuffer>>,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, f64>>,
    /// Every per-thread histogram shard opened for this session, so a
    /// snapshot can fold them without thread cooperation.
    hist_shards: Mutex<Vec<Arc<HistogramShard>>>,
    threads: Mutex<Vec<std::thread::ThreadId>>,
}

impl Recorder {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Stage an event in this thread's buffer, flushing opportunistically.
    /// Single TL access, no per-event `Arc` traffic, and the staging `Vec`
    /// keeps its capacity across flushes — the steady-state cost is one
    /// uncontended lock and a `Vec` push.
    ///
    /// The admission ticket doubles as the event's sequence number: every
    /// admitted event gets a unique `seq` strictly below `cap`, so a seq
    /// missing from a snapshot below the cap can only be an in-flight
    /// event (ticket taken, not yet staged) — the invariant the cursor
    /// reader ([`Recorder::events_after`]) relies on to never skip one.
    fn push(&self, mut ev: Event) {
        let ticket = self.admitted.fetch_add(1, Ordering::Relaxed);
        if ticket >= self.cap as u64 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        ev.seq = ticket;
        TL_BUFFER.with(|slot| {
            let mut slot = slot.borrow_mut();
            if !matches!(slot.as_ref(), Some((sid, _)) if *sid == self.id) {
                let buf: EventBuffer = Arc::new(Mutex::new(Vec::with_capacity(FLUSH_BATCH)));
                lock(&self.buffers).push(Arc::clone(&buf));
                *slot = Some((self.id, buf));
            }
            let (_, buf) = slot.as_ref().expect("installed above");
            let mut staged = lock(buf);
            staged.push(ev);
            if staged.len() >= FLUSH_BATCH {
                // Drain (not take): the staging allocation survives the
                // flush, so steady state never touches the allocator.
                lock(&self.central).extend(staged.drain(..));
            }
        });
    }

    /// Move this thread's staged events into the central log.
    fn flush_current_thread(&self) {
        TL_BUFFER.with(|slot| {
            if let Some((sid, buf)) = slot.borrow().as_ref() {
                if *sid == self.id {
                    let mut staged = lock(buf);
                    if !staged.is_empty() {
                        lock(&self.central).extend(staged.drain(..));
                    }
                }
            }
        });
    }

    /// Record `n` observations of `value` into the named histogram.
    ///
    /// Steady state is lock-free: each thread owns one shard per metric
    /// per session (cached in `TL_HIST`), and recording is a handful of
    /// relaxed atomic bumps on that shard. The recorder's shard registry
    /// is only locked the first time a thread touches a metric.
    fn observe_histogram(&self, name: &'static str, value: f64, n: u64, bounds: &'static [f64]) {
        TL_HIST.with(|slot| {
            let mut slot = slot.borrow_mut();
            let (sid, shards) = slot.get_or_insert_with(|| (self.id, Vec::new()));
            if *sid != self.id {
                // The thread moved to a different session: the old cache
                // entries belong to a recorder we no longer write to.
                *sid = self.id;
                shards.clear();
            }
            if let Some(sh) = shards.iter().find(|s| s.name == name) {
                sh.observe_n(value, n);
                return;
            }
            let sh = Arc::new(HistogramShard::new(name, bounds));
            lock(&self.hist_shards).push(Arc::clone(&sh));
            sh.observe_n(value, n);
            shards.push(sh);
        });
    }

    /// Fold every thread's shards into one [`Histogram`] per metric name.
    /// Non-draining: shards keep accumulating, and the relaxed reads give
    /// a live (per-shard consistent) view.
    fn fold_histograms(&self) -> BTreeMap<&'static str, Histogram> {
        let shards: Vec<Arc<HistogramShard>> = lock(&self.hist_shards).clone();
        let mut out: BTreeMap<&'static str, Histogram> = BTreeMap::new();
        for sh in shards {
            let h = out
                .entry(sh.name)
                .or_insert_with(|| Histogram::new(sh.bounds));
            sh.fold_into(h);
        }
        out
    }

    /// Fold and zero every shard — the draining counterpart of
    /// [`Recorder::fold_histograms`] used by `finish`. The shard registry
    /// stays intact so surviving thread-local caches remain valid; later
    /// observations accumulate from zero and show up in later snapshots.
    fn drain_histograms(&self) -> BTreeMap<&'static str, Histogram> {
        let folded = self.fold_histograms();
        for sh in lock(&self.hist_shards).iter() {
            sh.reset();
        }
        folded
    }

    /// Non-draining copy of everything recorded so far. Lock discipline
    /// matters: [`Recorder::push`] holds a thread's staging-buffer lock
    /// *while* taking the central lock on a batch flush, so this snapshot
    /// must never hold the central lock while touching a staging buffer —
    /// it clones the central log first, releases it, then visits each
    /// buffer one at a time. Spans still open at snapshot time appear
    /// with their Enter event only (`t_exit_ns == None` after matching).
    fn snapshot(&self) -> TraceReport {
        let mut events = lock(&self.central).clone();
        let buffers: Vec<EventBuffer> = lock(&self.buffers).clone();
        for buf in &buffers {
            events.extend(lock(buf).iter().cloned());
        }
        events.sort_by_key(|e| e.t_ns);
        TraceReport {
            events,
            counters: lock(&self.counters).clone(),
            gauges: lock(&self.gauges).clone(),
            histograms: self.fold_histograms(),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }

    /// Chunked cursor read over the live event log: up to `limit` events
    /// with `seq >= start`, in sequence order, never skipping one.
    ///
    /// Exactly-once across chunks rests on the admission invariant: every
    /// event that exists has `seq < cap`, and a seq below the admission
    /// ticket count that is *not* visible yet can only be in flight
    /// (ticket taken, event not yet staged). The walk therefore stops at
    /// the first non-contiguous seq instead of serving past it — the next
    /// poll picks the stream up at the gap once the writer lands.
    fn events_after(&self, start: u64, limit: usize) -> CursorChunk {
        let mut events: Vec<Event> = lock(&self.central)
            .iter()
            .filter(|e| e.seq >= start)
            .cloned()
            .collect();
        let buffers: Vec<EventBuffer> = lock(&self.buffers).clone();
        for buf in &buffers {
            events.extend(lock(buf).iter().filter(|e| e.seq >= start).cloned());
        }
        events.sort_by_key(|e| e.seq);
        let mut out = Vec::new();
        let mut expect = start;
        let mut more = false;
        for ev in events {
            if ev.seq != expect || out.len() >= limit {
                // Chunk budget reached, or an in-flight writer owns the
                // next seq; either way later events stay for the next poll.
                more = true;
                break;
            }
            expect += 1;
            out.push(ev);
        }
        CursorChunk {
            events: out,
            next: expect,
            more,
        }
    }
}

/// One bounded read from a live event stream ([`LocalSession::events_after`]).
#[derive(Debug, Clone)]
pub struct CursorChunk {
    /// Events in sequence order, each delivered exactly once across chunks.
    pub events: Vec<Event>,
    /// Cursor to pass as `start`/`after` on the next poll.
    pub next: u64,
    /// Whether events beyond [`CursorChunk::next`] were already visible
    /// when this chunk was cut (poll again without waiting).
    pub more: bool,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: RwLock<Option<Arc<Recorder>>> = RwLock::new(None);
static SESSION_LOCK: Mutex<()> = Mutex::new(());
static NEXT_SESSION_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Open spans on this thread as `(session_id, span_id)` pairs.
    static SPAN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
    /// Cached `(session_id, ordinal)` so the thread registry is hit once.
    static THREAD_ORD: Cell<Option<(u64, u32)>> = const { Cell::new(None) };
    /// This thread's staging buffer for the current session.
    static TL_BUFFER: RefCell<Option<(u64, EventBuffer)>> = const { RefCell::new(None) };
    /// This thread's histogram shards for the current session, keyed by
    /// session id (a linear scan by metric name — sessions record a
    /// handful of distinct histograms).
    static TL_HIST: RefCell<Option<(u64, Vec<Arc<HistogramShard>>)>> = const { RefCell::new(None) };
    /// Recorder bound to this thread by a [`LocalBinding`]; shadows the
    /// process-global recorder for instrumentation on this thread.
    static LOCAL_REC: RefCell<Option<Arc<Recorder>>> = const { RefCell::new(None) };
    /// Cheap mirror of `LOCAL_REC.is_some()` for the [`enabled`] fast path.
    static LOCAL_ACTIVE: Cell<bool> = const { Cell::new(false) };
}

/// Whether instrumentation on this thread records anywhere: a recorder is
/// installed process-wide, or a [`LocalSession`] is bound to this thread.
/// The fast path stays one relaxed atomic load plus one thread-local read.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) || LOCAL_ACTIVE.with(Cell::get)
}

fn current() -> Option<Arc<Recorder>> {
    if LOCAL_ACTIVE.with(Cell::get) {
        if let Some(rec) = LOCAL_REC.with(|l| l.borrow().clone()) {
            return Some(rec);
        }
    }
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    RECORDER
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// Live, non-draining copy of the *current* session's trace — events
/// staged so far (open spans included, their exits still pending),
/// counters, gauges and the dropped count. `None` when no session is
/// active. Unlike [`Session::finish`] this leaves the recorder installed
/// and running, so a scraper (the `serve` module's `/trace` endpoint) can
/// read an in-flight run from any thread without owning the [`Session`].
#[must_use]
pub fn live_report() -> Option<TraceReport> {
    current().map(|rec| rec.snapshot())
}

/// Live [`MetricsSnapshot`] of the current session — counters, gauges and
/// span-duration summaries over the events recorded so far (open spans
/// count with zero duration until they close). `None` when no session is
/// active. Counters read here are monotone across successive calls, which
/// is what makes the `/metrics` exposition scrape-safe mid-run.
#[must_use]
pub fn live_metrics() -> Option<MetricsSnapshot> {
    live_report().map(|r| r.metrics_snapshot())
}

fn thread_ordinal(rec: &Recorder) -> u32 {
    THREAD_ORD.with(|c| {
        if let Some((sid, ord)) = c.get() {
            if sid == rec.id {
                return ord;
            }
        }
        let tid = std::thread::current().id();
        let mut ts = lock(&rec.threads);
        let ord = ts.iter().position(|t| *t == tid).unwrap_or_else(|| {
            ts.push(tid);
            ts.len() - 1
        }) as u32;
        c.set(Some((rec.id, ord)));
        ord
    })
}

/// An exclusive tracing window. Created by [`session`]; instrumentation
/// anywhere in the process records into it until [`Session::finish`] (or
/// drop) uninstalls the recorder.
pub struct Session {
    rec: Arc<Recorder>,
    _excl: MutexGuard<'static, ()>,
}

/// Install a recorder with room for `capacity` events and return the
/// session handle. Blocks until any other live session ends, so
/// concurrent tests never interleave their traces.
#[must_use]
pub fn session(capacity: usize) -> Session {
    let excl = SESSION_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let rec = Arc::new(Recorder {
        id: NEXT_SESSION_ID.fetch_add(1, Ordering::SeqCst),
        start: Instant::now(),
        cap: capacity,
        admitted: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
        central: Mutex::new(Vec::new()),
        buffers: Mutex::new(Vec::new()),
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        hist_shards: Mutex::new(Vec::new()),
        threads: Mutex::new(Vec::new()),
    });
    *RECORDER.write().unwrap_or_else(PoisonError::into_inner) = Some(Arc::clone(&rec));
    ENABLED.store(true, Ordering::SeqCst);
    Session { rec, _excl: excl }
}

impl Session {
    /// Counters and gauges accumulated so far, without ending the session.
    /// Span-duration summaries need the full event log, so the live
    /// snapshot leaves [`MetricsSnapshot::spans`] empty; counters read
    /// here are monotone across successive calls.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock(&self.rec.counters)
                .iter()
                .map(|(k, v)| ((*k).to_string(), *v))
                .collect(),
            gauges: lock(&self.rec.gauges)
                .iter()
                .map(|(k, v)| ((*k).to_string(), *v))
                .collect(),
            histograms: self
                .rec
                .fold_histograms()
                .into_iter()
                .map(|(k, h)| (k.to_string(), h))
                .collect(),
            spans: Vec::new(),
        }
    }

    /// Uninstall the recorder and return everything it captured.
    #[must_use]
    pub fn finish(self) -> TraceReport {
        let rec = Arc::clone(&self.rec);
        drop(self); // uninstalls
        let dropped = rec.dropped.load(Ordering::SeqCst);
        // Central batches first, then per-thread stragglers: a thread's
        // staged events are strictly later than its flushed ones, so every
        // per-thread subsequence stays ordered; the stable sort by
        // timestamp then rebuilds a coherent global order without ever
        // reordering a thread against itself.
        let mut events = std::mem::take(&mut *lock(&rec.central));
        for buf in lock(&rec.buffers).iter() {
            events.append(&mut *lock(buf));
        }
        events.sort_by_key(|e| e.t_ns);
        let counters = std::mem::take(&mut *lock(&rec.counters));
        let gauges = std::mem::take(&mut *lock(&rec.gauges));
        let histograms = rec.drain_histograms();
        TraceReport {
            events,
            counters,
            gauges,
            histograms,
            dropped,
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
        *RECORDER.write().unwrap_or_else(PoisonError::into_inner) = None;
    }
}

/// A per-job tracing session that is *not* installed process-globally.
///
/// Unlike [`session`], which takes the exclusive session lock and routes
/// every instrumented thread in the process into one recorder, a
/// `LocalSession` only captures events from threads that explicitly
/// [`bind`](LocalSession::bind) it. Any number of local sessions can run
/// concurrently — the multi-tenant job service gives each job its own —
/// and a bound local session shadows the global recorder on that thread,
/// so concurrent jobs produce disjoint traces.
///
/// Cloning is cheap (an `Arc` bump); every clone reads and writes the same
/// recorder, which is how the service thread snapshots a trace while the
/// job thread is still producing it.
#[derive(Clone)]
pub struct LocalSession {
    rec: Arc<Recorder>,
}

/// Create a detached recorder with room for `capacity` events. Nothing
/// records into it until a thread binds it via [`LocalSession::bind`];
/// creation neither takes the global session lock nor touches the
/// installed recorder.
#[must_use]
pub fn local_session(capacity: usize) -> LocalSession {
    LocalSession {
        rec: Arc::new(Recorder {
            id: NEXT_SESSION_ID.fetch_add(1, Ordering::SeqCst),
            start: Instant::now(),
            cap: capacity,
            admitted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            central: Mutex::new(Vec::new()),
            buffers: Mutex::new(Vec::new()),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            hist_shards: Mutex::new(Vec::new()),
            threads: Mutex::new(Vec::new()),
        }),
    }
}

impl LocalSession {
    /// Route this thread's instrumentation into the session until the
    /// returned guard drops. Bindings nest: dropping the guard restores
    /// whatever this thread was bound to before (guards must drop in
    /// reverse bind order, which RAII scoping gives for free).
    #[must_use]
    pub fn bind(&self) -> LocalBinding {
        let prev = LOCAL_REC.with(|l| l.borrow_mut().replace(Arc::clone(&self.rec)));
        LOCAL_ACTIVE.with(|c| c.set(true));
        LocalBinding {
            rec: Arc::clone(&self.rec),
            prev,
            _not_send: PhantomData,
        }
    }

    /// Live, non-draining copy of everything captured so far — same
    /// semantics as [`live_report`], but for this session.
    #[must_use]
    pub fn snapshot(&self) -> TraceReport {
        self.rec.snapshot()
    }

    /// Live [`MetricsSnapshot`] over the events captured so far (open
    /// spans count with zero duration until they close; counters are
    /// monotone across calls, keeping the exposition scrape-safe).
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.rec.snapshot().metrics_snapshot()
    }

    /// Bounded cursor read: up to `limit` events with `seq >= start`, in
    /// admission order, each event delivered exactly once across chunks.
    /// See [`CursorChunk`] for resumption semantics.
    #[must_use]
    pub fn events_after(&self, start: u64, limit: usize) -> CursorChunk {
        self.rec.events_after(start, limit)
    }

    /// Events actually admitted to the log so far (the admission-ticket
    /// count, clamped to the event budget).
    #[must_use]
    pub fn admitted(&self) -> u64 {
        let cap = self.rec.cap as u64;
        self.rec.admitted.load(Ordering::Relaxed).min(cap)
    }

    /// Events refused because the budget was exhausted.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.rec.dropped.load(Ordering::Relaxed)
    }

    /// Drain everything captured and return the final report. Call after
    /// every bound thread has finished; later snapshots of surviving
    /// clones only see events recorded after the drain.
    #[must_use]
    pub fn finish(self) -> TraceReport {
        let rec = self.rec;
        let dropped = rec.dropped.load(Ordering::SeqCst);
        // Same order as Session::finish: central batches first, then
        // per-thread stragglers, then a stable sort by timestamp — every
        // per-thread subsequence stays ordered.
        let mut events = std::mem::take(&mut *lock(&rec.central));
        for buf in lock(&rec.buffers).iter() {
            events.append(&mut *lock(buf));
        }
        events.sort_by_key(|e| e.t_ns);
        let counters = std::mem::take(&mut *lock(&rec.counters));
        let gauges = std::mem::take(&mut *lock(&rec.gauges));
        let histograms = rec.drain_histograms();
        TraceReport {
            events,
            counters,
            gauges,
            histograms,
            dropped,
        }
    }
}

/// Scoped thread binding for a [`LocalSession`]. On drop, flushes this
/// thread's staged events to the session's central log, releases the
/// thread's staging buffer for the session, and restores the thread's
/// previous binding. Deliberately `!Send`: the binding is a property of
/// the thread that created it.
pub struct LocalBinding {
    rec: Arc<Recorder>,
    prev: Option<Arc<Recorder>>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for LocalBinding {
    fn drop(&mut self) {
        self.rec.flush_current_thread();
        // Release this thread's staging buffer: a long-lived thread (a
        // service worker, a test harness) must not pin a finished
        // session's allocation in its thread-local slot — otherwise
        // evicting the session from a registry frees the ring buffer in
        // name only. The recorder's own `buffers` list still holds the
        // (now drained) Vec until the recorder itself drops.
        TL_BUFFER.with(|slot| {
            let mut slot = slot.borrow_mut();
            if matches!(slot.as_ref(), Some((sid, _)) if *sid == self.rec.id) {
                *slot = None;
            }
        });
        // Same for the histogram-shard cache: the recorder's own registry
        // keeps the shards alive for folding; the thread must not pin them.
        TL_HIST.with(|slot| {
            let mut slot = slot.borrow_mut();
            if matches!(slot.as_ref(), Some((sid, _)) if *sid == self.rec.id) {
                *slot = None;
            }
        });
        LOCAL_REC.with(|l| {
            let mut l = l.borrow_mut();
            *l = self.prev.take();
            LOCAL_ACTIVE.with(|c| c.set(l.is_some()));
        });
    }
}

/// RAII guard for an open span. Closes (emits the Exit event) on drop.
///
/// Deliberately `!Send`: a span measures an interval on one thread, and the
/// parent linkage is thread-local.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
    _not_send: PhantomData<*const ()>,
}

struct ActiveSpan {
    rec: Arc<Recorder>,
    id: u64,
    name: &'static str,
    exit_fields: Vec<Field>,
}

impl SpanGuard {
    /// Open a span. `fields` is only invoked when a recorder is installed,
    /// so argument formatting costs nothing on the disabled path. Prefer
    /// the [`span!`](crate::span) macro.
    #[must_use]
    pub fn open<F: FnOnce() -> Vec<Field>>(name: &'static str, fields: F) -> SpanGuard {
        let Some(rec) = current() else {
            return SpanGuard {
                active: None,
                _not_send: PhantomData,
            };
        };
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let thread = thread_ordinal(&rec);
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s
                .iter()
                .rev()
                .find(|(sid, _)| *sid == rec.id)
                .map(|&(_, span)| span);
            s.push((rec.id, id));
            parent
        });
        rec.push(Event {
            name,
            seq: 0, // assigned at admission
            t_ns: rec.now_ns(),
            thread,
            kind: EventKind::Enter { span: id, parent },
            fields: fields(),
        });
        SpanGuard {
            active: Some(ActiveSpan {
                rec,
                id,
                name,
                exit_fields: Vec::new(),
            }),
            _not_send: PhantomData,
        }
    }

    /// The recording session's id for this span, if one is active. Other
    /// events can carry it (e.g. a `link_span` field) to reference this
    /// span from outside its subtree — the §III-B protocol links
    /// re-collections to the measurement they rescued this way.
    #[must_use]
    pub fn id(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.id)
    }

    /// Attach a field to the span's Exit event (e.g. a result computed
    /// inside the span). No-op when tracing is disabled.
    pub fn record<V: Into<FieldValue>>(&mut self, key: &'static str, value: V) {
        if let Some(a) = &mut self.active {
            a.exit_fields.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        let root_closed = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(pos) = s
                .iter()
                .rposition(|&(sid, span)| sid == a.rec.id && span == a.id)
            {
                s.remove(pos);
            }
            !s.iter().any(|(sid, _)| *sid == a.rec.id)
        });
        let thread = thread_ordinal(&a.rec);
        a.rec.push(Event {
            name: a.name,
            seq: 0, // assigned at admission
            t_ns: a.rec.now_ns(),
            thread,
            kind: EventKind::Exit { span: a.id },
            fields: a.exit_fields,
        });
        if root_closed {
            // The thread's outermost span for this session just closed —
            // a natural quiescent point to publish the staged batch.
            a.rec.flush_current_thread();
        }
    }
}

/// Open a span: `span!("name")` or `span!("name", key = value, ...)`.
/// Field values must convert [`Into`] a
/// [`FieldValue`](trace::FieldValue). Returns a
/// [`SpanGuard`](trace::SpanGuard); the span closes when it drops.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::SpanGuard::open($name, Vec::new)
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $crate::trace::SpanGuard::open($name, || {
            vec![$((stringify!($k), $crate::trace::FieldValue::from($v))),+]
        })
    };
}

/// Add `delta` to the named counter. Counters aggregate in place and never
/// consume ring capacity.
pub fn counter(name: &'static str, delta: u64) {
    if let Some(rec) = current() {
        *lock(&rec.counters).entry(name).or_insert(0) += delta;
    }
}

/// Set the named gauge to `value` (last value wins).
pub fn gauge(name: &'static str, value: f64) {
    if let Some(rec) = current() {
        lock(&rec.gauges).insert(name, value);
    }
}

/// Emit a point event with no payload.
pub fn mark(name: &'static str) {
    mark_with(name, Vec::new);
}

/// Emit a point event; `fields` is only invoked when tracing is enabled.
pub fn mark_with<F: FnOnce() -> Vec<Field>>(name: &'static str, fields: F) {
    if let Some(rec) = current() {
        let thread = thread_ordinal(&rec);
        rec.push(Event {
            name,
            seq: 0, // assigned at admission
            t_ns: rec.now_ns(),
            thread,
            kind: EventKind::Mark,
            fields: fields(),
        });
    }
}

// ---------------------------------------------------------------------------
// Histograms: the third metric primitive.
// ---------------------------------------------------------------------------

/// Bucket upper bounds for GPU power draw, watts. The edges straddle the
/// paper's two KDE modes — idle/host phases (~60–90 W) and the compute
/// mode (~300–400 W on an uncapped A100) — with a 200 W edge between
/// them, so cumulative bucket counts reconstruct high-power-mode
/// residency (the fraction of GPU time above [`HIGH_POWER_THRESHOLD_W`])
/// exactly from a live scrape.
pub const POWER_WATTS_BUCKETS: &[f64] = &[
    30.0, 60.0, 90.0, 120.0, 160.0, 200.0, 250.0, 300.0, 350.0, 400.0, 450.0, 520.0,
];

/// The idle/compute divide for [`POWER_WATTS_BUCKETS`]: power above this
/// is "high-power mode" in the paper's sense. Deliberately one of the
/// bucket edges, so the residency fraction is exact, not interpolated.
pub const HIGH_POWER_THRESHOLD_W: f64 = 200.0;

/// Bucket upper bounds for service latencies, seconds (sub-millisecond
/// metric scrapes up to multi-second job submissions).
pub const SECONDS_BUCKETS: &[f64] = &[
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
];

/// Bucket upper bounds for simulated-clock durations, seconds (SCF
/// phases run simulated seconds to tens of minutes).
pub const SIM_SECONDS_BUCKETS: &[f64] = &[
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0,
];

/// Fallback bounds for metrics without a dedicated table: decades from
/// 0.001 to 1e6.
pub const DEFAULT_BUCKETS: &[f64] = &[
    0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10_000.0, 100_000.0, 1_000_000.0,
];

/// The static bucket table for a metric name: `*watts*` metrics get the
/// power edges, `*_seconds` metrics get wall or simulated-time edges,
/// everything else the decade fallback. [`histogram_with`] overrides.
#[must_use]
pub fn default_bounds(name: &str) -> &'static [f64] {
    if name.contains("watts") {
        POWER_WATTS_BUCKETS
    } else if name.ends_with("_seconds") || name.ends_with(".seconds") {
        if name.contains("sim") {
            SIM_SECONDS_BUCKETS
        } else {
            SECONDS_BUCKETS
        }
    } else {
        DEFAULT_BUCKETS
    }
}

/// Index of the bucket `value` falls into: the first bound `>= value`
/// (Prometheus `le` semantics), or the overflow bucket past the last.
fn bucket_index(bounds: &[f64], value: f64) -> usize {
    bounds
        .iter()
        .position(|b| value <= *b)
        .unwrap_or(bounds.len())
}

/// A fixed-bucket, mergeable histogram: per-bucket counts against static
/// upper bounds plus a running sum. The value type behind the
/// [`histogram!`](crate::histogram) primitive, and usable standalone
/// (the serve module keeps per-route latency histograms under its own
/// lock). Counts are observation *weights*: [`Histogram::observe_n`]
/// records `n` at once, which is how the executor weights each power
/// segment by its duration.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: &'static [f64],
    /// Per-bucket (non-cumulative) counts; one extra overflow bucket.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// An empty histogram over `bounds` (finite, strictly ascending).
    ///
    /// # Panics
    /// If `bounds` is empty, unsorted, or contains a non-finite edge.
    #[must_use]
    pub fn new(bounds: &'static [f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly ascending"
        );
        Self {
            bounds,
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        self.observe_n(value, 1);
    }

    /// Record `n` observations of `value` at once.
    pub fn observe_n(&mut self, value: f64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(self.bounds, value)] += n;
        self.count += n;
        self.sum += value * n as f64;
    }

    /// Fold `other` into `self`. Same bounds merge bucket-by-bucket; a
    /// histogram with different bounds folds into the overflow bucket
    /// (total mass and sum preserved, shape degraded) — callers are
    /// expected to keep one bounds table per metric name.
    pub fn merge(&mut self, other: &Histogram) {
        if std::ptr::eq(self.bounds, other.bounds) || self.bounds == other.bounds {
            for (a, b) in self.counts.iter_mut().zip(&other.counts) {
                *a += b;
            }
        } else {
            *self.counts.last_mut().expect("overflow bucket") += other.count;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The static bucket upper bounds.
    #[must_use]
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// Per-bucket (non-cumulative) counts; the final entry is the
    /// overflow (`+Inf`) bucket.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Sum of all observed values (weighted).
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Total observation count (weighted).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fraction of observations strictly above `threshold`, which must be
    /// one of the bucket bounds for the answer to be exact — the
    /// high-power-mode residency read when `threshold` is
    /// [`HIGH_POWER_THRESHOLD_W`]. Returns 0 for an empty histogram.
    #[must_use]
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let above: u64 = self
            .bounds
            .iter()
            .zip(&self.counts)
            .filter(|(b, _)| **b > threshold)
            .map(|(_, c)| *c)
            .sum::<u64>()
            + self.counts[self.bounds.len()];
        above as f64 / self.count as f64
    }

    /// Append the Prometheus sample lines (`_bucket` cumulative over
    /// `le`, then `_sum` and `_count`) for this histogram. `metric` is
    /// the already-sanitised full metric name; `labels` is either empty
    /// or pre-rendered `key="value"` pairs (already escaped) that every
    /// sample carries in addition to `le`. The `# TYPE` line is the
    /// caller's job, so multi-label families declare it once.
    pub fn to_prom_lines(&self, metric: &str, labels: &str, out: &mut String) {
        let sep = if labels.is_empty() { "" } else { "," };
        let mut cum = 0u64;
        for (b, c) in self.bounds.iter().zip(&self.counts) {
            cum += c;
            let _ = writeln!(
                out,
                "{metric}_bucket{{{labels}{sep}le=\"{}\"}} {cum}",
                prom_f64(*b)
            );
        }
        cum += self.counts[self.bounds.len()];
        let _ = writeln!(out, "{metric}_bucket{{{labels}{sep}le=\"+Inf\"}} {cum}");
        if labels.is_empty() {
            let _ = writeln!(out, "{metric}_sum {}", prom_f64(self.sum));
            let _ = writeln!(out, "{metric}_count {cum}");
        } else {
            let _ = writeln!(out, "{metric}_sum{{{labels}}} {}", prom_f64(self.sum));
            let _ = writeln!(out, "{metric}_count{{{labels}}} {cum}");
        }
    }

    /// JSON view: bounds, per-bucket counts, sum, count.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            (
                "bounds".to_string(),
                Value::Arr(self.bounds.iter().map(|b| Value::Num(*b)).collect()),
            ),
            (
                "counts".to_string(),
                Value::Arr(self.counts.iter().map(|c| Value::Num(*c as f64)).collect()),
            ),
            ("sum".to_string(), Value::Num(self.sum)),
            ("count".to_string(), Value::Num(self.count as f64)),
        ])
    }
}

/// One thread's lock-free accumulation state for one histogram metric.
/// Only the owning thread writes; `sum_bits` therefore needs no CAS loop
/// — a plain load/store pair is race-free, and folding readers see some
/// recent consistent value.
struct HistogramShard {
    name: &'static str,
    bounds: &'static [f64],
    /// Per-bucket counts plus the overflow bucket.
    counts: Vec<AtomicU64>,
    /// `f64::to_bits` of the running (weighted) sum.
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl HistogramShard {
    fn new(name: &'static str, bounds: &'static [f64]) -> Self {
        // Validate through the value type so shard and fold agree.
        let _ = Histogram::new(bounds);
        Self {
            name,
            bounds,
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    fn observe_n(&self, value: f64, n: u64) {
        self.counts[bucket_index(self.bounds, value)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        let sum = f64::from_bits(self.sum_bits.load(Ordering::Relaxed));
        self.sum_bits
            .store((sum + value * n as f64).to_bits(), Ordering::Relaxed);
    }

    fn fold_into(&self, h: &mut Histogram) {
        let mut shard = Histogram::new(self.bounds);
        for (dst, src) in shard.counts.iter_mut().zip(&self.counts) {
            *dst = src.load(Ordering::Relaxed);
        }
        shard.count = self.count.load(Ordering::Relaxed);
        shard.sum = f64::from_bits(self.sum_bits.load(Ordering::Relaxed));
        h.merge(&shard);
    }

    /// Zero the shard (after a draining fold).
    fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0.0f64.to_bits(), Ordering::Relaxed);
    }
}

/// Record one observation into the named histogram, using the static
/// per-metric bucket table ([`default_bounds`]).
pub fn histogram(name: &'static str, value: f64) {
    histogram_count_with(name, value, 1, default_bounds(name));
}

/// Record one observation with explicit static bucket bounds. Every
/// recording site for a given metric name must use the same bounds.
pub fn histogram_with(name: &'static str, value: f64, bounds: &'static [f64]) {
    histogram_count_with(name, value, 1, bounds);
}

/// Record `n` observations of `value` at once (duration weighting: the
/// executor records each power segment with `n` = its length in
/// microseconds, so bucket counts measure GPU-time residency).
pub fn histogram_count(name: &'static str, value: f64, n: u64) {
    histogram_count_with(name, value, n, default_bounds(name));
}

/// [`histogram_count`] with explicit static bucket bounds.
pub fn histogram_count_with(name: &'static str, value: f64, n: u64, bounds: &'static [f64]) {
    if n == 0 {
        return;
    }
    if let Some(rec) = current() {
        rec.observe_histogram(name, value, n, bounds);
    }
}

/// Record into a histogram: `histogram!("power_watts", 312.0)` (static
/// per-metric bucket table) or `histogram!("name", v, &BOUNDS)` with
/// explicit bounds. Like every trace primitive, a few nanoseconds when
/// no session is active.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr) => {
        $crate::trace::histogram($name, $value)
    };
    ($name:expr, $value:expr, $bounds:expr) => {
        $crate::trace::histogram_with($name, $value, $bounds)
    };
}

// ---------------------------------------------------------------------------
// The process-wide structured log journal.
// ---------------------------------------------------------------------------

/// Severity of a [`LogRecord`]. Ordering is by severity: `Debug < Info <
/// Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Diagnostic chatter, admitted only when the journal level allows.
    Debug = 0,
    /// Routine service events.
    Info = 1,
    /// Degradation the operator should know about (backpressure,
    /// evictions, peer scrape failures).
    Warn = 2,
    /// Failures (job panics, handler errors).
    Error = 3,
}

/// Number of severity partitions in the journal.
pub const LOG_LEVELS: usize = 4;

/// Per-level capacity of the journal: once a severity partition holds
/// this many records, further records *of that level* are dropped and
/// counted — a flood of one severity can never evict another's records,
/// and admitted sequence numbers stay dense.
pub const LOG_PARTITION_CAPACITY: usize = 4096;

impl LogLevel {
    /// Every level, ascending severity.
    pub const ALL: [LogLevel; LOG_LEVELS] =
        [LogLevel::Debug, LogLevel::Info, LogLevel::Warn, LogLevel::Error];

    /// Canonical lower-case name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LogLevel::Debug => "debug",
            LogLevel::Info => "info",
            LogLevel::Warn => "warn",
            LogLevel::Error => "error",
        }
    }
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for LogLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        LogLevel::ALL
            .into_iter()
            .find(|l| l.name() == s)
            .ok_or_else(|| format!("unknown log level '{s}' (expected debug|info|warn|error)"))
    }
}

/// One structured journal entry.
#[derive(Debug, Clone)]
pub struct LogRecord {
    /// Dense admission sequence number (journal-global, all levels).
    pub seq: u64,
    /// Seconds since the journal's first use in this process.
    pub t_s: f64,
    /// Severity.
    pub level: LogLevel,
    /// Component that emitted the record (e.g. `serve.jobs`).
    pub target: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Typed payload fields.
    pub fields: Vec<Field>,
}

impl LogRecord {
    /// Compact JSON object — one line of the `/logs` jsonl stream.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("seq".to_string(), Value::Num(self.seq as f64)),
            ("t_s".to_string(), Value::Num(self.t_s)),
            ("level".to_string(), Value::Str(self.level.name().to_string())),
            ("target".to_string(), Value::Str(self.target.to_string())),
            ("msg".to_string(), Value::Str(self.message.clone())),
            (
                "fields".to_string(),
                Value::Obj(
                    self.fields
                        .iter()
                        .map(|(k, v)| ((*k).to_string(), v.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// The journal proper: severity-partitioned bounded buffers plus the
/// admission counter. One process-wide instance behind a mutex — log
/// rates are decision-point rates (backpressure, evictions, failures),
/// not event rates, so a single short critical section beats the staged
/// ring's complexity here, and admission-under-lock is what keeps the
/// sequence stream dense (no in-flight gaps for the cursor reader).
struct JournalInner {
    next_seq: u64,
    admitted: [u64; LOG_LEVELS],
    dropped: [u64; LOG_LEVELS],
    partitions: [Vec<LogRecord>; LOG_LEVELS],
}

static JOURNAL: Mutex<JournalInner> = Mutex::new(JournalInner {
    next_seq: 0,
    admitted: [0; LOG_LEVELS],
    dropped: [0; LOG_LEVELS],
    partitions: [Vec::new(), Vec::new(), Vec::new(), Vec::new()],
});

/// Records below this severity are filtered at admission (not counted as
/// drops — they were never eligible).
static LOG_LEVEL: AtomicU8 = AtomicU8::new(LogLevel::Info as u8);

/// The journal's time origin, pinned at first use.
static LOG_EPOCH: OnceLock<Instant> = OnceLock::new();

/// Current journal admission level.
#[must_use]
pub fn log_level() -> LogLevel {
    let raw = LOG_LEVEL.load(Ordering::Relaxed);
    LogLevel::ALL
        .into_iter()
        .find(|l| *l as u8 == raw)
        .unwrap_or(LogLevel::Info)
}

/// Set the journal admission level (process-wide).
pub fn set_log_level(level: LogLevel) {
    LOG_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether a record at `level` would currently be admitted — the cheap
/// guard the [`log_event!`](crate::log_event) macro checks before
/// building the message and fields.
#[inline]
#[must_use]
pub fn log_enabled(level: LogLevel) -> bool {
    level as u8 >= LOG_LEVEL.load(Ordering::Relaxed)
}

/// Append a record to the journal. Admission takes one short lock: the
/// sequence ticket is only consumed when the record is actually stored,
/// so admitted seqs are dense and a cursor reader never waits on a seq
/// that will never arrive. When the level's partition is full the record
/// is dropped and counted against that level.
pub fn log_event(
    level: LogLevel,
    target: &'static str,
    message: impl Into<String>,
    fields: Vec<Field>,
) {
    if !log_enabled(level) {
        return;
    }
    let t_s = LOG_EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64();
    let li = level as usize;
    let mut j = lock(&JOURNAL);
    if j.partitions[li].len() >= LOG_PARTITION_CAPACITY {
        j.dropped[li] += 1;
        return;
    }
    let seq = j.next_seq;
    j.next_seq += 1;
    j.admitted[li] += 1;
    j.partitions[li].push(LogRecord {
        seq,
        t_s,
        level,
        target,
        message: message.into(),
        fields,
    });
}

/// Emit a structured log record:
/// `log_event!(Warn, "serve.jobs", "queue full", queued = 32)`. The
/// message and field expressions are only evaluated when the level is
/// admitted.
#[macro_export]
macro_rules! log_event {
    ($level:ident, $target:expr, $msg:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::trace::log_enabled($crate::trace::LogLevel::$level) {
            $crate::trace::log_event(
                $crate::trace::LogLevel::$level,
                $target,
                $msg,
                vec![$((stringify!($k), $crate::trace::FieldValue::from($v))),*],
            );
        }
    };
}

/// One bounded cursor read from the journal ([`logs_after`]).
#[derive(Debug, Clone)]
pub struct LogChunk {
    /// Records in sequence order, each delivered exactly once across
    /// chunks for a given `min_level`.
    pub records: Vec<LogRecord>,
    /// Cursor to pass as `after` on the next poll.
    pub next: u64,
    /// Whether more matching records were already admitted when this
    /// chunk was cut.
    pub more: bool,
    /// Per-level drop counts (records refused because their severity
    /// partition was full), indexed by `LogLevel as usize`.
    pub dropped: [u64; LOG_LEVELS],
}

/// Cursor read over the journal: up to `limit` records with
/// `seq >= after` and severity `>= min_level`, in sequence order.
///
/// Because sequence tickets are only consumed under the journal lock for
/// records that are actually stored, the admitted stream has no holes:
/// every matching record is delivered exactly once across chunks, and a
/// seq the reader skips can only belong to a record below `min_level`.
#[must_use]
pub fn logs_after(after: u64, limit: usize, min_level: LogLevel) -> LogChunk {
    let j = lock(&JOURNAL);
    let mut matching: Vec<&LogRecord> = j.partitions[min_level as usize..]
        .iter()
        .flat_map(|p| p.iter().filter(|r| r.seq >= after))
        .collect();
    matching.sort_by_key(|r| r.seq);
    let more = matching.len() > limit;
    let records: Vec<LogRecord> = matching.into_iter().take(limit).cloned().collect();
    let next = if more {
        records.last().expect("limit > 0 when more").seq + 1
    } else {
        // Caught up: everything admitted so far has been scanned.
        j.next_seq.max(after)
    };
    LogChunk {
        records,
        next,
        more,
        dropped: j.dropped,
    }
}

/// Journal health counters, read under one guard acquisition — what
/// `/healthz` renders.
#[derive(Debug, Clone, Copy)]
pub struct LogStats {
    /// Current admission level.
    pub level: LogLevel,
    /// Next sequence number to be assigned (== total admitted records).
    pub next_seq: u64,
    /// Per-level admitted counts, indexed by `LogLevel as usize`.
    pub admitted: [u64; LOG_LEVELS],
    /// Per-level drop counts, indexed by `LogLevel as usize`.
    pub dropped: [u64; LOG_LEVELS],
}

/// Snapshot the journal's health counters.
#[must_use]
pub fn log_stats() -> LogStats {
    let j = lock(&JOURNAL);
    LogStats {
        level: log_level(),
        next_seq: j.next_seq,
        admitted: j.admitted,
        dropped: j.dropped,
    }
}

/// One reconstructed span: enter/exit matched, fields merged.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name.
    pub name: &'static str,
    /// Process-unique id.
    pub id: u64,
    /// Enclosing span id, if nested.
    pub parent: Option<u64>,
    /// Per-session thread ordinal.
    pub thread: u32,
    /// Enter time, ns since session start.
    pub t_enter_ns: u64,
    /// Exit time, ns since session start; `None` if the span never closed
    /// (guard leaked or its Exit was dropped on ring overflow).
    pub t_exit_ns: Option<u64>,
    /// Enter fields followed by [`SpanGuard::record`]ed exit fields.
    pub fields: Vec<Field>,
}

impl SpanRecord {
    /// Wall duration in nanoseconds, if the span closed.
    #[must_use]
    pub fn duration_ns(&self) -> Option<u64> {
        self.t_exit_ns.map(|t| t.saturating_sub(self.t_enter_ns))
    }

    /// First field with the given key.
    #[must_use]
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Numeric field value, if present and numeric.
    #[must_use]
    pub fn field_f64(&self, key: &str) -> Option<f64> {
        self.field(key).and_then(FieldValue::as_f64)
    }

    /// Simulated-clock duration `sim_t1 - sim_t0`, if the span carries a
    /// sim-time window (the executor's phase spans do).
    #[must_use]
    pub fn sim_duration_s(&self) -> Option<f64> {
        match (self.field_f64("sim_t0"), self.field_f64("sim_t1")) {
            (Some(t0), Some(t1)) => Some(t1 - t0),
            _ => None,
        }
    }
}

/// A span plus its children — one node of [`TraceReport::span_tree`].
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The span itself.
    pub record: SpanRecord,
    /// Child spans in enter order.
    pub children: Vec<SpanNode>,
}

/// Everything a finished [`Session`] captured.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Raw events, stably ordered by timestamp (per-thread record order is
    /// preserved exactly).
    pub events: Vec<Event>,
    /// Aggregated counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Last-value gauges.
    pub gauges: BTreeMap<&'static str, f64>,
    /// Folded per-metric histograms (every thread's shards merged).
    pub histograms: BTreeMap<&'static str, Histogram>,
    /// Events discarded because the session's event budget was exhausted.
    pub dropped: u64,
}

impl TraceReport {
    /// Reconstruct spans (Enter/Exit matched by id) in enter order.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = Vec::new();
        let mut by_id: BTreeMap<u64, usize> = BTreeMap::new();
        for ev in &self.events {
            match ev.kind {
                EventKind::Enter { span, parent } => {
                    by_id.insert(span, out.len());
                    out.push(SpanRecord {
                        name: ev.name,
                        id: span,
                        parent,
                        thread: ev.thread,
                        t_enter_ns: ev.t_ns,
                        t_exit_ns: None,
                        fields: ev.fields.clone(),
                    });
                }
                EventKind::Exit { span } => {
                    if let Some(&i) = by_id.get(&span) {
                        out[i].t_exit_ns = Some(ev.t_ns);
                        out[i].fields.extend(ev.fields.iter().cloned());
                    }
                }
                EventKind::Mark => {}
            }
        }
        out
    }

    /// Point events (marks) in record order.
    #[must_use]
    pub fn marks(&self) -> Vec<&Event> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Mark))
            .collect()
    }

    /// Spans assembled into forests by parent linkage, roots in enter
    /// order. A span whose parent is missing (dropped) becomes a root.
    #[must_use]
    pub fn span_tree(&self) -> Vec<SpanNode> {
        let spans = self.spans();
        let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
        let mut children: BTreeMap<u64, Vec<SpanRecord>> = BTreeMap::new();
        let mut roots: Vec<SpanRecord> = Vec::new();
        for s in spans {
            match s.parent {
                Some(p) if ids.contains(&p) => children.entry(p).or_default().push(s),
                _ => roots.push(s),
            }
        }
        fn build(rec: SpanRecord, children: &mut BTreeMap<u64, Vec<SpanRecord>>) -> SpanNode {
            let kids = children.remove(&rec.id).unwrap_or_default();
            SpanNode {
                record: rec,
                children: kids.into_iter().map(|k| build(k, children)).collect(),
            }
        }
        roots.into_iter().map(|r| build(r, &mut children)).collect()
    }

    /// The subtree rooted at span `id`, if that span is in the report.
    #[must_use]
    pub fn subtree(&self, id: u64) -> Option<SpanNode> {
        fn find(nodes: &[SpanNode], id: u64) -> Option<SpanNode> {
            for n in nodes {
                if n.record.id == id {
                    return Some(n.clone());
                }
                if let Some(hit) = find(&n.children, id) {
                    return Some(hit);
                }
            }
            None
        }
        find(&self.span_tree(), id)
    }

    /// Check that the trace is structurally sound: nothing dropped, and on
    /// every thread the Enter/Exit events form a properly nested (LIFO)
    /// sequence whose parent links match the enclosing span. This is the
    /// invariant the `par_map` concurrency property test asserts.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn well_formed(&self) -> Result<(), String> {
        if self.dropped > 0 {
            return Err(format!("{} events dropped by ring overflow", self.dropped));
        }
        let mut stacks: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        for ev in &self.events {
            let stack = stacks.entry(ev.thread).or_default();
            match ev.kind {
                EventKind::Enter { span, parent } => {
                    if parent != stack.last().copied() {
                        return Err(format!(
                            "span {span} ('{}') on thread {} has parent {parent:?} \
                             but enclosing span is {:?}",
                            ev.name,
                            ev.thread,
                            stack.last()
                        ));
                    }
                    stack.push(span);
                }
                EventKind::Exit { span } => match stack.pop() {
                    Some(top) if top == span => {}
                    other => {
                        return Err(format!(
                            "exit of span {span} ('{}') on thread {} but open span is {other:?}",
                            ev.name, ev.thread
                        ));
                    }
                },
                EventKind::Mark => {}
            }
        }
        for (t, stack) in &stacks {
            if !stack.is_empty() {
                return Err(format!("thread {t} ended with {} span(s) open", stack.len()));
            }
        }
        Ok(())
    }

    /// Roll the whole report up into per-span-name totals plus counters.
    #[must_use]
    pub fn aggregate(&self) -> TraceAggregate {
        let mut agg = TraceAggregate::default();
        for s in self.spans() {
            agg.add_span(&s);
        }
        agg.counters = self
            .counters
            .iter()
            .map(|(k, v)| ((*k).to_string(), *v))
            .collect();
        agg
    }

    /// One [`TraceAggregate`] per span named `root` (each covering that
    /// span's whole subtree, the root included). Results are ordered by
    /// the root's numeric `rep` field when present — the §III-B protocol
    /// stamps its repeat spans with one, which keeps per-repeat samples
    /// aligned between a stored baseline and a re-run even when a work
    /// pool finished the repeats out of order — and by enter time
    /// otherwise. Counters are session-global, so per-subtree aggregates
    /// carry none.
    #[must_use]
    pub fn aggregates_under(&self, root: &str) -> Vec<TraceAggregate> {
        fn walk(nodes: &[SpanNode], root: &str, out: &mut Vec<(f64, u64, TraceAggregate)>) {
            for n in nodes {
                if n.record.name == root {
                    let mut agg = TraceAggregate::default();
                    agg.add_subtree(n);
                    let rep = n.record.field_f64("rep").unwrap_or(f64::INFINITY);
                    out.push((rep, n.record.t_enter_ns, agg));
                } else {
                    walk(&n.children, root, out);
                }
            }
        }
        let mut found: Vec<(f64, u64, TraceAggregate)> = Vec::new();
        walk(&self.span_tree(), root, &mut found);
        found.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        found.into_iter().map(|(_, _, agg)| agg).collect()
    }

    /// Counter/gauge/span-duration view of the report for the Prometheus
    /// exposition ([`MetricsSnapshot::to_prom`]).
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut spans: BTreeMap<String, SpanSummary> = BTreeMap::new();
        for s in self.spans() {
            let e = spans.entry(s.name.to_string()).or_insert_with(|| SpanSummary {
                name: s.name.to_string(),
                count: 0,
                total_s: 0.0,
            });
            e.count += 1;
            e.total_s += s.duration_ns().unwrap_or(0) as f64 / 1e9;
        }
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| ((*k).to_string(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, v)| ((*k).to_string(), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| ((*k).to_string(), h.clone()))
                .collect(),
            spans: spans.into_values().collect(),
        }
    }

    /// Serialise the report as a JSON value: span forest, marks, counters,
    /// gauges and the dropped-event count.
    #[must_use]
    pub fn to_json(&self) -> Value {
        fn fields_json(fields: &[Field]) -> Value {
            Value::Obj(
                fields
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), v.to_json()))
                    .collect(),
            )
        }
        fn node_json(n: &SpanNode) -> Value {
            let mut obj = vec![
                ("name".to_string(), Value::Str(n.record.name.to_string())),
                ("id".to_string(), Value::Num(n.record.id as f64)),
                ("thread".to_string(), Value::Num(f64::from(n.record.thread))),
                (
                    "t_enter_ns".to_string(),
                    Value::Num(n.record.t_enter_ns as f64),
                ),
            ];
            if let Some(t) = n.record.t_exit_ns {
                obj.push(("t_exit_ns".to_string(), Value::Num(t as f64)));
            }
            obj.push(("fields".to_string(), fields_json(&n.record.fields)));
            obj.push((
                "children".to_string(),
                Value::Arr(n.children.iter().map(node_json).collect()),
            ));
            Value::Obj(obj)
        }
        let marks = self
            .marks()
            .iter()
            .map(|m| {
                Value::Obj(vec![
                    ("name".to_string(), Value::Str(m.name.to_string())),
                    ("t_ns".to_string(), Value::Num(m.t_ns as f64)),
                    ("thread".to_string(), Value::Num(f64::from(m.thread))),
                    ("fields".to_string(), fields_json(&m.fields)),
                ])
            })
            .collect();
        Value::Obj(vec![
            (
                "spans".to_string(),
                Value::Arr(self.span_tree().iter().map(node_json).collect()),
            ),
            ("marks".to_string(), Value::Arr(marks)),
            (
                "counters".to_string(),
                Value::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| ((*k).to_string(), Value::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_string(),
                Value::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| ((*k).to_string(), Value::Num(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_string(),
                Value::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| ((*k).to_string(), h.to_json()))
                        .collect(),
                ),
            ),
            ("dropped".to_string(), Value::Num(self.dropped as f64)),
        ])
    }

    /// Serialise the raw event stream as JSON Lines: one compact JSON
    /// object per event ([`Event::to_json`]), in report order. Every line
    /// re-parses with [`crate::json::parse`]; counters and gauges are not
    /// events and live in [`TraceReport::to_json`] /
    /// [`MetricsSnapshot::to_prom`] instead.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json().compact());
            out.push('\n');
        }
        out
    }

    /// Serialise spans and marks as CSV with header
    /// `kind,name,id,parent,thread,t_ns,dur_ns,fields`. Field bags are
    /// `;`-joined `key=value` pairs inside one RFC-4180 quoted cell
    /// (embedded `"` doubled; commas and newlines survive verbatim).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,id,parent,thread,t_ns,dur_ns,fields\n");
        for s in self.spans() {
            let parent = s.parent.map_or(String::new(), |p| p.to_string());
            let dur = s.duration_ns().map_or(String::new(), |d| d.to_string());
            out.push_str(&format!(
                "span,{},{},{},{},{},{},{}\n",
                s.name,
                s.id,
                parent,
                s.thread,
                s.t_enter_ns,
                dur,
                csv_fields_cell(&s.fields)
            ));
        }
        for m in self.marks() {
            out.push_str(&format!(
                "mark,{},,,{},{},,{}\n",
                m.name,
                m.thread,
                m.t_ns,
                csv_fields_cell(&m.fields)
            ));
        }
        out
    }
}

/// The one source of truth for trace export formats, shared by
/// `vpp trace --format`, the `serve` module's `/trace` endpoint and the
/// [`TraceReport`] exporters. Parsing ([`std::str::FromStr`]) and
/// rendering ([`fmt::Display`]) round-trip through [`ExportFormat::name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExportFormat {
    /// Human-readable span tree (interactive CLI rendering only — not a
    /// serialisation; [`TraceReport::render`] returns `None` for it).
    Tree,
    /// RFC-4180 CSV of spans and marks ([`TraceReport::to_csv`]).
    Csv,
    /// Pretty JSON document ([`TraceReport::to_json`]).
    Json,
    /// One compact JSON event per line ([`TraceReport::to_jsonl`]).
    Jsonl,
    /// Prometheus text exposition ([`MetricsSnapshot::to_prom`]).
    Prom,
}

impl ExportFormat {
    /// Every format, in `--help` listing order.
    pub const ALL: [ExportFormat; 5] = [
        ExportFormat::Tree,
        ExportFormat::Csv,
        ExportFormat::Json,
        ExportFormat::Jsonl,
        ExportFormat::Prom,
    ];

    /// Canonical lower-case name — the token [`std::str::FromStr`] accepts.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ExportFormat::Tree => "tree",
            ExportFormat::Csv => "csv",
            ExportFormat::Json => "json",
            ExportFormat::Jsonl => "jsonl",
            ExportFormat::Prom => "prom",
        }
    }

    /// `tree|csv|json|jsonl|prom` — for usage and error messages.
    #[must_use]
    pub fn choices() -> String {
        Self::ALL
            .iter()
            .map(|f| f.name())
            .collect::<Vec<_>>()
            .join("|")
    }

    /// MIME type for HTTP responses carrying this format.
    #[must_use]
    pub fn content_type(self) -> &'static str {
        match self {
            ExportFormat::Tree => "text/plain; charset=utf-8",
            ExportFormat::Csv => "text/csv; charset=utf-8",
            ExportFormat::Json => "application/json",
            ExportFormat::Jsonl => "application/x-ndjson",
            ExportFormat::Prom => "text/plain; version=0.0.4; charset=utf-8",
        }
    }
}

impl fmt::Display for ExportFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ExportFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::ALL
            .iter()
            .copied()
            .find(|f| f.name() == s)
            .ok_or_else(|| format!("unknown format '{s}' (expected {})", Self::choices()))
    }
}

impl TraceReport {
    /// Serialise the report in `fmt`. Returns `None` for
    /// [`ExportFormat::Tree`], which is an interactive rendering the CLI
    /// owns, not a serialisation of the report.
    #[must_use]
    pub fn render(&self, fmt: ExportFormat) -> Option<String> {
        match fmt {
            ExportFormat::Tree => None,
            ExportFormat::Csv => Some(self.to_csv()),
            ExportFormat::Json => {
                let mut doc = self.to_json().pretty();
                doc.push('\n');
                Some(doc)
            }
            ExportFormat::Jsonl => Some(self.to_jsonl()),
            ExportFormat::Prom => Some(self.metrics_snapshot().to_prom()),
        }
    }
}

/// RFC-4180 quoting for the CSV `fields` cell: the cell is always quoted
/// and embedded quotes are doubled, so commas, newlines and `"` in field
/// values round-trip instead of being rewritten.
fn csv_fields_cell(fields: &[Field]) -> String {
    let joined = fields
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(";");
    format!("\"{}\"", joined.replace('"', "\"\""))
}

/// Per-span-name totals over one trace (or one span subtree): how many
/// times the span ran, its wall-clock cost, and — where the span carries
/// the executor's `sim_t0`/`sim_t1`/`energy_j` fields — the simulated
/// duration and attributed energy. This is the unit the bench harness
/// stores as a baseline and `vpp trace diff` compares.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Span name (`phase.scf_iter`, `job.collective`, …).
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Total wall-clock nanoseconds (closed spans only).
    pub wall_ns: u64,
    /// Total simulated seconds (spans carrying a sim-time window).
    pub sim_s: f64,
    /// Total attributed energy, joules (spans carrying `energy_j`).
    pub energy_j: f64,
}

/// A rolled-up trace: per-span-name [`SpanStat`]s plus (for whole-report
/// aggregates) the session's counters. Serialises to/from the JSON stored
/// in `BENCH_results.json` baselines.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceAggregate {
    /// Per-name totals, sorted by name.
    pub spans: Vec<SpanStat>,
    /// Session counters (empty for per-subtree aggregates — counters are
    /// session-global and cannot be attributed to one subtree).
    pub counters: BTreeMap<String, u64>,
}

impl TraceAggregate {
    fn stat_mut(&mut self, name: &str) -> &mut SpanStat {
        match self.spans.binary_search_by(|s| s.name.as_str().cmp(name)) {
            Ok(i) => &mut self.spans[i],
            Err(i) => {
                self.spans.insert(
                    i,
                    SpanStat {
                        name: name.to_string(),
                        count: 0,
                        wall_ns: 0,
                        sim_s: 0.0,
                        energy_j: 0.0,
                    },
                );
                &mut self.spans[i]
            }
        }
    }

    fn add_span(&mut self, s: &SpanRecord) {
        let energy = s.field_f64("energy_j").unwrap_or(0.0);
        let sim = s.sim_duration_s().unwrap_or(0.0);
        let stat = self.stat_mut(s.name);
        stat.count += 1;
        stat.wall_ns += s.duration_ns().unwrap_or(0);
        stat.sim_s += sim;
        stat.energy_j += energy;
    }

    fn add_subtree(&mut self, node: &SpanNode) {
        self.add_span(&node.record);
        for c in &node.children {
            self.add_subtree(c);
        }
    }

    /// The stat for a span name, if any span with that name was seen.
    #[must_use]
    pub fn span(&self, name: &str) -> Option<&SpanStat> {
        self.spans
            .binary_search_by(|s| s.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.spans[i])
    }

    /// All span names in this aggregate, sorted.
    #[must_use]
    pub fn span_names(&self) -> Vec<&str> {
        self.spans.iter().map(|s| s.name.as_str()).collect()
    }

    /// Serialise for `BENCH_results.json`.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            (
                "spans".to_string(),
                Value::Arr(
                    self.spans
                        .iter()
                        .map(|s| {
                            Value::Obj(vec![
                                ("name".to_string(), Value::Str(s.name.clone())),
                                ("count".to_string(), Value::Num(s.count as f64)),
                                ("wall_ns".to_string(), Value::Num(s.wall_ns as f64)),
                                ("sim_s".to_string(), Value::Num(s.sim_s)),
                                ("energy_j".to_string(), Value::Num(s.energy_j)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "counters".to_string(),
                Value::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Num(*v as f64)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse an aggregate previously written by [`TraceAggregate::to_json`].
    ///
    /// # Errors
    /// Describes the first missing or mistyped member.
    pub fn from_json(v: &Value) -> Result<TraceAggregate, String> {
        let mut agg = TraceAggregate::default();
        let spans = v
            .get("spans")
            .and_then(Value::as_arr)
            .ok_or("aggregate: missing 'spans' array")?;
        for s in spans {
            let name = s
                .get("name")
                .and_then(Value::as_str)
                .ok_or("aggregate span: missing 'name'")?;
            let num = |key: &str| -> Result<f64, String> {
                s.get(key)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("aggregate span '{name}': missing '{key}'"))
            };
            let stat = agg.stat_mut(name);
            stat.count = num("count")? as u64;
            stat.wall_ns = num("wall_ns")? as u64;
            stat.sim_s = num("sim_s")?;
            stat.energy_j = num("energy_j")?;
        }
        if let Some(Value::Obj(members)) = v.get("counters") {
            for (k, v) in members {
                let n = v
                    .as_f64()
                    .ok_or_else(|| format!("aggregate counter '{k}': not a number"))?;
                agg.counters.insert(k.clone(), n as u64);
            }
        }
        Ok(agg)
    }
}

/// Per-span-name duration summary inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSummary {
    /// Span name.
    pub name: String,
    /// Closed-or-open span count.
    pub count: u64,
    /// Total wall seconds over closed spans.
    pub total_s: f64,
}

/// A scrape-ready view of a session's metrics: counters, gauges, and
/// span-duration summaries. Produced live via [`Session::metrics_snapshot`]
/// (counters/gauges only) or from a finished report via
/// [`TraceReport::metrics_snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotone counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-value gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Folded fixed-bucket histograms.
    pub histograms: BTreeMap<String, Histogram>,
    /// Per-name span duration summaries (empty on live snapshots).
    pub spans: Vec<SpanSummary>,
}

impl MetricsSnapshot {
    /// Render the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): counters as `vpp_<name>_total`, gauges as
    /// `vpp_<name>`, span durations as a `vpp_span_duration_seconds`
    /// summary with a `span` label. Metric names are sanitised to the
    /// `[a-zA-Z_:][a-zA-Z0-9_:]*` charset (the dots of the trace
    /// vocabulary become underscores); label values are escaped per the
    /// exposition spec.
    #[must_use]
    pub fn to_prom(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let metric = format!("vpp_{}_total", prom_name(name));
            let _ = writeln!(out, "# TYPE {metric} counter");
            let _ = writeln!(out, "{metric} {v}");
        }
        for (name, v) in &self.gauges {
            let metric = format!("vpp_{}", prom_name(name));
            let _ = writeln!(out, "# TYPE {metric} gauge");
            let _ = writeln!(out, "{metric} {}", prom_f64(*v));
        }
        for (name, h) in &self.histograms {
            let metric = format!("vpp_{}", prom_name(name));
            let _ = writeln!(out, "# TYPE {metric} histogram");
            h.to_prom_lines(&metric, "", &mut out);
        }
        if !self.spans.is_empty() {
            let _ = writeln!(out, "# TYPE vpp_span_duration_seconds summary");
            for s in &self.spans {
                let label = prom_label_value(&s.name);
                let _ = writeln!(
                    out,
                    "vpp_span_duration_seconds_count{{span=\"{label}\"}} {}",
                    s.count
                );
                let _ = writeln!(
                    out,
                    "vpp_span_duration_seconds_sum{{span=\"{label}\"}} {}",
                    prom_f64(s.total_s)
                );
            }
        }
        out
    }
}

/// Sanitise a trace name into the Prometheus metric-name charset.
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escape a label value per the exposition format: `\`, `"`, newline.
pub(crate) fn prom_label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Prometheus float rendering (`+Inf`/`-Inf`/`NaN` spellings).
fn prom_f64(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_string()
    } else if x == f64::INFINITY {
        "+Inf".to_string()
    } else if x == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_path_records_nothing_and_skips_field_closures() {
        assert!(!enabled());
        let mut closure_ran = false;
        {
            let mut g = SpanGuard::open("never", || {
                closure_ran = true;
                vec![]
            });
            g.record("x", 1u64);
            counter("never.count", 5);
            gauge("never.gauge", 1.0);
            mark("never.mark");
        }
        assert!(!closure_ran, "field closure must not run when disabled");
    }

    #[test]
    fn session_captures_spans_counters_gauges_and_marks() {
        let s = session(256);
        {
            let mut outer = span!("outer", nodes = 4, name = "Si256_hse");
            {
                let _inner = span!("inner", watts = 2.5);
                mark_with("tick", || vec![("i", FieldValue::from(7u64))]);
            }
            counter("c.events", 2);
            counter("c.events", 3);
            gauge("g.last", 1.0);
            gauge("g.last", 4.5);
            outer.record("done", true);
        }
        let report = s.finish();
        assert!(report.well_formed().is_ok(), "{:?}", report.well_formed());
        assert_eq!(report.dropped, 0);
        assert_eq!(report.counters["c.events"], 5);
        assert!((report.gauges["g.last"] - 4.5).abs() < 1e-12);

        let spans = report.spans();
        assert_eq!(spans.len(), 2);
        let outer = &spans[0];
        let inner = &spans[1];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.parent, None);
        assert_eq!(outer.field_f64("nodes"), Some(4.0));
        assert_eq!(outer.field("name").and_then(FieldValue::as_str), Some("Si256_hse"));
        assert_eq!(outer.field("done"), Some(&FieldValue::Bool(true)));
        assert_eq!(inner.parent, Some(outer.id));
        assert!(inner.t_enter_ns >= outer.t_enter_ns);
        assert!(inner.t_exit_ns.unwrap() <= outer.t_exit_ns.unwrap());

        let tree = report.span_tree();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].record.name, "outer");
        assert_eq!(tree[0].children.len(), 1);
        assert_eq!(tree[0].children[0].record.name, "inner");

        assert_eq!(report.marks().len(), 1);
        assert_eq!(report.marks()[0].name, "tick");
    }

    #[test]
    fn ring_overflow_drops_and_counts() {
        let s = session(3);
        for _ in 0..4 {
            mark("m");
        }
        let report = s.finish();
        assert_eq!(report.events.len(), 3);
        assert_eq!(report.dropped, 1);
        assert!(report.well_formed().is_err());
    }

    #[test]
    fn sessions_do_not_leak_across_finish() {
        let s = session(16);
        mark("first");
        let r1 = s.finish();
        assert_eq!(r1.events.len(), 1);
        mark("between"); // disabled: dropped silently
        let s2 = session(16);
        mark("second");
        let r2 = s2.finish();
        assert_eq!(r2.events.len(), 1);
        assert_eq!(r2.events[0].name, "second");
    }

    #[test]
    fn cross_thread_spans_have_independent_parents() {
        let s = session(1024);
        {
            let _root = span!("root");
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        let _w = span!("worker");
                    });
                }
            });
        }
        let report = s.finish();
        assert!(report.well_formed().is_ok(), "{:?}", report.well_formed());
        let spans = report.spans();
        let workers: Vec<_> = spans.iter().filter(|s| s.name == "worker").collect();
        assert_eq!(workers.len(), 4);
        // Worker threads have no enclosing span on their own thread.
        assert!(workers.iter().all(|w| w.parent.is_none()));
        // Thread ordinals are small and distinct from the main thread's.
        let root = spans.iter().find(|s| s.name == "root").unwrap();
        assert!(workers.iter().all(|w| w.thread != root.thread));
    }

    #[test]
    fn buffered_appends_survive_unflushed_threads_and_preserve_order() {
        // More events than one FLUSH_BATCH on the main thread plus worker
        // threads that never hit a flush point other than root-span exit:
        // everything must still land in the report, per-thread order
        // intact (well_formed checks the Enter/Exit pairing per thread).
        let s = session(1 << 14);
        {
            let _root = span!("root");
            for _ in 0..(FLUSH_BATCH + 17) {
                let _m = span!("main.iter");
            }
            std::thread::scope(|scope| {
                for _ in 0..3 {
                    scope.spawn(|| {
                        for _ in 0..5 {
                            let _w = span!("worker.iter");
                        }
                        mark("worker.done");
                    });
                }
            });
        }
        let report = s.finish();
        assert!(report.well_formed().is_ok(), "{:?}", report.well_formed());
        let spans = report.spans();
        assert_eq!(
            spans.iter().filter(|s| s.name == "main.iter").count(),
            FLUSH_BATCH + 17
        );
        assert_eq!(spans.iter().filter(|s| s.name == "worker.iter").count(), 15);
        assert_eq!(report.marks().len(), 3);
        // Timestamps are globally sorted after the merge.
        assert!(report.events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
    }

    #[test]
    fn json_and_csv_exports_are_consistent() {
        let s = session(64);
        {
            let _g = span!("export.span", bytes = 1024u64);
            mark("export.mark");
        }
        counter_snapshot_helper();
        let report = s.finish();
        let json = report.to_json();
        let spans = json.get("spans").and_then(Value::as_arr).unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(
            spans[0].get("name").and_then(Value::as_str),
            Some("export.span")
        );
        let reparsed = crate::json::parse(&json.pretty()).expect("valid JSON");
        assert_eq!(
            reparsed
                .get("counters")
                .and_then(|c| c.get("export.count"))
                .and_then(Value::as_f64),
            Some(2.0)
        );
        let csv = report.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("kind,name,id,parent,thread,t_ns,dur_ns,fields"));
        assert!(csv.contains("span,export.span"));
        assert!(csv.contains("mark,export.mark"));
    }

    fn counter_snapshot_helper() {
        counter("export.count", 2);
    }

    #[test]
    fn csv_fields_use_rfc4180_escaping() {
        let s = session(64);
        {
            let _g = span!("csv.span", label = "a\"b,c\nd");
        }
        let report = s.finish();
        let csv = report.to_csv();
        // The quote is doubled, the comma and newline survive verbatim.
        assert!(
            csv.contains("\"label=a\"\"b,c\nd\""),
            "cell must be RFC-4180 quoted: {csv}"
        );
        // Round-trip through a small RFC-4180 reader: the data row's
        // quoted cell reassembles the original value.
        let body = csv.strip_prefix("kind,name,id,parent,thread,t_ns,dur_ns,fields\n").unwrap();
        let cells = parse_csv_record(body);
        assert_eq!(cells[0], "span");
        assert_eq!(cells[1], "csv.span");
        assert_eq!(cells.last().unwrap(), "label=a\"b,c\nd");
    }

    /// Minimal RFC-4180 record reader (quoted cells, doubled quotes,
    /// embedded commas/newlines) for the round-trip test.
    fn parse_csv_record(text: &str) -> Vec<String> {
        let mut cells = vec![String::new()];
        let mut chars = text.chars().peekable();
        let mut quoted = false;
        while let Some(c) = chars.next() {
            match c {
                '"' if !quoted => quoted = true,
                '"' if quoted => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cells.last_mut().unwrap().push('"');
                    } else {
                        quoted = false;
                    }
                }
                ',' if !quoted => cells.push(String::new()),
                '\n' if !quoted => break,
                c => cells.last_mut().unwrap().push(c),
            }
        }
        cells
    }

    #[test]
    fn jsonl_lines_reparse_to_the_event_encoding() {
        let s = session(64);
        {
            let mut g = span!("line.span", bytes = 7u64, label = "x,\"y\"");
            mark_with("line.mark", || vec![("ok", true.into())]);
            g.record("result", 1.5);
        }
        let report = s.finish();
        let jsonl = report.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), report.events.len());
        for (line, ev) in lines.iter().zip(&report.events) {
            let parsed = crate::json::parse(line).expect("line parses");
            assert_eq!(parsed, ev.to_json(), "line {line}");
        }
    }

    #[test]
    fn aggregate_rolls_up_per_name_totals() {
        let s = session(256);
        {
            let _outer = span!("agg.outer");
            for i in 0..3u64 {
                let mut g = span!("agg.phase", sim_t0 = i as f64);
                g.record("sim_t1", i as f64 + 2.0);
                g.record("energy_j", 10.0);
            }
        }
        counter("agg.count", 4);
        let report = s.finish();
        let agg = report.aggregate();
        let phase = agg.span("agg.phase").unwrap();
        assert_eq!(phase.count, 3);
        assert!((phase.sim_s - 6.0).abs() < 1e-12);
        assert!((phase.energy_j - 30.0).abs() < 1e-12);
        assert_eq!(agg.counters["agg.count"], 4);
        assert_eq!(agg.span("agg.outer").unwrap().count, 1);

        let back = TraceAggregate::from_json(&agg.to_json()).unwrap();
        assert_eq!(back, agg);
    }

    #[test]
    fn aggregates_under_orders_by_rep_field() {
        let s = session(256);
        {
            // Repeats recorded out of order, as a pool would.
            for rep in [2u64, 0, 1] {
                let _r = span!("agg.rep", rep = rep);
                let mut p = span!("agg.inner", sim_t0 = 0.0);
                p.record("sim_t1", (rep + 1) as f64);
            }
        }
        let report = s.finish();
        let samples = report.aggregates_under("agg.rep");
        assert_eq!(samples.len(), 3);
        let sims: Vec<f64> = samples
            .iter()
            .map(|a| a.span("agg.inner").unwrap().sim_s)
            .collect();
        assert_eq!(sims, vec![1.0, 2.0, 3.0], "sorted by rep, not record order");
        assert!(samples.iter().all(|a| a.counters.is_empty()));
    }

    #[test]
    fn prom_exposition_is_well_formed() {
        let s = session(64);
        {
            let _g = span!("prom.span");
        }
        counter("prom.hits", 3);
        gauge("prom.overshoot_w", 1.25);
        let report = s.finish();
        let prom = report.metrics_snapshot().to_prom();
        assert!(prom.contains("# TYPE vpp_prom_hits_total counter"));
        assert!(prom.contains("vpp_prom_hits_total 3"));
        assert!(prom.contains("# TYPE vpp_prom_overshoot_w gauge"));
        assert!(prom.contains("vpp_prom_overshoot_w 1.25"));
        assert!(prom.contains("vpp_span_duration_seconds_count{span=\"prom.span\"} 1"));
    }

    #[test]
    fn prom_exposition_survives_hostile_names() {
        let s = session(64);
        {
            let _g = span!("evil\"span\nname{}");
        }
        counter("evil metric-name{inject=\"1\"}", 2);
        gauge("99 problems", 1.0);
        let report = s.finish();
        let prom = report.metrics_snapshot().to_prom();
        // Characters outside [a-zA-Z0-9_:] collapse to underscores and a
        // leading digit gets a guard, so the injected label syntax never
        // reaches the metric name.
        assert!(prom.contains("vpp_evil_metric_name_inject__1___total 2"), "{prom}");
        assert!(prom.contains("vpp__99_problems 1"), "{prom}");
        // The hostile span name is escaped inside its label value: the
        // quote and newline cannot break out of the quoted string.
        assert!(prom.contains("span=\"evil\\\"span\\nname{}\""), "{prom}");
        // Every sample line still parses as `name{...} value`.
        for line in prom.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("sample line shape");
            assert!(value.parse::<f64>().is_ok(), "unparseable value in {line:?}");
        }
    }

    #[test]
    fn live_report_is_non_draining_and_sees_open_spans() {
        assert!(live_report().is_none(), "no session, no live report");
        let s = session(4096);
        let live = {
            let mut g = span!("live.outer", nodes = 2);
            counter("live.ticks", 3);
            gauge("live.coverage", 0.75);
            let live = live_report().expect("session active");
            g.record("done", true);
            live
        };
        // The open span is visible with its Enter only.
        let spans = live.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "live.outer");
        assert!(spans[0].t_exit_ns.is_none(), "span was still open");
        assert_eq!(live.counters["live.ticks"], 3);
        let metrics = live_metrics().expect("still active");
        assert!((metrics.gauges["live.coverage"] - 0.75).abs() < 1e-12);
        assert!(metrics.spans.iter().any(|s| s.name == "live.outer"));
        // The snapshot drained nothing: finish still sees everything.
        let report = s.finish();
        assert!(report.well_formed().is_ok(), "{:?}", report.well_formed());
        assert_eq!(report.spans().len(), 1);
        assert_eq!(report.counters["live.ticks"], 3);
        assert!(live_report().is_none(), "finish uninstalls the recorder");
    }

    #[test]
    fn live_report_under_concurrent_writers_does_not_deadlock() {
        // Writers batch-flush (buffer lock → central lock) while the main
        // thread snapshots (central lock, then buffer locks one at a
        // time); this storms both paths together.
        let s = session(1 << 16);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..(2 * FLUSH_BATCH) {
                        let _g = span!("storm.iter");
                    }
                });
            }
            for _ in 0..50 {
                let _ = live_report();
            }
        });
        let report = s.finish();
        assert!(report.well_formed().is_ok(), "{:?}", report.well_formed());
        assert_eq!(
            report.spans().iter().filter(|s| s.name == "storm.iter").count(),
            4 * 2 * FLUSH_BATCH
        );
    }

    #[test]
    fn export_format_round_trips_and_renders() {
        for fmt in ExportFormat::ALL {
            let back: ExportFormat = fmt.name().parse().expect("canonical name parses");
            assert_eq!(back, fmt);
            assert_eq!(format!("{fmt}"), fmt.name());
        }
        assert!("yaml".parse::<ExportFormat>().is_err());
        assert_eq!(ExportFormat::choices(), "tree|csv|json|jsonl|prom");

        let s = session(64);
        {
            let _g = span!("render.span");
        }
        counter("render.hits", 1);
        let report = s.finish();
        assert!(report.render(ExportFormat::Tree).is_none());
        assert_eq!(
            report.render(ExportFormat::Csv).unwrap(),
            report.to_csv()
        );
        assert_eq!(
            report.render(ExportFormat::Jsonl).unwrap(),
            report.to_jsonl()
        );
        assert!(report
            .render(ExportFormat::Json)
            .unwrap()
            .contains("render.span"));
        assert!(report
            .render(ExportFormat::Prom)
            .unwrap()
            .contains("vpp_render_hits_total 1"));
    }

    #[test]
    fn live_snapshot_counters_are_monotone() {
        let s = session(64);
        counter("mono.ticks", 2);
        let first = s.metrics_snapshot();
        counter("mono.ticks", 3);
        let second = s.metrics_snapshot();
        let _ = s.finish();
        assert_eq!(first.counters["mono.ticks"], 2);
        assert_eq!(second.counters["mono.ticks"], 5);
        assert!(first.spans.is_empty(), "live snapshots skip span summaries");
    }

    #[test]
    fn concurrent_local_sessions_record_disjoint_traces() {
        let a = local_session(1 << 12);
        let b = local_session(1 << 12);
        std::thread::scope(|scope| {
            let run = |sess: &LocalSession, name: &'static str, n: usize| {
                let sess = sess.clone();
                scope.spawn(move || {
                    let _bind = sess.bind();
                    for _ in 0..n {
                        let _g = span!(name);
                        counter(name, 1);
                    }
                });
            };
            run(&a, "tenant.a", 300);
            run(&b, "tenant.b", 500);
        });
        let ra = a.finish();
        let rb = b.finish();
        assert!(ra.well_formed().is_ok());
        assert!(rb.well_formed().is_ok());
        assert_eq!(ra.spans().len(), 300);
        assert_eq!(rb.spans().len(), 500);
        assert!(ra.spans().iter().all(|s| s.name == "tenant.a"));
        assert!(rb.spans().iter().all(|s| s.name == "tenant.b"));
        assert_eq!(ra.counters["tenant.a"], 300);
        assert!(!ra.counters.contains_key("tenant.b"));
        assert_eq!(rb.counters["tenant.b"], 500);
    }

    #[test]
    fn local_binding_shadows_and_restores() {
        // No global recorder: the binding alone turns instrumentation on.
        let sess = local_session(64);
        assert!(live_report().is_none());
        {
            let _bind = sess.bind();
            assert!(enabled(), "binding enables this thread");
            mark("local.mark");
        }
        mark("after.unbind"); // no recorder anywhere: dropped silently
        let report = sess.finish();
        assert_eq!(report.marks().len(), 1);
        assert_eq!(report.marks()[0].name, "local.mark");
    }

    #[test]
    fn local_binding_releases_the_staging_buffer_on_teardown() {
        // A long-lived thread must not pin a finished session's staging
        // buffer in its thread-local slot: once the binding and the
        // session are gone, every allocation must actually free (this is
        // what makes a registry's TTL eviction reclaim memory).
        let sess = local_session(64);
        let weak_buf = {
            let _bind = sess.bind();
            mark("teardown.mark"); // forces a staging buffer into TL_BUFFER
            let buffers = lock(&sess.rec.buffers);
            Arc::downgrade(&buffers[0])
        };
        // Binding dropped: the TL slot let go, only the recorder holds it.
        assert!(weak_buf.upgrade().is_some());
        drop(sess);
        assert!(
            weak_buf.upgrade().is_none(),
            "staging buffer outlived binding + session"
        );
    }

    #[test]
    fn sequence_numbers_are_dense_in_admission_order() {
        let sess = local_session(1 << 12);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let sess = sess.clone();
                scope.spawn(move || {
                    let _bind = sess.bind();
                    for _ in 0..200 {
                        mark("seq.mark");
                    }
                });
            }
        });
        let admitted = sess.admitted();
        assert_eq!(admitted, 800);
        let mut seqs: Vec<u64> = sess.finish().events.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..800).collect::<Vec<u64>>());
    }

    #[test]
    fn cursor_chunks_deliver_each_event_exactly_once() {
        let sess = local_session(1 << 14);
        let reader = sess.clone();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let sess = sess.clone();
                scope.spawn(move || {
                    let _bind = sess.bind();
                    for _ in 0..(FLUSH_BATCH + 37) {
                        mark("cursor.mark");
                    }
                });
            }
            // Poll concurrently with the writers: chunks must never skip
            // or repeat a seq even while events are still in flight.
            let mut seen: Vec<u64> = Vec::new();
            let mut cursor = 0u64;
            loop {
                let chunk = reader.events_after(cursor, 64);
                assert!(chunk.events.len() <= 64);
                for (i, ev) in chunk.events.iter().enumerate() {
                    assert_eq!(ev.seq, cursor + i as u64, "contiguous from cursor");
                }
                seen.extend(chunk.events.iter().map(|e| e.seq));
                cursor = chunk.next;
                if !chunk.more && seen.len() as u64 >= 3 * (FLUSH_BATCH as u64 + 37) {
                    break;
                }
                std::thread::yield_now();
            }
            assert_eq!(seen, (0..3 * (FLUSH_BATCH as u64 + 37)).collect::<Vec<u64>>());
        });
        assert_eq!(sess.dropped(), 0);
    }

    #[test]
    fn histogram_records_fold_across_threads_and_render_prom() {
        let sess = local_session(1 << 10);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let sess = sess.clone();
                scope.spawn(move || {
                    let _bind = sess.bind();
                    for i in 0..100u64 {
                        // Values straddle the 200 W edge deterministically.
                        let v = if (t + i) % 4 == 0 { 80.0 } else { 340.0 };
                        crate::histogram!("power_watts", v);
                    }
                    histogram_count("power_watts", 65.0, 10);
                });
            }
        });
        let report = sess.finish();
        let h = &report.histograms["power_watts"];
        assert_eq!(h.bounds(), POWER_WATTS_BUCKETS);
        assert_eq!(h.count(), 4 * 100 + 4 * 10);
        let lo = 4 * 25 + 40; // 100 per-thread values, every 4th low, plus the weighted 65 W
        let hi = 4 * 75;
        assert!((h.fraction_above(HIGH_POWER_THRESHOLD_W) - hi as f64 / (lo + hi) as f64).abs() < 1e-12);
        let expected_sum = (lo - 40) as f64 * 80.0 + 40.0 * 65.0 + hi as f64 * 340.0;
        assert!((h.sum() - expected_sum).abs() < 1e-6);

        let prom = report.metrics_snapshot().to_prom();
        assert!(prom.contains("# TYPE vpp_power_watts histogram"), "{prom}");
        assert!(prom.contains("vpp_power_watts_bucket{le=\"+Inf\"} 440"), "{prom}");
        assert!(prom.contains("vpp_power_watts_count 440"), "{prom}");
        // Cumulative buckets are monotone and the 200 W edge carries
        // exactly the low-mode mass.
        assert!(prom.contains("vpp_power_watts_bucket{le=\"200\"} 140"), "{prom}");
    }

    #[test]
    fn histogram_disabled_records_nothing() {
        assert!(!enabled());
        crate::histogram!("never_watts", 100.0);
        histogram_count("never_watts", 100.0, 5);
        let sess = local_session(256);
        {
            let _bind = sess.bind();
        }
        assert!(sess.finish().histograms.is_empty());
    }

    #[test]
    fn histogram_drains_on_finish_but_shards_survive_for_surviving_clones() {
        let sess = local_session(256);
        let clone = sess.clone();
        {
            let _bind = sess.bind();
            histogram("power_watts", 300.0);
        }
        let report = sess.finish();
        assert_eq!(report.histograms["power_watts"].count(), 1);
        // The drain zeroed the shards: a later snapshot through a clone
        // starts from empty rather than double counting.
        let again = clone.snapshot();
        assert_eq!(
            again.histograms.get("power_watts").map_or(0, Histogram::count),
            0
        );
    }

    #[test]
    fn histogram_merge_with_foreign_bounds_preserves_mass_in_overflow() {
        let mut a = Histogram::new(&[1.0, 2.0]);
        a.observe(0.5);
        let mut b = Histogram::new(&[10.0, 20.0]);
        b.observe(15.0);
        b.observe(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.counts()[2], 2, "foreign mass lands in +Inf");
        assert!((a.sum() - 18.5).abs() < 1e-12);
    }

    #[test]
    fn bucket_index_uses_le_semantics() {
        let bounds = &[1.0, 2.0, 4.0];
        assert_eq!(bucket_index(bounds, 0.5), 0);
        assert_eq!(bucket_index(bounds, 1.0), 0, "le is inclusive");
        assert_eq!(bucket_index(bounds, 1.5), 1);
        assert_eq!(bucket_index(bounds, 4.0), 2);
        assert_eq!(bucket_index(bounds, 4.1), 3, "overflow bucket");
    }

    #[test]
    fn default_bounds_pick_per_metric_tables() {
        assert_eq!(default_bounds("power_watts"), POWER_WATTS_BUCKETS);
        assert_eq!(default_bounds("serve_request_seconds"), SECONDS_BUCKETS);
        assert_eq!(default_bounds("phase_sim_seconds"), SIM_SECONDS_BUCKETS);
        assert_eq!(default_bounds("queue_depth"), DEFAULT_BUCKETS);
    }

    #[test]
    fn journal_admission_is_dense_and_level_filtered() {
        let start = log_stats().next_seq;
        log_event(LogLevel::Info, "test.dense", "one", vec![]);
        log_event(LogLevel::Warn, "test.dense", "two", vec![("k", 7u64.into())]);
        log_event(LogLevel::Debug, "test.dense", "filtered", vec![]);
        let chunk = logs_after(start, 100, LogLevel::Debug);
        let mine: Vec<&LogRecord> = chunk
            .records
            .iter()
            .filter(|r| r.target == "test.dense")
            .collect();
        // Debug is below the default Info admission level: never admitted.
        assert_eq!(mine.len(), 2);
        assert_eq!(mine[0].message, "one");
        assert_eq!(mine[1].level, LogLevel::Warn);
        assert!(mine[1].seq > mine[0].seq);
        // Level filtering hides the info record but keeps seq order.
        let warn_only = logs_after(start, 100, LogLevel::Warn);
        assert!(warn_only
            .records
            .iter()
            .filter(|r| r.target == "test.dense")
            .all(|r| r.level >= LogLevel::Warn));
        // The jsonl line round-trips through the in-tree JSON parser.
        let line = mine[1].to_json().compact();
        let doc = crate::json::parse(&line).expect("record parses");
        assert_eq!(doc.get("level").and_then(Value::as_str), Some("warn"));
        assert_eq!(doc.get("fields").and_then(|f| f.get("k")).and_then(Value::as_f64), Some(7.0));
    }

    #[test]
    fn journal_concurrent_writers_never_tear_the_cursor_stream() {
        let start = log_stats().next_seq;
        const WRITERS: u64 = 4;
        const EACH: u64 = 200;
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                scope.spawn(move || {
                    for i in 0..EACH {
                        crate::log_event!(Info, "test.concurrent", format!("{w}:{i}"));
                    }
                });
            }
        });
        let mut cursor = start;
        let mut mine: Vec<String> = Vec::new();
        let mut last_seq = None;
        loop {
            let chunk = logs_after(cursor, 97, LogLevel::Debug);
            for r in &chunk.records {
                assert!(Some(r.seq) > last_seq, "seqs strictly ascend across chunks");
                last_seq = Some(r.seq);
                if r.target == "test.concurrent" {
                    mine.push(r.message.clone());
                }
            }
            cursor = chunk.next;
            if !chunk.more {
                break;
            }
        }
        assert_eq!(mine.len() as u64, WRITERS * EACH, "each record exactly once");
        mine.sort();
        mine.dedup();
        assert_eq!(mine.len() as u64, WRITERS * EACH, "no duplicates");
    }
}

#[cfg(test)]
mod histogram_properties {
    use super::*;

    crate::properties! {
        /// Folded per-thread shards must equal single-threaded
        /// accumulation of the same observations, regardless of how the
        /// observations are partitioned across threads.
        fn folded_shards_equal_single_threaded_accumulation(rng) {
            let n_threads = 1 + rng.index(6);
            let per_thread: Vec<Vec<(f64, u64)>> = (0..n_threads)
                .map(|_| {
                    (0..rng.index(200))
                        .map(|_| (rng.uniform(0.0, 600.0), 1 + rng.index(4) as u64))
                        .collect()
                })
                .collect();

            let sess = local_session(64);
            std::thread::scope(|scope| {
                for obs in &per_thread {
                    let sess = sess.clone();
                    scope.spawn(move || {
                        let _bind = sess.bind();
                        for (v, n) in obs {
                            histogram_count("power_watts", *v, *n);
                        }
                    });
                }
            });
            let folded = sess.finish().histograms.remove("power_watts");

            let mut single = Histogram::new(POWER_WATTS_BUCKETS);
            for (v, n) in per_thread.iter().flatten() {
                single.observe_n(*v, *n);
            }
            match folded {
                Some(h) => {
                    assert_eq!(h.counts(), single.counts());
                    assert_eq!(h.count(), single.count());
                    assert!((h.sum() - single.sum()).abs() <= 1e-9 * single.sum().abs().max(1.0));
                }
                None => assert_eq!(single.count(), 0, "only an empty run may fold to nothing"),
            }
        }
    }
}
