//! Structured tracing and metrics for the simulator stack.
//!
//! Every layer of the reproduction — the DES engine, the cluster executor,
//! the SCF planner, the power-cap controller, the telemetry pipeline and the
//! §III-B measurement protocol — emits *typed spans*, *marks*, *counters*
//! and *gauges* through this module. Instrumentation is compiled in
//! unconditionally but costs a single relaxed atomic load when no recorder
//! is installed, so the hot paths (event delivery, per-op execution) stay at
//! their benchmarked throughput unless a trace session is active.
//!
//! # Model
//!
//! * A **span** is a named interval with enter/exit timestamps, a parent
//!   link (thread-local nesting) and a bag of typed fields. Open one with
//!   the [`span!`](crate::span) macro; it closes when the guard drops.
//! * A **mark** is a point event ([`mark`] / [`mark_with`]).
//! * A **counter** is a monotonically accumulated `u64` ([`counter`]);
//!   a **gauge** is a last-value-wins `f64` ([`gauge`]). Neither consumes
//!   ring-buffer capacity.
//!
//! A session installs one process-global recorder with a bounded ring
//! buffer (overflow drops the newest events and counts them, so a
//! truncated trace is detectable rather than silently misleading).
//! Sessions are serialised on a static mutex: parallel tests each get an
//! exclusive, uncontaminated window.
//!
//! ```
//! use vpp_substrate::{span, trace};
//!
//! let session = trace::session(1024);
//! {
//!     let mut root = span!("demo.root", nodes = 4, cap_w = 400.0);
//!     trace::counter("demo.events", 3);
//!     root.record("converged", true);
//! }
//! let report = session.finish();
//! assert_eq!(report.spans().len(), 1);
//! assert_eq!(report.counters["demo.events"], 3);
//! assert!(report.well_formed().is_ok());
//! ```

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::Instant;

use crate::json::Value;

/// A typed field value attached to a span, mark, or report row.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Boolean flag.
    Bool(bool),
    /// Unsigned integer (counts, byte sizes, indices).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (seconds, watts, joules).
    F64(f64),
    /// Short free-form string (benchmark names, verdict labels).
    Str(String),
}

impl FieldValue {
    /// Numeric view of the value, if it has one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FieldValue::U64(x) => Some(*x as f64),
            FieldValue::I64(x) => Some(*x as f64),
            FieldValue::F64(x) => Some(*x),
            FieldValue::Bool(_) | FieldValue::Str(_) => None,
        }
    }

    /// String view of the value, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }

    fn to_json(&self) -> Value {
        match self {
            FieldValue::Bool(b) => Value::Bool(*b),
            FieldValue::U64(x) => Value::Num(*x as f64),
            FieldValue::I64(x) => Value::Num(*x as f64),
            FieldValue::F64(x) => Value::Num(*x),
            FieldValue::Str(s) => Value::Str(s.clone()),
        }
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::Bool(b) => write!(f, "{b}"),
            FieldValue::U64(x) => write!(f, "{x}"),
            FieldValue::I64(x) => write!(f, "{x}"),
            FieldValue::F64(x) => write!(f, "{x}"),
            FieldValue::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(i64::from(v))
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// A `(key, value)` pair attached to an event.
pub type Field = (&'static str, FieldValue);

/// What a raw [`Event`] records.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span opened. `parent` is the enclosing span on the same thread in
    /// the same session, if any.
    Enter {
        /// Process-unique span id.
        span: u64,
        /// Enclosing span id, if nested.
        parent: Option<u64>,
    },
    /// A span closed; `fields` on the event carry values recorded via
    /// [`SpanGuard::record`].
    Exit {
        /// Span id being closed.
        span: u64,
    },
    /// A point event.
    Mark,
}

/// One raw entry in the recorder's ring buffer.
#[derive(Debug, Clone)]
pub struct Event {
    /// Static event name (dot-separated vocabulary, e.g. `"scf.iter"`).
    pub name: &'static str,
    /// Nanoseconds since the session started.
    pub t_ns: u64,
    /// Small per-session thread ordinal (0 = first thread seen).
    pub thread: u32,
    /// Enter / Exit / Mark.
    pub kind: EventKind,
    /// Typed payload.
    pub fields: Vec<Field>,
}

struct Ring {
    buf: VecDeque<Event>,
    cap: usize,
    dropped: u64,
}

/// The installed recorder backing one [`Session`].
struct Recorder {
    id: u64,
    start: Instant,
    ring: Mutex<Ring>,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, f64>>,
    threads: Mutex<Vec<std::thread::ThreadId>>,
}

impl Recorder {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn push(&self, ev: Event) {
        let mut ring = lock(&self.ring);
        if ring.buf.len() >= ring.cap {
            ring.dropped += 1;
        } else {
            ring.buf.push_back(ev);
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: RwLock<Option<Arc<Recorder>>> = RwLock::new(None);
static SESSION_LOCK: Mutex<()> = Mutex::new(());
static NEXT_SESSION_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Open spans on this thread as `(session_id, span_id)` pairs.
    static SPAN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
    /// Cached `(session_id, ordinal)` so the thread registry is hit once.
    static THREAD_ORD: Cell<Option<(u64, u32)>> = const { Cell::new(None) };
}

/// Whether a recorder is currently installed. This is the fast-path check:
/// a single relaxed atomic load.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn current() -> Option<Arc<Recorder>> {
    if !enabled() {
        return None;
    }
    RECORDER
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

fn thread_ordinal(rec: &Recorder) -> u32 {
    THREAD_ORD.with(|c| {
        if let Some((sid, ord)) = c.get() {
            if sid == rec.id {
                return ord;
            }
        }
        let tid = std::thread::current().id();
        let mut ts = lock(&rec.threads);
        let ord = ts.iter().position(|t| *t == tid).unwrap_or_else(|| {
            ts.push(tid);
            ts.len() - 1
        }) as u32;
        c.set(Some((rec.id, ord)));
        ord
    })
}

/// An exclusive tracing window. Created by [`session`]; instrumentation
/// anywhere in the process records into it until [`Session::finish`] (or
/// drop) uninstalls the recorder.
pub struct Session {
    rec: Arc<Recorder>,
    _excl: MutexGuard<'static, ()>,
}

/// Install a recorder with room for `capacity` events and return the
/// session handle. Blocks until any other live session ends, so
/// concurrent tests never interleave their traces.
#[must_use]
pub fn session(capacity: usize) -> Session {
    let excl = SESSION_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let rec = Arc::new(Recorder {
        id: NEXT_SESSION_ID.fetch_add(1, Ordering::SeqCst),
        start: Instant::now(),
        ring: Mutex::new(Ring {
            buf: VecDeque::with_capacity(capacity.min(1 << 16)),
            cap: capacity,
            dropped: 0,
        }),
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        threads: Mutex::new(Vec::new()),
    });
    *RECORDER.write().unwrap_or_else(PoisonError::into_inner) = Some(Arc::clone(&rec));
    ENABLED.store(true, Ordering::SeqCst);
    Session { rec, _excl: excl }
}

impl Session {
    /// Uninstall the recorder and return everything it captured.
    #[must_use]
    pub fn finish(self) -> TraceReport {
        let rec = Arc::clone(&self.rec);
        drop(self); // uninstalls
        let (events, dropped) = {
            let mut ring = lock(&rec.ring);
            let dropped = ring.dropped;
            (ring.buf.drain(..).collect(), dropped)
        };
        let counters = std::mem::take(&mut *lock(&rec.counters));
        let gauges = std::mem::take(&mut *lock(&rec.gauges));
        TraceReport {
            events,
            counters,
            gauges,
            dropped,
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
        *RECORDER.write().unwrap_or_else(PoisonError::into_inner) = None;
    }
}

/// RAII guard for an open span. Closes (emits the Exit event) on drop.
///
/// Deliberately `!Send`: a span measures an interval on one thread, and the
/// parent linkage is thread-local.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
    _not_send: PhantomData<*const ()>,
}

struct ActiveSpan {
    rec: Arc<Recorder>,
    id: u64,
    name: &'static str,
    exit_fields: Vec<Field>,
}

impl SpanGuard {
    /// Open a span. `fields` is only invoked when a recorder is installed,
    /// so argument formatting costs nothing on the disabled path. Prefer
    /// the [`span!`](crate::span) macro.
    #[must_use]
    pub fn open<F: FnOnce() -> Vec<Field>>(name: &'static str, fields: F) -> SpanGuard {
        let Some(rec) = current() else {
            return SpanGuard {
                active: None,
                _not_send: PhantomData,
            };
        };
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let thread = thread_ordinal(&rec);
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s
                .iter()
                .rev()
                .find(|(sid, _)| *sid == rec.id)
                .map(|&(_, span)| span);
            s.push((rec.id, id));
            parent
        });
        rec.push(Event {
            name,
            t_ns: rec.now_ns(),
            thread,
            kind: EventKind::Enter { span: id, parent },
            fields: fields(),
        });
        SpanGuard {
            active: Some(ActiveSpan {
                rec,
                id,
                name,
                exit_fields: Vec::new(),
            }),
            _not_send: PhantomData,
        }
    }

    /// Attach a field to the span's Exit event (e.g. a result computed
    /// inside the span). No-op when tracing is disabled.
    pub fn record<V: Into<FieldValue>>(&mut self, key: &'static str, value: V) {
        if let Some(a) = &mut self.active {
            a.exit_fields.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(pos) = s
                .iter()
                .rposition(|&(sid, span)| sid == a.rec.id && span == a.id)
            {
                s.remove(pos);
            }
        });
        let thread = thread_ordinal(&a.rec);
        a.rec.push(Event {
            name: a.name,
            t_ns: a.rec.now_ns(),
            thread,
            kind: EventKind::Exit { span: a.id },
            fields: a.exit_fields,
        });
    }
}

/// Open a span: `span!("name")` or `span!("name", key = value, ...)`.
/// Field values must convert [`Into`] a
/// [`FieldValue`](trace::FieldValue). Returns a
/// [`SpanGuard`](trace::SpanGuard); the span closes when it drops.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::SpanGuard::open($name, Vec::new)
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $crate::trace::SpanGuard::open($name, || {
            vec![$((stringify!($k), $crate::trace::FieldValue::from($v))),+]
        })
    };
}

/// Add `delta` to the named counter. Counters aggregate in place and never
/// consume ring capacity.
pub fn counter(name: &'static str, delta: u64) {
    if let Some(rec) = current() {
        *lock(&rec.counters).entry(name).or_insert(0) += delta;
    }
}

/// Set the named gauge to `value` (last value wins).
pub fn gauge(name: &'static str, value: f64) {
    if let Some(rec) = current() {
        lock(&rec.gauges).insert(name, value);
    }
}

/// Emit a point event with no payload.
pub fn mark(name: &'static str) {
    mark_with(name, Vec::new);
}

/// Emit a point event; `fields` is only invoked when tracing is enabled.
pub fn mark_with<F: FnOnce() -> Vec<Field>>(name: &'static str, fields: F) {
    if let Some(rec) = current() {
        let thread = thread_ordinal(&rec);
        rec.push(Event {
            name,
            t_ns: rec.now_ns(),
            thread,
            kind: EventKind::Mark,
            fields: fields(),
        });
    }
}

/// One reconstructed span: enter/exit matched, fields merged.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name.
    pub name: &'static str,
    /// Process-unique id.
    pub id: u64,
    /// Enclosing span id, if nested.
    pub parent: Option<u64>,
    /// Per-session thread ordinal.
    pub thread: u32,
    /// Enter time, ns since session start.
    pub t_enter_ns: u64,
    /// Exit time, ns since session start; `None` if the span never closed
    /// (guard leaked or its Exit was dropped on ring overflow).
    pub t_exit_ns: Option<u64>,
    /// Enter fields followed by [`SpanGuard::record`]ed exit fields.
    pub fields: Vec<Field>,
}

impl SpanRecord {
    /// Wall duration in nanoseconds, if the span closed.
    #[must_use]
    pub fn duration_ns(&self) -> Option<u64> {
        self.t_exit_ns.map(|t| t.saturating_sub(self.t_enter_ns))
    }

    /// First field with the given key.
    #[must_use]
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Numeric field value, if present and numeric.
    #[must_use]
    pub fn field_f64(&self, key: &str) -> Option<f64> {
        self.field(key).and_then(FieldValue::as_f64)
    }
}

/// A span plus its children — one node of [`TraceReport::span_tree`].
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The span itself.
    pub record: SpanRecord,
    /// Child spans in enter order.
    pub children: Vec<SpanNode>,
}

/// Everything a finished [`Session`] captured.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Raw events in ring order (which is global record order).
    pub events: Vec<Event>,
    /// Aggregated counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Last-value gauges.
    pub gauges: BTreeMap<&'static str, f64>,
    /// Events discarded because the ring was full.
    pub dropped: u64,
}

impl TraceReport {
    /// Reconstruct spans (Enter/Exit matched by id) in enter order.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = Vec::new();
        let mut by_id: BTreeMap<u64, usize> = BTreeMap::new();
        for ev in &self.events {
            match ev.kind {
                EventKind::Enter { span, parent } => {
                    by_id.insert(span, out.len());
                    out.push(SpanRecord {
                        name: ev.name,
                        id: span,
                        parent,
                        thread: ev.thread,
                        t_enter_ns: ev.t_ns,
                        t_exit_ns: None,
                        fields: ev.fields.clone(),
                    });
                }
                EventKind::Exit { span } => {
                    if let Some(&i) = by_id.get(&span) {
                        out[i].t_exit_ns = Some(ev.t_ns);
                        out[i].fields.extend(ev.fields.iter().cloned());
                    }
                }
                EventKind::Mark => {}
            }
        }
        out
    }

    /// Point events (marks) in record order.
    #[must_use]
    pub fn marks(&self) -> Vec<&Event> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Mark))
            .collect()
    }

    /// Spans assembled into forests by parent linkage, roots in enter
    /// order. A span whose parent is missing (dropped) becomes a root.
    #[must_use]
    pub fn span_tree(&self) -> Vec<SpanNode> {
        let spans = self.spans();
        let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
        let mut children: BTreeMap<u64, Vec<SpanRecord>> = BTreeMap::new();
        let mut roots: Vec<SpanRecord> = Vec::new();
        for s in spans {
            match s.parent {
                Some(p) if ids.contains(&p) => children.entry(p).or_default().push(s),
                _ => roots.push(s),
            }
        }
        fn build(rec: SpanRecord, children: &mut BTreeMap<u64, Vec<SpanRecord>>) -> SpanNode {
            let kids = children.remove(&rec.id).unwrap_or_default();
            SpanNode {
                record: rec,
                children: kids.into_iter().map(|k| build(k, children)).collect(),
            }
        }
        roots.into_iter().map(|r| build(r, &mut children)).collect()
    }

    /// Check that the trace is structurally sound: nothing dropped, and on
    /// every thread the Enter/Exit events form a properly nested (LIFO)
    /// sequence whose parent links match the enclosing span. This is the
    /// invariant the `par_map` concurrency property test asserts.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn well_formed(&self) -> Result<(), String> {
        if self.dropped > 0 {
            return Err(format!("{} events dropped by ring overflow", self.dropped));
        }
        let mut stacks: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        for ev in &self.events {
            let stack = stacks.entry(ev.thread).or_default();
            match ev.kind {
                EventKind::Enter { span, parent } => {
                    if parent != stack.last().copied() {
                        return Err(format!(
                            "span {span} ('{}') on thread {} has parent {parent:?} \
                             but enclosing span is {:?}",
                            ev.name,
                            ev.thread,
                            stack.last()
                        ));
                    }
                    stack.push(span);
                }
                EventKind::Exit { span } => match stack.pop() {
                    Some(top) if top == span => {}
                    other => {
                        return Err(format!(
                            "exit of span {span} ('{}') on thread {} but open span is {other:?}",
                            ev.name, ev.thread
                        ));
                    }
                },
                EventKind::Mark => {}
            }
        }
        for (t, stack) in &stacks {
            if !stack.is_empty() {
                return Err(format!("thread {t} ended with {} span(s) open", stack.len()));
            }
        }
        Ok(())
    }

    /// Serialise the report as a JSON value: span forest, marks, counters,
    /// gauges and the dropped-event count.
    #[must_use]
    pub fn to_json(&self) -> Value {
        fn fields_json(fields: &[Field]) -> Value {
            Value::Obj(
                fields
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), v.to_json()))
                    .collect(),
            )
        }
        fn node_json(n: &SpanNode) -> Value {
            let mut obj = vec![
                ("name".to_string(), Value::Str(n.record.name.to_string())),
                ("id".to_string(), Value::Num(n.record.id as f64)),
                ("thread".to_string(), Value::Num(f64::from(n.record.thread))),
                (
                    "t_enter_ns".to_string(),
                    Value::Num(n.record.t_enter_ns as f64),
                ),
            ];
            if let Some(t) = n.record.t_exit_ns {
                obj.push(("t_exit_ns".to_string(), Value::Num(t as f64)));
            }
            obj.push(("fields".to_string(), fields_json(&n.record.fields)));
            obj.push((
                "children".to_string(),
                Value::Arr(n.children.iter().map(node_json).collect()),
            ));
            Value::Obj(obj)
        }
        let marks = self
            .marks()
            .iter()
            .map(|m| {
                Value::Obj(vec![
                    ("name".to_string(), Value::Str(m.name.to_string())),
                    ("t_ns".to_string(), Value::Num(m.t_ns as f64)),
                    ("thread".to_string(), Value::Num(f64::from(m.thread))),
                    ("fields".to_string(), fields_json(&m.fields)),
                ])
            })
            .collect();
        Value::Obj(vec![
            (
                "spans".to_string(),
                Value::Arr(self.span_tree().iter().map(node_json).collect()),
            ),
            ("marks".to_string(), Value::Arr(marks)),
            (
                "counters".to_string(),
                Value::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| ((*k).to_string(), Value::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_string(),
                Value::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| ((*k).to_string(), Value::Num(*v)))
                        .collect(),
                ),
            ),
            ("dropped".to_string(), Value::Num(self.dropped as f64)),
        ])
    }

    /// Serialise spans and marks as CSV with header
    /// `kind,name,id,parent,thread,t_ns,dur_ns,fields`. Field bags are
    /// `;`-joined `key=value` pairs inside a quoted cell.
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn fields_cell(fields: &[Field]) -> String {
            let joined = fields
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(";");
            format!("\"{}\"", joined.replace('"', "'"))
        }
        let mut out = String::from("kind,name,id,parent,thread,t_ns,dur_ns,fields\n");
        for s in self.spans() {
            let parent = s.parent.map_or(String::new(), |p| p.to_string());
            let dur = s.duration_ns().map_or(String::new(), |d| d.to_string());
            out.push_str(&format!(
                "span,{},{},{},{},{},{},{}\n",
                s.name,
                s.id,
                parent,
                s.thread,
                s.t_enter_ns,
                dur,
                fields_cell(&s.fields)
            ));
        }
        for m in self.marks() {
            out.push_str(&format!(
                "mark,{},,,{},{},,{}\n",
                m.name,
                m.thread,
                m.t_ns,
                fields_cell(&m.fields)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_path_records_nothing_and_skips_field_closures() {
        assert!(!enabled());
        let mut closure_ran = false;
        {
            let mut g = SpanGuard::open("never", || {
                closure_ran = true;
                vec![]
            });
            g.record("x", 1u64);
            counter("never.count", 5);
            gauge("never.gauge", 1.0);
            mark("never.mark");
        }
        assert!(!closure_ran, "field closure must not run when disabled");
    }

    #[test]
    fn session_captures_spans_counters_gauges_and_marks() {
        let s = session(256);
        {
            let mut outer = span!("outer", nodes = 4, name = "Si256_hse");
            {
                let _inner = span!("inner", watts = 2.5);
                mark_with("tick", || vec![("i", FieldValue::from(7u64))]);
            }
            counter("c.events", 2);
            counter("c.events", 3);
            gauge("g.last", 1.0);
            gauge("g.last", 4.5);
            outer.record("done", true);
        }
        let report = s.finish();
        assert!(report.well_formed().is_ok(), "{:?}", report.well_formed());
        assert_eq!(report.dropped, 0);
        assert_eq!(report.counters["c.events"], 5);
        assert!((report.gauges["g.last"] - 4.5).abs() < 1e-12);

        let spans = report.spans();
        assert_eq!(spans.len(), 2);
        let outer = &spans[0];
        let inner = &spans[1];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.parent, None);
        assert_eq!(outer.field_f64("nodes"), Some(4.0));
        assert_eq!(outer.field("name").and_then(FieldValue::as_str), Some("Si256_hse"));
        assert_eq!(outer.field("done"), Some(&FieldValue::Bool(true)));
        assert_eq!(inner.parent, Some(outer.id));
        assert!(inner.t_enter_ns >= outer.t_enter_ns);
        assert!(inner.t_exit_ns.unwrap() <= outer.t_exit_ns.unwrap());

        let tree = report.span_tree();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].record.name, "outer");
        assert_eq!(tree[0].children.len(), 1);
        assert_eq!(tree[0].children[0].record.name, "inner");

        assert_eq!(report.marks().len(), 1);
        assert_eq!(report.marks()[0].name, "tick");
    }

    #[test]
    fn ring_overflow_drops_and_counts() {
        let s = session(3);
        for _ in 0..4 {
            mark("m");
        }
        let report = s.finish();
        assert_eq!(report.events.len(), 3);
        assert_eq!(report.dropped, 1);
        assert!(report.well_formed().is_err());
    }

    #[test]
    fn sessions_do_not_leak_across_finish() {
        let s = session(16);
        mark("first");
        let r1 = s.finish();
        assert_eq!(r1.events.len(), 1);
        mark("between"); // disabled: dropped silently
        let s2 = session(16);
        mark("second");
        let r2 = s2.finish();
        assert_eq!(r2.events.len(), 1);
        assert_eq!(r2.events[0].name, "second");
    }

    #[test]
    fn cross_thread_spans_have_independent_parents() {
        let s = session(1024);
        {
            let _root = span!("root");
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        let _w = span!("worker");
                    });
                }
            });
        }
        let report = s.finish();
        assert!(report.well_formed().is_ok(), "{:?}", report.well_formed());
        let spans = report.spans();
        let workers: Vec<_> = spans.iter().filter(|s| s.name == "worker").collect();
        assert_eq!(workers.len(), 4);
        // Worker threads have no enclosing span on their own thread.
        assert!(workers.iter().all(|w| w.parent.is_none()));
        // Thread ordinals are small and distinct from the main thread's.
        let root = spans.iter().find(|s| s.name == "root").unwrap();
        assert!(workers.iter().all(|w| w.thread != root.thread));
    }

    #[test]
    fn json_and_csv_exports_are_consistent() {
        let s = session(64);
        {
            let _g = span!("export.span", bytes = 1024u64);
            mark("export.mark");
        }
        counter_snapshot_helper();
        let report = s.finish();
        let json = report.to_json();
        let spans = json.get("spans").and_then(Value::as_arr).unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(
            spans[0].get("name").and_then(Value::as_str),
            Some("export.span")
        );
        let reparsed = crate::json::parse(&json.pretty()).expect("valid JSON");
        assert_eq!(
            reparsed
                .get("counters")
                .and_then(|c| c.get("export.count"))
                .and_then(Value::as_f64),
            Some(2.0)
        );
        let csv = report.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("kind,name,id,parent,thread,t_ns,dur_ns,fields"));
        assert!(csv.contains("span,export.span"));
        assert!(csv.contains("mark,export.mark"));
    }

    fn counter_snapshot_helper() {
        counter("export.count", 2);
    }
}
