//! Minimal property-based testing on the deterministic [`crate::Rng`].
//!
//! The [`properties!`](crate::properties) macro expands each property into a
//! `#[test]` that runs the body [`cases`]`()` times, each case with an
//! independent, *reproducible* RNG substream derived from the property name
//! and case index. On failure the harness reports the case index and seed
//! before re-raising the panic, so a failing case can be replayed with
//! `Rng::new(seed)` in isolation.
//!
//! Generators are plain functions over `&mut Rng` — no strategy types, no
//! shrinking. Simulation inputs here are small enough that reading the
//! failing case's generated values from the assert message is workable.

pub use crate::rng::Rng;

/// Default number of cases per property (override with `VPP_PROP_CASES`).
pub const DEFAULT_CASES: usize = 64;

/// Cases per property: `VPP_PROP_CASES` if set and parseable, else
/// [`DEFAULT_CASES`].
#[must_use]
pub fn cases() -> usize {
    std::env::var("VPP_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_CASES)
}

/// Stable 64-bit FNV-1a hash of the property name, used to salt the
/// per-case seeds so distinct properties draw distinct streams.
#[must_use]
fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Seed of case `i` of property `name`.
#[must_use]
pub fn case_seed(name: &str, i: usize) -> u64 {
    name_hash(name).wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Run a property `cases` times. On a failing case, report its index and
/// seed to stderr and re-raise the panic.
pub fn run<F: Fn(&mut Rng)>(name: &str, cases: usize, f: F) {
    for i in 0..cases {
        let seed = case_seed(name, i);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = Rng::new(seed);
            f(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!("property '{name}' failed on case {i}/{cases} (Rng seed {seed:#x})");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Expand property bodies into `#[test]` functions driven by [`run`].
///
/// ```
/// vpp_substrate::properties! {
///     fn addition_commutes(rng) {
///         let (a, b) = (rng.uniform(-1e6, 1e6), rng.uniform(-1e6, 1e6));
///         assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! properties {
    ($( $(#[$meta:meta])* fn $name:ident($rng:ident) $body:block )+) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                $crate::prop::run(stringify!($name), $crate::prop::cases(), |$rng| $body);
            }
        )+
    };
}

/// Skip the rest of the current case when a precondition fails (the
/// in-tree analogue of proptest's `prop_assume!`). Must be used directly
/// inside a [`properties!`](crate::properties) body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        // Expanded as `if…else` rather than `if !…` so float preconditions
        // like `x > 0.0` don't trip `clippy::neg_cmp_op_on_partial_ord`
        // at every call site.
        if $cond {
        } else {
            return;
        }
    };
}

/// Uniform integer in `[lo, hi)` (half-open, like range strategies).
#[must_use]
pub fn usize_in(rng: &mut Rng, lo: usize, hi: usize) -> usize {
    assert!(lo < hi, "empty range {lo}..{hi}");
    lo + rng.index(hi - lo)
}

/// Vector of `len in len_lo..len_hi` uniform floats drawn from `[lo, hi)`.
#[must_use]
pub fn vec_f64(rng: &mut Rng, lo: f64, hi: f64, len_lo: usize, len_hi: usize) -> Vec<f64> {
    let n = usize_in(rng, len_lo, len_hi);
    (0..n).map(|_| rng.uniform(lo, hi)).collect()
}

/// Vector of `(duration, watts)` pairs — the trace-segment generator shared
/// by the cross-crate property suites.
#[must_use]
pub fn segments(rng: &mut Rng, len_lo: usize, len_hi: usize) -> Vec<(f64, f64)> {
    let n = usize_in(rng, len_lo, len_hi);
    (0..n)
        .map(|_| (rng.uniform(0.01, 5.0), rng.uniform(0.0, 2500.0)))
        .collect()
}

/// String of `len in 0..max_len` characters drawn from `charset`.
#[must_use]
pub fn string_of(rng: &mut Rng, charset: &[char], max_len: usize) -> String {
    let n = rng.index(max_len + 1);
    (0..n).map(|_| charset[rng.index(charset.len())]).collect()
}

/// Printable-ASCII string (the `[ -~]` class), `len in 0..max_len`.
#[must_use]
pub fn printable_string(rng: &mut Rng, max_len: usize) -> String {
    let n = rng.index(max_len + 1);
    (0..n)
        .map(|_| char::from(b' ' + rng.index(95) as u8))
        .collect()
}

/// Uppercase-letter string with `len in len_lo..len_hi` (the `[A-Z]{a,b}`
/// class used by the tag fuzzers).
#[must_use]
pub fn upper_string(rng: &mut Rng, len_lo: usize, len_hi: usize) -> String {
    let n = usize_in(rng, len_lo, len_hi);
    (0..n).map(|_| char::from(b'A' + rng.index(26) as u8)).collect()
}

/// Arbitrary string of `len in 0..max_len` chars: mostly printable ASCII,
/// salted with newlines, tabs, NULs and multi-byte unicode so parsers see
/// hostile input.
#[must_use]
pub fn any_string(rng: &mut Rng, max_len: usize) -> String {
    let n = rng.index(max_len + 1);
    (0..n)
        .map(|_| match rng.index(10) {
            0 => '\n',
            1 => *['\t', '\r', '\0', '\x1b'].get(rng.index(4)).unwrap(),
            2 => char::from_u32(rng.next_u64() as u32 % 0xD7FF).unwrap_or('\u{fffd}'),
            _ => char::from(b' ' + rng.index(95) as u8),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_are_stable_and_distinct() {
        assert_eq!(case_seed("p", 0), case_seed("p", 0));
        assert_ne!(case_seed("p", 0), case_seed("p", 1));
        assert_ne!(case_seed("p", 0), case_seed("q", 0));
    }

    #[test]
    fn run_executes_every_case_with_distinct_streams() {
        let mut firsts = Vec::new();
        let firsts_ptr = std::sync::Mutex::new(&mut firsts);
        run("stream_check", 16, |rng| {
            firsts_ptr.lock().unwrap().push(rng.next_u64());
        });
        assert_eq!(firsts.len(), 16);
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 16, "cases must not share streams");
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn failing_cases_propagate() {
        run("always_fails", 4, |_| panic!("deliberate"));
    }

    #[test]
    fn generators_respect_bounds() {
        let mut rng = Rng::new(1);
        for _ in 0..1000 {
            let x = usize_in(&mut rng, 3, 9);
            assert!((3..9).contains(&x));
        }
        let v = vec_f64(&mut rng, -1.0, 1.0, 2, 10);
        assert!((2..10).contains(&v.len()));
        assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        let s = printable_string(&mut rng, 40);
        assert!(s.len() <= 40);
        assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        let u = upper_string(&mut rng, 2, 12);
        assert!((2..12).contains(&u.len()));
        assert!(u.chars().all(|c| c.is_ascii_uppercase()));
    }

    properties! {
        fn the_macro_itself_works(rng) {
            let x = rng.uniform(0.0, 1.0);
            prop_assume!(x > 0.000_001);
            assert!(x.ln() < 0.0);
        }
    }
}
